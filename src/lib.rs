//! # uncertain-simrank
//!
//! A from-scratch Rust reproduction of *"SimRank Computation on Uncertain
//! Graphs"* (Rong Zhu, Zhaonian Zou, Jianzhong Li — ICDE 2016,
//! arXiv:1512.02714): SimRank similarity defined through random walks on the
//! possible worlds of an uncertain graph, together with the Baseline,
//! Sampling, two-phase (SR-TS) and bit-vector speed-up (SR-SP) estimators,
//! the comparison baselines, the synthetic datasets and the experiment
//! harness that regenerates every table and figure of the paper.
//!
//! This crate is a façade: it re-exports the workspace crates under stable
//! module names and provides a [`prelude`] with the handful of types most
//! applications need.
//!
//! ```
//! use uncertain_simrank::prelude::*;
//!
//! // Two papers cite the same pair of sources with high confidence; their
//! // SimRank under uncertainty reflects both the shared context and the
//! // confidence values.
//! let graph = UncertainGraphBuilder::new(4)
//!     .arc(2, 0, 0.9)
//!     .arc(2, 1, 0.8)
//!     .arc(3, 0, 0.7)
//!     .arc(3, 1, 0.4)
//!     .build()
//!     .unwrap();
//! let config = SimRankConfig::default().with_samples(200).with_seed(42);
//! let exact = BaselineEstimator::new(&graph, config).try_similarity(0, 1).unwrap();
//! let mut fast = SpeedupEstimator::new(&graph, config);
//! assert!((exact - fast.similarity(0, 1)).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Deterministic and uncertain directed graphs (re-export of [`ugraph`]).
pub use ugraph as graph;

/// Matrices, bit vectors and the on-disk column store (re-export of
/// [`umatrix`]).
pub use umatrix as matrix;

/// Random walks on uncertain graphs: WalkPr, TransPr, samplers (re-export of
/// [`rwalk`]).
pub use rwalk as random_walk;

/// The SimRank measure and its estimators (re-export of [`usim_core`]).
pub use usim_core as simrank;

/// Jaccard / Dice / cosine similarities, deterministic and expected
/// (re-export of [`usim_similarity`]).
pub use usim_similarity as similarity;

/// Synthetic dataset generators (re-export of [`usim_datasets`]).
pub use usim_datasets as datasets;

/// Graph-based entity resolution (re-export of [`usim_er`]).
pub use usim_er as entity_resolution;

/// The epoch-aware sharded result cache fronting the query engine
/// (re-export of [`usim_cache`]; the engine integration is
/// [`usim_core::CachedQueryEngine`]).
pub use usim_cache as cache;

/// The line-delimited JSON query server over the dynamic engine (re-export
/// of [`usim_server`]; the CLI front-end is `usim serve`).
pub use usim_server as server;

/// The types most applications need, importable in one line.
pub mod prelude {
    pub use crate::cache::ResultCache;
    pub use crate::datasets::{CoauthorGenerator, ErGenerator, PpiGenerator, RmatGenerator};
    pub use crate::graph::{
        CompactionPolicy, CsrGraph, CsrView, DeltaOverlay, DiGraph, DiGraphBuilder, GraphError,
        GraphUpdate, GraphView, UncertainGraph, UncertainGraphBuilder, UpdateError, VertexId,
    };
    pub use crate::random_walk::{AliasSampler, CsrSampler, WalkArena};
    pub use crate::server::{CoalesceOptions, RequestHandler, Server, ServerOptions};
    pub use crate::simrank::{
        BaselineEstimator, CachedQueryEngine, QueryEngine, SamplerKind, SamplingEstimator,
        ShardSpec, ShardedQueryEngine, SharedQueryEngine, SimRankConfig, SimRankEstimator,
        SingleSourceEstimator, SourceMode, SpeedupEstimator, TwoPhaseEstimator, WalkDirection,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable() {
        let graph = UncertainGraphBuilder::new(3)
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.9)
            .build()
            .unwrap();
        let mut estimator = TwoPhaseEstimator::new(
            &graph,
            SimRankConfig::default().with_samples(100).with_seed(1),
        );
        let similarity = estimator.similarity(0, 1);
        assert!(similarity > 0.0 && similarity <= 1.0);
    }
}
