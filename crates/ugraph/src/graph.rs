//! Deterministic directed graphs in compressed sparse row (CSR) form.

use crate::{GraphError, VertexId};

/// A deterministic directed graph.
///
/// The graph is stored in CSR form twice: once for out-neighbors (forward
/// adjacency) and once for in-neighbors (reverse adjacency).  SimRank needs
/// fast access to *in*-neighbors (its recursive definition averages over
/// in-neighbor pairs) while random walks need fast access to *out*-neighbors,
/// so both directions are materialised.
///
/// Neighbor lists are sorted by vertex id, which makes arc lookups
/// (`has_arc`) a binary search and makes iteration deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    num_vertices: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
}

impl DiGraph {
    /// Builds a graph with `num_vertices` vertices from an arc list.
    ///
    /// Duplicate arcs are rejected with [`GraphError::DuplicateArc`]; vertex
    /// ids must be `< num_vertices`.
    pub fn from_arcs(
        num_vertices: usize,
        arcs: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        let mut pairs: Vec<(VertexId, VertexId)> = arcs.into_iter().collect();
        for &(u, v) in &pairs {
            for w in [u, v] {
                if (w as usize) >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: w as u64,
                        num_vertices,
                    });
                }
            }
        }
        pairs.sort_unstable();
        if let Some(w) = pairs.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateArc {
                source: w[0].0,
                target: w[0].1,
            });
        }
        Ok(Self::from_sorted_unique_arcs(num_vertices, &pairs))
    }

    /// Builds a graph from arcs that are already sorted by `(source, target)`
    /// and known to be unique.  Used by the builders after validation.
    pub(crate) fn from_sorted_unique_arcs(
        num_vertices: usize,
        pairs: &[(VertexId, VertexId)],
    ) -> Self {
        let m = pairs.len();
        let mut out_offsets = vec![0usize; num_vertices + 1];
        for &(u, _) in pairs {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<VertexId> = pairs.iter().map(|&(_, v)| v).collect();

        // Reverse adjacency: counting sort by target.
        let mut in_offsets = vec![0usize; num_vertices + 1];
        for &(_, v) in pairs {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as VertexId; m];
        for &(u, v) in pairs {
            let slot = cursor[v as usize];
            in_sources[slot] = u;
            cursor[v as usize] += 1;
        }
        // Within each in-neighbor list the sources are already sorted because
        // `pairs` is sorted by source first.
        DiGraph {
            num_vertices,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Number of vertices `|V(G)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arcs `|E(G)|`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors `O_G(v)` of `v`, sorted by vertex id.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors `I_G(v)` of `v`, sorted by vertex id.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree `|O_G(v)|`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree `|I_G(v)|`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Whether the arc `(u, v)` exists.
    #[inline]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Range of indices of `v`'s out-arcs within the forward CSR arrays.
    /// Used by [`crate::UncertainGraph`] to keep its probability arrays
    /// aligned with the adjacency arrays.
    #[inline]
    pub(crate) fn out_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.out_offsets[v], self.out_offsets[v + 1])
    }

    /// Range of indices of `v`'s in-arcs within the reverse CSR arrays.
    #[inline]
    pub(crate) fn in_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.in_offsets[v], self.in_offsets[v + 1])
    }

    /// Iterator over all arcs `(u, v)` in sorted order.
    pub fn arcs(&self) -> ArcIter<'_> {
        ArcIter {
            graph: self,
            source: 0,
            position: 0,
        }
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices as VertexId
    }

    /// Average out-degree `|E| / |V|` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices as f64
        }
    }

    /// Returns the transposed graph (every arc reversed).
    ///
    /// SimRank's random-walk interpretation follows *in*-edges (two walks
    /// step to uniformly chosen in-neighbors), which is the same as walking
    /// forward on the transposed graph; the SimRank estimators transpose the
    /// input once and reuse the forward-walk machinery.
    pub fn transpose(&self) -> DiGraph {
        let mut arcs: Vec<(VertexId, VertexId)> = self.arcs().map(|(u, v)| (v, u)).collect();
        arcs.sort_unstable();
        DiGraph::from_sorted_unique_arcs(self.num_vertices, &arcs)
    }

    /// One-step transition probability `Pr(u →₁ v)` of the uniform random walk
    /// on this deterministic graph: `1 / |O_G(u)|` if `(u, v)` is an arc and 0
    /// otherwise (Section II of the paper).
    pub fn transition_probability(&self, u: VertexId, v: VertexId) -> f64 {
        let d = self.out_degree(u);
        if d > 0 && self.has_arc(u, v) {
            1.0 / d as f64
        } else {
            0.0
        }
    }
}

/// Iterator over the arcs of a [`DiGraph`] in `(source, target)` order.
#[derive(Debug, Clone)]
pub struct ArcIter<'a> {
    graph: &'a DiGraph,
    source: usize,
    position: usize,
}

impl<'a> Iterator for ArcIter<'a> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.source < self.graph.num_vertices {
            let end = self.graph.out_offsets[self.source + 1];
            if self.position < end {
                let target = self.graph.out_targets[self.position];
                self.position += 1;
                return Some((self.source as VertexId, target));
            }
            self.source += 1;
            self.position = self.graph.out_offsets[self.source];
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.graph.out_targets.len() - self.position;
        (remaining, Some(remaining))
    }
}

impl<'a> ExactSizeIterator for ArcIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        DiGraph::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 5);
        assert!((g.average_degree() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_correct_and_sorted() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(1), &[3]);
        assert_eq!(g.out_neighbors(3), &[0]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn has_arc_lookup() {
        let g = diamond();
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(3, 0));
        assert!(!g.has_arc(1, 0));
        assert!(!g.has_arc(0, 3));
    }

    #[test]
    fn arc_iterator_yields_all_arcs_in_order() {
        let g = diamond();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
        assert_eq!(g.arcs().len(), 5);
    }

    #[test]
    fn transition_probabilities_are_uniform_over_out_neighbors() {
        let g = diamond();
        assert!((g.transition_probability(0, 1) - 0.5).abs() < 1e-12);
        assert!((g.transition_probability(0, 2) - 0.5).abs() < 1e-12);
        assert_eq!(g.transition_probability(0, 3), 0.0);
        assert!((g.transition_probability(1, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let err = DiGraph::from_arcs(3, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn rejects_duplicate_arcs() {
        let err = DiGraph::from_arcs(3, [(0, 1), (0, 1)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::DuplicateArc {
                source: 0,
                target: 1
            }
        ));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = DiGraph::from_arcs(0, []).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.arcs().count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices_have_empty_neighborhoods() {
        let g = DiGraph::from_arcs(5, [(0, 1)]).unwrap();
        assert_eq!(g.out_neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.in_neighbors(4), &[] as &[VertexId]);
        assert_eq!(g.transition_probability(3, 0), 0.0);
    }

    #[test]
    fn transpose_reverses_every_arc() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_vertices(), g.num_vertices());
        assert_eq!(t.num_arcs(), g.num_arcs());
        for (u, v) in g.arcs() {
            assert!(t.has_arc(v, u));
        }
        assert_eq!(t.transpose(), g);
        assert_eq!(t.out_neighbors(3), g.in_neighbors(3));
    }

    #[test]
    fn self_loops_are_representable() {
        let g = DiGraph::from_arcs(2, [(0, 0), (0, 1)]).unwrap();
        assert!(g.has_arc(0, 0));
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
    }
}
