//! An append-only on-disk log of [`GraphUpdate`] rounds.
//!
//! A [`crate::snapshot`] freezes the graph at epoch 0; the update log
//! carries everything that happened after.  Every round a server applies
//! through [`crate::DeltaOverlay`] is appended as one checksummed frame, so
//! a restarted process replays the log on top of the snapshot and arrives
//! at the exact epoch the previous process died at — round `i` of the log
//! is epoch `i + 1`, the same numbering [`QueryEngine::update_epoch`] uses.
//!
//! ```text
//! offset  size   field
//! 0       8      magic  b"USIMLOG1"
//! then, per round frame:
//!   0     4      number of updates in the round  (u32, little endian)
//!   4     17·c   records: op u8 (0 insert / 1 delete / 2 set),
//!                source u32, target u32, probability f64
//!   4+17c 8      FNV-1a checksum of this frame's bytes so far (u64)
//! ```
//!
//! Each [`UpdateLog::append_round`] writes one frame and syncs it to disk
//! before returning, so an acknowledged update round is durable.  Reading
//! validates the magic and every frame checksum; a torn or bit-flipped
//! frame — including a partial trailing frame from a crash mid-append — is
//! reported as a typed [`GraphError::Format`] rather than replayed as a
//! silently different graph.
//!
//! [`QueryEngine::update_epoch`]: https://docs.rs/usim_core (crates/core)

use crate::binfmt::{format_error, Fnv1a};
use crate::{GraphError, GraphUpdate, Probability, VertexId};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// File magic of the update-log format, version 1.
pub const MAGIC: &[u8; 8] = b"USIMLOG1";

const RECORD_LEN: usize = 1 + 4 + 4 + 8;

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_SET: u8 = 2;

fn encode_record(update: &GraphUpdate) -> [u8; RECORD_LEN] {
    let (op, source, target, probability) = match *update {
        GraphUpdate::InsertArc {
            source,
            target,
            probability,
        } => (OP_INSERT, source, target, probability),
        GraphUpdate::DeleteArc { source, target } => (OP_DELETE, source, target, 0.0),
        GraphUpdate::SetProbability {
            source,
            target,
            probability,
        } => (OP_SET, source, target, probability),
    };
    let mut record = [0u8; RECORD_LEN];
    record[0] = op;
    record[1..5].copy_from_slice(&source.to_le_bytes());
    record[5..9].copy_from_slice(&target.to_le_bytes());
    record[9..17].copy_from_slice(&probability.to_le_bytes());
    record
}

fn decode_record(record: &[u8]) -> Result<GraphUpdate, GraphError> {
    let source = VertexId::from_le_bytes(record[1..5].try_into().expect("4-byte slice"));
    let target = VertexId::from_le_bytes(record[5..9].try_into().expect("4-byte slice"));
    let probability = Probability::from_le_bytes(record[9..17].try_into().expect("8-byte slice"));
    match record[0] {
        OP_INSERT => Ok(GraphUpdate::InsertArc {
            source,
            target,
            probability,
        }),
        OP_DELETE => Ok(GraphUpdate::DeleteArc { source, target }),
        OP_SET => Ok(GraphUpdate::SetProbability {
            source,
            target,
            probability,
        }),
        op => Err(format_error(format!("unknown update-log opcode {op}"))),
    }
}

/// Reads and validates every round of an update log from `reader`.
pub fn read_rounds<R: Read>(reader: R) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    let mut reader = BufReader::new(reader);
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|e| format_error(format!("truncated update log while reading the magic: {e}")))?;
    if &magic != MAGIC {
        return Err(format_error(format!(
            "bad magic {magic:?}; not an update log (expected {MAGIC:?})"
        )));
    }

    let mut rounds = Vec::new();
    loop {
        let mut count_bytes = [0u8; 4];
        if reader
            .read(&mut count_bytes[..1])
            .map_err(GraphError::from)?
            == 0
        {
            break; // clean end of log
        }
        reader.read_exact(&mut count_bytes[1..]).map_err(|e| {
            format_error(format!(
                "torn update log: round {} header is incomplete: {e}",
                rounds.len()
            ))
        })?;
        let mut checksum = Fnv1a::new();
        checksum.update(&count_bytes);
        let count = u32::from_le_bytes(count_bytes) as usize;

        let mut round = Vec::with_capacity(count.min(1 << 20));
        let mut record = [0u8; RECORD_LEN];
        for index in 0..count {
            reader.read_exact(&mut record).map_err(|e| {
                format_error(format!(
                    "torn update log: round {} record {index} is incomplete: {e}",
                    rounds.len()
                ))
            })?;
            checksum.update(&record);
            round.push(decode_record(&record)?);
        }

        let expected = checksum.finish();
        let mut stored = [0u8; 8];
        reader.read_exact(&mut stored).map_err(|e| {
            format_error(format!(
                "torn update log: round {} checksum is incomplete: {e}",
                rounds.len()
            ))
        })?;
        let stored = u64::from_le_bytes(stored);
        if stored != expected {
            return Err(format_error(format!(
                "update-log round {} checksum mismatch: stored {stored:#018x}, computed {expected:#018x}",
                rounds.len()
            )));
        }
        rounds.push(round);
    }
    Ok(rounds)
}

/// Reads and validates every round of an update log file.
pub fn read_rounds_file<P: AsRef<Path>>(path: P) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    let file = File::open(path)?;
    read_rounds(file)
}

/// An open append handle on an update log.
///
/// # Example
///
/// ```no_run
/// use ugraph::{GraphUpdate, UpdateLog};
///
/// let (mut log, replayed) = UpdateLog::open("graph.ulog").unwrap();
/// // `replayed` holds every round a previous process recorded; apply them
/// // to the engine, then keep appending new rounds as they are served.
/// assert!(replayed.is_empty());
/// log.append_round(&[GraphUpdate::DeleteArc { source: 0, target: 1 }])
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct UpdateLog {
    file: File,
}

impl UpdateLog {
    /// Opens the log at `path` for appending, creating it (with just the
    /// magic) when absent, and returns the handle together with every round
    /// already recorded — the rounds a restarted server must replay before
    /// serving.  An existing file is fully validated first: a torn or
    /// corrupt log refuses to open rather than desynchronising the replay.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(UpdateLog, Vec<Vec<GraphUpdate>>), GraphError> {
        let path = path.as_ref();
        let exists = path.exists() && std::fs::metadata(path)?.len() > 0;
        let rounds = if exists {
            read_rounds_file(path)?
        } else {
            Vec::new()
        };
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if !exists {
            file.write_all(MAGIC)?;
            file.sync_data()?;
        }
        Ok((UpdateLog { file }, rounds))
    }

    /// Appends one round as a checksummed frame and syncs it to disk; once
    /// this returns, a restart replays the round.
    pub fn append_round(&mut self, updates: &[GraphUpdate]) -> Result<(), GraphError> {
        let count = u32::try_from(updates.len())
            .map_err(|_| format_error("update round exceeds u32::MAX records"))?;
        let mut frame = Vec::with_capacity(4 + updates.len() * RECORD_LEN + 8);
        frame.extend_from_slice(&count.to_le_bytes());
        for update in updates {
            frame.extend_from_slice(&encode_record(update));
        }
        let mut checksum = Fnv1a::new();
        checksum.update(&frame);
        frame.extend_from_slice(&checksum.finish().to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("usim_ulog_{tag}_{}.ulog", std::process::id()))
    }

    fn sample_rounds() -> Vec<Vec<GraphUpdate>> {
        vec![
            vec![
                GraphUpdate::InsertArc {
                    source: 0,
                    target: 3,
                    probability: 0.25,
                },
                GraphUpdate::SetProbability {
                    source: 1,
                    target: 2,
                    probability: 0.5,
                },
            ],
            vec![GraphUpdate::DeleteArc {
                source: 0,
                target: 3,
            }],
            vec![], // an empty round still bumps the epoch when replayed
        ]
    }

    #[test]
    fn append_and_reopen_replays_every_round_in_order() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut log, replayed) = UpdateLog::open(&path).unwrap();
        assert!(replayed.is_empty());
        for round in sample_rounds() {
            log.append_round(&round).unwrap();
        }
        drop(log);

        let (mut log, replayed) = UpdateLog::open(&path).unwrap();
        assert_eq!(replayed, sample_rounds());
        // Appending after a reopen continues the same log.
        log.append_round(&[GraphUpdate::DeleteArc {
            source: 9,
            target: 9,
        }])
        .unwrap();
        drop(log);
        let rounds = read_rounds_file(&path).unwrap();
        assert_eq!(rounds.len(), sample_rounds().len() + 1);
        std::fs::remove_file(&path).unwrap();
    }

    fn encode_log(rounds: &[Vec<GraphUpdate>]) -> Vec<u8> {
        let path = temp_path("encode");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = UpdateLog::open(&path).unwrap();
        for round in rounds {
            log.append_round(round).unwrap();
        }
        drop(log);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_log(&sample_rounds());
        bytes[0] = b'X';
        let err = read_rounds(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn a_torn_trailing_frame_is_a_typed_error_at_every_cut() {
        let bytes = encode_log(&sample_rounds());
        // Every strictly-partial prefix beyond the magic must be rejected
        // as a typed Format error — a crash can tear the file anywhere.
        for cut in 9..bytes.len() {
            if clean_frame_boundary(&bytes, cut) {
                continue;
            }
            let err = read_rounds(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::Format { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    /// Whether `cut` lands exactly between frames (those prefixes are valid
    /// logs: the tail rounds are simply lost, which replay tolerates —
    /// durability of acked rounds is append_round's sync, not the reader).
    fn clean_frame_boundary(bytes: &[u8], cut: usize) -> bool {
        let mut at = 8;
        while at <= cut {
            if at == cut {
                return true;
            }
            let count =
                u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice")) as usize;
            at += 4 + count * RECORD_LEN + 8;
        }
        false
    }

    #[test]
    fn a_bit_flip_in_any_frame_is_a_typed_error() {
        let clean = encode_log(&sample_rounds());
        for offset in 8..clean.len() {
            let mut corrupted = clean.clone();
            corrupted[offset] ^= 0x04;
            match read_rounds(corrupted.as_slice()) {
                Err(GraphError::Format { .. }) => {}
                Err(other) => panic!("flip at {offset}: wrong error type {other}"),
                Ok(rounds) => {
                    // A flip in a count field could in principle re-frame the
                    // log into different-but-checksummed rounds; FNV makes
                    // that astronomically unlikely, and it must never decode
                    // back to the original rounds with different content.
                    panic!("flip at {offset} parsed as {rounds:?}")
                }
            }
        }
    }

    #[test]
    fn an_empty_file_refuses_to_parse_but_open_creates_the_magic() {
        let err = read_rounds(&[] as &[u8]).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
        let path = temp_path("fresh");
        let _ = std::fs::remove_file(&path);
        let (log, rounds) = UpdateLog::open(&path).unwrap();
        drop(log);
        assert!(rounds.is_empty());
        assert_eq!(std::fs::read(&path).unwrap(), MAGIC);
        assert!(read_rounds_file(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
