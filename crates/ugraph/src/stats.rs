//! Graph statistics used when calibrating synthetic datasets against Table II
//! of the paper and when reporting experiment metadata.

use crate::{DiGraph, UncertainGraph};

/// Summary statistics of a deterministic graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of arcs.
    pub num_arcs: usize,
    /// Average out-degree (`|E| / |V|`).
    pub average_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of vertices with no out-arcs (dead ends for random walks).
    pub num_sinks: usize,
    /// Number of vertices with no in-arcs.
    pub num_sources: usize,
}

/// Summary statistics of an uncertain graph (topology plus probabilities).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainGraphStats {
    /// Statistics of the skeleton topology.
    pub topology: GraphStats,
    /// Mean arc existence probability.
    pub mean_probability: f64,
    /// Minimum arc existence probability.
    pub min_probability: f64,
    /// Maximum arc existence probability.
    pub max_probability: f64,
    /// Expected number of arcs `Σ_e P(e)`.
    pub expected_num_arcs: f64,
    /// Histogram of probabilities in 10 equal-width buckets over (0, 1].
    pub probability_histogram: [usize; 10],
}

/// Computes [`GraphStats`] for a deterministic graph.
pub fn graph_stats(g: &DiGraph) -> GraphStats {
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut sinks = 0usize;
    let mut sources = 0usize;
    for v in g.vertices() {
        let od = g.out_degree(v);
        let id = g.in_degree(v);
        max_out = max_out.max(od);
        max_in = max_in.max(id);
        if od == 0 {
            sinks += 1;
        }
        if id == 0 {
            sources += 1;
        }
    }
    GraphStats {
        num_vertices: g.num_vertices(),
        num_arcs: g.num_arcs(),
        average_out_degree: g.average_degree(),
        max_out_degree: max_out,
        max_in_degree: max_in,
        num_sinks: sinks,
        num_sources: sources,
    }
}

/// Computes [`UncertainGraphStats`] for an uncertain graph.
pub fn uncertain_graph_stats(g: &UncertainGraph) -> UncertainGraphStats {
    let topology = graph_stats(g.skeleton());
    let mut min_p = f64::INFINITY;
    let mut max_p = f64::NEG_INFINITY;
    let mut sum_p = 0.0;
    let mut histogram = [0usize; 10];
    let mut count = 0usize;
    for arc in g.arcs() {
        let p = arc.probability;
        min_p = min_p.min(p);
        max_p = max_p.max(p);
        sum_p += p;
        // Bucket i covers (i/10, (i+1)/10]; p = 1.0 lands in bucket 9.
        let bucket = ((p * 10.0).ceil() as usize).clamp(1, 10) - 1;
        histogram[bucket] += 1;
        count += 1;
    }
    if count == 0 {
        min_p = 0.0;
        max_p = 0.0;
    }
    UncertainGraphStats {
        topology,
        mean_probability: if count == 0 {
            0.0
        } else {
            sum_p / count as f64
        },
        min_probability: min_p,
        max_probability: max_p,
        expected_num_arcs: sum_p,
        probability_histogram: histogram,
    }
}

/// Out-degree histogram: `histogram[d]` is the number of vertices with
/// out-degree `d` (degrees above `max_degree` are clamped into the last
/// bucket).
pub fn out_degree_histogram(g: &DiGraph, max_degree: usize) -> Vec<usize> {
    let mut histogram = vec![0usize; max_degree + 1];
    for v in g.vertices() {
        let d = g.out_degree(v).min(max_degree);
        histogram[d] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiGraph, UncertainGraph};

    fn toy() -> UncertainGraph {
        UncertainGraph::from_arcs(4, [(0, 1, 0.2), (0, 2, 0.4), (1, 2, 0.6), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn graph_stats_counts() {
        let g = toy();
        let s = graph_stats(g.skeleton());
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_arcs, 4);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.num_sinks, 1); // vertex 3
        assert_eq!(s.num_sources, 1); // vertex 0
        assert!((s.average_out_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_stats_probabilities() {
        let g = toy();
        let s = uncertain_graph_stats(&g);
        assert!((s.mean_probability - 0.55).abs() < 1e-12);
        assert!((s.min_probability - 0.2).abs() < 1e-12);
        assert!((s.max_probability - 1.0).abs() < 1e-12);
        assert!((s.expected_num_arcs - 2.2).abs() < 1e-12);
        // Buckets: 0.2 -> bucket 1, 0.4 -> bucket 3, 0.6 -> bucket 5, 1.0 -> bucket 9.
        assert_eq!(s.probability_histogram[1], 1);
        assert_eq!(s.probability_histogram[3], 1);
        assert_eq!(s.probability_histogram[5], 1);
        assert_eq!(s.probability_histogram[9], 1);
        assert_eq!(s.probability_histogram.iter().sum::<usize>(), 4);
    }

    #[test]
    fn empty_graph_stats() {
        let g = UncertainGraph::from_arcs(0, []).unwrap();
        let s = uncertain_graph_stats(&g);
        assert_eq!(s.topology.num_vertices, 0);
        assert_eq!(s.mean_probability, 0.0);
        assert_eq!(s.expected_num_arcs, 0.0);
    }

    #[test]
    fn degree_histogram() {
        let g = DiGraph::from_arcs(4, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let h = out_degree_histogram(&g, 2);
        // vertex 0 has degree 3 -> clamped to bucket 2; vertex 1 degree 1;
        // vertices 2, 3 degree 0.
        assert_eq!(h, vec![2, 1, 1]);
    }
}
