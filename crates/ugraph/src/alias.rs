//! Walker alias tables for O(1) per-step walk transitions.
//!
//! The legacy sampler instantiates every possible out-arc of a vertex on
//! first visit (one RNG draw per arc) and then picks uniformly among the
//! survivors — `O(d)` RNG draws and `O(d)` memory traffic per fresh step.
//! The alias backend precomputes, per vertex and per CSR direction, a Walker
//! alias table over the vertex's *expected one-step transition distribution*
//!
//! ```text
//! Pr(u →₁ v) = P(u, v) · E[ 1 / (1 + X₋ᵥ) ],
//! ```
//!
//! where `X₋ᵥ` is the Poisson-binomial count of the *other* arcs of `u`
//! present in a random possible world, plus one explicit **death** outcome
//! carrying the leftover mass `1 − Σᵥ Pr(u →₁ v)` (the probability that no
//! arc of `u` exists at all).  A step then costs **one** `f64` draw and one
//! 16-byte slot read, independent of degree.
//!
//! The two backends are *different estimators*, not bit-compatible ones: the
//! alias table draws every step independently from the exact first-visit
//! marginal, trading the within-walk possible-world correlation that the
//! lazy sampler memoises (the paper's `W(k) ≠ W(1)ᵏ` observation, material
//! from `k = 3` on) for raw speed.  On certain graphs (all probabilities 1)
//! the marginal is the uniform skeleton walk and the two backends agree in
//! distribution at every horizon.  Which backend produced an answer is part
//! of the engine configuration — see `SamplerKind` in `usim_core` — and is
//! folded into the result-cache fingerprint so answers never mix.
//!
//! # Table layout
//!
//! Vertex `v` with degree `d(v)` owns `d(v) + 1` slots — its neighbors plus
//! the death outcome, encoded as the [`DEAD`] sentinel.  Slots of all
//! vertices are concatenated in vertex order, so the slot offset of `v` in a
//! direction is `csr_offsets[v] + v` and a whole-direction table is exactly
//! `num_arcs + num_vertices` slots.

use crate::csr::CsrView;
use crate::{Probability, VertexId};

/// The walk-terminated sentinel: the alias outcome meaning "no arc of this
/// vertex exists in the sampled world".  Equal to `rwalk::arena::DEAD`.
pub const DEAD: VertexId = VertexId::MAX;

/// One packed alias slot: a biased coin between two outcomes.
///
/// Drawing from the table picks a slot uniformly, then returns
/// [`AliasSlot::first`] with probability [`AliasSlot::prob`] and
/// [`AliasSlot::second`] otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AliasSlot {
    /// Probability of returning [`AliasSlot::first`], in `[0, 1]`.
    pub prob: f64,
    /// The outcome kept by this slot ([`DEAD`] for the death outcome).
    pub first: VertexId,
    /// The overflow (alias) outcome donated by Vose construction.
    pub second: VertexId,
}

/// Per-vertex alias tables for one CSR direction: the slots of all vertices
/// concatenated in vertex order, `d(v) + 1` slots per vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// `num_vertices + 1` entries; slot range of `v` is
    /// `offsets[v]..offsets[v + 1]`.
    offsets: Vec<usize>,
    /// `num_arcs + num_vertices` packed slots.
    slots: Vec<AliasSlot>,
}

impl AliasTable {
    /// Builds the table for every vertex of one CSR direction.
    pub fn from_view(view: CsrView<'_>) -> Self {
        let n = view.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut slots = Vec::with_capacity(view.num_arcs() + n);
        offsets.push(0);
        let mut scratch = RowScratch::default();
        for v in 0..n as VertexId {
            build_alias_row_into(view.neighbors(v), view.probabilities(v), &mut scratch);
            slots.extend_from_slice(&scratch.slots);
            offsets.push(slots.len());
        }
        AliasTable { offsets, slots }
    }

    /// Reassembles a table from its parts (the snapshot reader, which has
    /// already validated the offsets against the CSR arrays).
    pub(crate) fn from_raw(offsets: Vec<usize>, slots: Vec<AliasSlot>) -> Self {
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(offsets.last().copied(), Some(slots.len()));
        AliasTable { offsets, slots }
    }

    /// Number of vertices the table covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of slots (`num_arcs + num_vertices`).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The slots of vertex `v` (`degree(v) + 1` of them).
    #[inline]
    pub fn slots_of(&self, v: VertexId) -> &[AliasSlot] {
        let v = v as usize;
        &self.slots[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The entire flat slot array (all vertices concatenated).
    #[inline]
    pub fn slots_flat(&self) -> &[AliasSlot] {
        &self.slots
    }

    /// A borrowed, `Copy` view of the whole table.
    #[inline]
    pub fn view(&self) -> CsrAliasView<'_> {
        CsrAliasView {
            offsets: &self.offsets,
            slots: &self.slots,
        }
    }
}

/// Read-only access to per-vertex alias slots in one direction — the
/// interface the table-driven walk sampler needs.  Implemented by
/// [`CsrAliasView`] (static tables) and by `OverlayAliasView` (a base table
/// patched by a [`crate::DeltaOverlay`]).
pub trait AliasView {
    /// Number of vertices `|V|`.
    fn num_vertices(&self) -> usize;

    /// The alias slots of `v` (`degree(v) + 1` of them, never empty).
    fn slots(&self, v: VertexId) -> &[AliasSlot];
}

/// A borrowed, direction-fixed view of an [`AliasTable`].  `Copy`, like
/// [`CsrView`] — hand it to workers freely.
#[derive(Debug, Clone, Copy)]
pub struct CsrAliasView<'a> {
    pub(crate) offsets: &'a [usize],
    pub(crate) slots: &'a [AliasSlot],
}

impl<'a> CsrAliasView<'a> {
    /// The slots of vertex `v`.
    #[inline]
    pub fn slots_of(&self, v: VertexId) -> &'a [AliasSlot] {
        let v = v as usize;
        &self.slots[self.offsets[v]..self.offsets[v + 1]]
    }
}

impl AliasView for CsrAliasView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn slots(&self, v: VertexId) -> &[AliasSlot] {
        self.slots_of(v)
    }
}

/// Draws one outcome from a vertex's alias slots using a single uniform
/// `f64` draw: the integer part picks the slot, the fractional part flips
/// the slot's biased coin.
///
/// Returns [`DEAD`] when the death outcome is drawn.
#[inline]
pub fn alias_draw(slots: &[AliasSlot], unit: f64) -> VertexId {
    debug_assert!(!slots.is_empty(), "every vertex owns at least one slot");
    let scaled = unit * slots.len() as f64;
    // `unit` < 1, but `scaled` can round up to exactly `len` for unit values
    // just below 1; clamp instead of risking an out-of-bounds read.
    let index = (scaled as usize).min(slots.len() - 1);
    let slot = &slots[index];
    if scaled - (index as f64) < slot.prob {
        slot.first
    } else {
        slot.second
    }
}

/// Scratch buffers reused across per-vertex row builds.
#[derive(Default)]
struct RowScratch {
    /// Presence-count distribution of all arcs of the vertex.
    full: Vec<f64>,
    /// Deconvolved distribution with one arc removed.
    others: Vec<f64>,
    /// Outcome weights: one per neighbor plus the death mass.
    weights: Vec<f64>,
    /// Vose worklists of slot indices.
    small: Vec<usize>,
    large: Vec<usize>,
    /// The finished row.
    slots: Vec<AliasSlot>,
}

/// Builds the alias row of a single vertex from its sorted adjacency.
///
/// Public (crate-wide) entry point shared by the whole-graph build and the
/// overlay's per-vertex patch path, so both produce bit-identical rows for
/// identical adjacency — the property that lets compaction copy unpatched
/// rows instead of rebuilding them.
pub(crate) fn build_alias_row(neighbors: &[VertexId], probs: &[Probability]) -> Vec<AliasSlot> {
    let mut scratch = RowScratch::default();
    build_alias_row_into(neighbors, probs, &mut scratch);
    scratch.slots
}

fn build_alias_row_into(neighbors: &[VertexId], probs: &[Probability], s: &mut RowScratch) {
    let d = neighbors.len();
    debug_assert_eq!(d, probs.len());
    s.slots.clear();
    if d == 0 {
        // No possible arcs: the walk always dies here.
        s.slots.push(AliasSlot {
            prob: 1.0,
            first: DEAD,
            second: DEAD,
        });
        return;
    }

    // Expected one-step marginals: weight_j = P(u, v_j) · E[1/(1 + X₋ⱼ)],
    // computed for all j in O(d²) via one presence-count DP plus one
    // deconvolution per arc (the same recurrences as rwalk::expected, kept
    // self-contained here because rwalk depends on this crate).
    presence_count_distribution_into(probs, &mut s.full);
    s.weights.clear();
    let mut survival = 0.0; // Σⱼ weight_j = Pr(at least one arc exists)
    for &p in probs {
        remove_bernoulli_into(&s.full, p, &mut s.others);
        let expectation: f64 = s
            .others
            .iter()
            .enumerate()
            .map(|(x, &rx)| rx / (x + 1) as f64)
            .sum();
        let w = (p * expectation).max(0.0);
        survival += w;
        s.weights.push(w);
    }
    // Death carries the leftover mass; clamp the f64 cancellation noise.
    s.weights.push((1.0 - survival).max(0.0));

    // Vose construction over the d + 1 outcomes.  Outcome j < d is neighbor
    // j; outcome d is DEAD.  Deterministic: worklists are filled in index
    // order and popped LIFO, so identical inputs yield identical tables.
    let count = d + 1;
    let total: f64 = s.weights.iter().sum();
    debug_assert!(total > 0.0);
    let scale = count as f64 / total;
    for w in &mut s.weights {
        *w *= scale;
    }
    let outcome = |j: usize| if j < d { neighbors[j] } else { DEAD };
    s.slots.resize(
        count,
        AliasSlot {
            prob: 1.0,
            first: DEAD,
            second: DEAD,
        },
    );
    s.small.clear();
    s.large.clear();
    for (j, &w) in s.weights.iter().enumerate() {
        if w < 1.0 {
            s.small.push(j);
        } else {
            s.large.push(j);
        }
    }
    while let (Some(&j), Some(&k)) = (s.small.last(), s.large.last()) {
        s.small.pop();
        s.slots[j] = AliasSlot {
            prob: s.weights[j],
            first: outcome(j),
            second: outcome(k),
        };
        s.weights[k] = (s.weights[k] + s.weights[j]) - 1.0;
        if s.weights[k] < 1.0 {
            s.large.pop();
            s.small.push(k);
        }
    }
    // Leftovers (all ≈ 1 up to rounding) keep their own outcome entirely.
    for &j in s.large.iter().chain(s.small.iter()) {
        s.slots[j] = AliasSlot {
            prob: 1.0,
            first: outcome(j),
            second: outcome(j),
        };
    }
}

/// `out[x] = Pr(exactly x of the arcs exist)`, `out.len() == probs.len() + 1`.
fn presence_count_distribution_into(probs: &[Probability], out: &mut Vec<f64>) {
    out.clear();
    out.resize(probs.len() + 1, 0.0);
    out[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        let upper = i + 1;
        out[upper] = out[upper - 1] * p;
        for j in (1..upper).rev() {
            out[j] = out[j - 1] * p + out[j] * (1.0 - p);
        }
        out[0] *= 1.0 - p;
    }
}

/// Deconvolves one Bernoulli(`p`) variable out of the presence-count
/// distribution `r`, running the recurrence from whichever end is
/// numerically stable (bottom for `p ≤ 0.5`, top for `p > 0.5`).
fn remove_bernoulli_into(r: &[f64], p: Probability, out: &mut Vec<f64>) {
    let n = r.len() - 1;
    debug_assert!(n >= 1);
    out.clear();
    out.resize(n, 0.0);
    if p <= 0.5 {
        out[0] = r[0] / (1.0 - p);
        for x in 1..n {
            out[x] = (r[x] - p * out[x - 1]) / (1.0 - p);
        }
    } else {
        out[n - 1] = r[n] / p;
        for x in (1..n).rev() {
            out[x - 1] = (r[x] - (1.0 - p) * out[x]) / p;
        }
    }
    for v in out.iter_mut() {
        if *v < 0.0 && *v > -1e-12 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, UncertainGraph};

    fn fig1_graph() -> UncertainGraph {
        UncertainGraph::from_arcs(
            5,
            [
                (0, 2, 0.8),
                (0, 3, 0.5),
                (1, 0, 0.8),
                (1, 2, 0.9),
                (2, 0, 0.7),
                (2, 3, 0.6),
                (3, 4, 0.6),
                (3, 1, 0.8),
            ],
        )
        .unwrap()
    }

    /// Recovers the outcome distribution a table encodes by integrating the
    /// slot geometry (each slot covers `1/len` of the unit interval, split
    /// at `prob`).
    fn table_distribution(slots: &[AliasSlot]) -> std::collections::HashMap<VertexId, f64> {
        let mut dist = std::collections::HashMap::new();
        let weight = 1.0 / slots.len() as f64;
        for slot in slots {
            *dist.entry(slot.first).or_insert(0.0) += weight * slot.prob;
            *dist.entry(slot.second).or_insert(0.0) += weight * (1.0 - slot.prob);
        }
        dist.retain(|_, w| *w > 1e-15);
        dist
    }

    #[test]
    fn row_encodes_exact_one_step_marginals() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let view = csr.forward();
        // Vertex 0: arcs to 2 (0.8) and 3 (0.5).
        // Pr(0→2) = 0.8·(E[1/(1+X)]) with X ~ Bernoulli(0.5): 0.8·(0.5·1 + 0.5·½) = 0.6
        // Pr(0→3) = 0.5·(0.2·1 + 0.8·½) = 0.3; death = 0.2·0.5 = 0.1.
        let row = build_alias_row(view.neighbors(0), view.probabilities(0));
        assert_eq!(row.len(), 3);
        let dist = table_distribution(&row);
        assert!((dist[&2] - 0.6).abs() < 1e-12, "{dist:?}");
        assert!((dist[&3] - 0.3).abs() < 1e-12, "{dist:?}");
        assert!((dist[&DEAD] - 0.1).abs() < 1e-12, "{dist:?}");
    }

    #[test]
    fn certain_graph_rows_are_uniform_with_no_death_mass() {
        let g = fig1_graph().certain();
        let csr = CsrGraph::from_uncertain(&g);
        let view = csr.forward();
        for v in 0..csr.num_vertices() as VertexId {
            let nbrs = view.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let dist = table_distribution(&build_alias_row(nbrs, view.probabilities(v)));
            assert!(!dist.contains_key(&DEAD), "vertex {v}: {dist:?}");
            for &u in nbrs {
                assert!(
                    (dist[&u] - 1.0 / nbrs.len() as f64).abs() < 1e-12,
                    "vertex {v}: {dist:?}"
                );
            }
        }
    }

    #[test]
    fn degree_zero_vertex_always_dies() {
        let row = build_alias_row(&[], &[]);
        assert_eq!(row.len(), 1);
        for unit in [0.0, 0.25, 0.5, 0.999_999] {
            assert_eq!(alias_draw(&row, unit), DEAD);
        }
    }

    #[test]
    fn whole_table_layout_is_dense_and_aligned_with_csr() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        for view in [csr.forward(), csr.reverse()] {
            let table = AliasTable::from_view(view);
            assert_eq!(table.num_vertices(), csr.num_vertices());
            assert_eq!(table.num_slots(), csr.num_arcs() + csr.num_vertices());
            for v in 0..csr.num_vertices() as VertexId {
                assert_eq!(table.slots_of(v).len(), view.degree(v) + 1);
                // The per-vertex build is the same function the table build
                // ran, so rows must be bit-identical.
                assert_eq!(
                    table.slots_of(v),
                    build_alias_row(view.neighbors(v), view.probabilities(v)).as_slice()
                );
            }
        }
    }

    #[test]
    fn draw_covers_every_outcome_and_respects_frequencies() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let row = build_alias_row(csr.forward().neighbors(0), csr.forward().probabilities(0));
        // Deterministic stratified sweep of the unit interval stands in for
        // an RNG: empirical frequencies must converge on the marginals.
        let trials = 1_000_000;
        let mut counts: std::collections::HashMap<VertexId, usize> = Default::default();
        for i in 0..trials {
            let unit = (i as f64 + 0.5) / trials as f64;
            *counts.entry(alias_draw(&row, unit)).or_insert(0) += 1;
        }
        let freq = |v: VertexId| counts.get(&v).copied().unwrap_or(0) as f64 / trials as f64;
        assert!((freq(2) - 0.6).abs() < 1e-3);
        assert!((freq(3) - 0.3).abs() < 1e-3);
        assert!((freq(DEAD) - 0.1).abs() < 1e-3);
    }

    #[test]
    fn draw_clamps_unit_values_at_the_top_edge() {
        let row = build_alias_row(&[7], &[1.0]);
        // f64 just below 1.0 scaled by len can round to len exactly.
        let top = 1.0 - f64::EPSILON / 2.0;
        assert_eq!(alias_draw(&row, top), 7);
    }

    #[test]
    fn extreme_probabilities_stay_finite_and_normalised() {
        let g = UncertainGraph::from_arcs(
            5,
            [(0, 1, 1.0), (0, 2, 0.999_999), (0, 3, 1e-9), (0, 4, 0.5)],
        )
        .unwrap();
        let csr = CsrGraph::from_uncertain(&g);
        let row = build_alias_row(csr.forward().neighbors(0), csr.forward().probabilities(0));
        let dist = table_distribution(&row);
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9, "{dist:?}");
        assert!(dist.values().all(|w| w.is_finite() && *w >= 0.0));
        // An arc with probability 1 and another near-certain arc: death mass
        // is (essentially) zero.
        assert!(dist.get(&DEAD).copied().unwrap_or(0.0) < 1e-6);
    }
}
