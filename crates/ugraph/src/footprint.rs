//! Compact vertex-set summaries for fine-grained cache invalidation.
//!
//! A [`VertexFootprint`] is a small fixed-size bloom filter (256 bits, two
//! probe bits per vertex) summarising a set of vertex ids.  The random-walk
//! estimators have a locality property that makes this worth having: a
//! cached SimRank answer depends only on the adjacency rows of the vertices
//! its walks actually visited, so an update round that touches a *disjoint*
//! vertex set cannot change the answer.  Callers record the visited set
//! into a footprint at computation time and test it against the round's
//! touched-vertex set ([`touched_vertices`]) at invalidation time.
//!
//! The filter's guarantee is deliberately **one-sided**: membership tests
//! can report false *positives* (two vertices sharing probe bits) but never
//! false *negatives* — every inserted vertex tests positive forever.  For
//! invalidation that means a footprint can only claim an answer depends on
//! *more* vertices than it really does: false positives over-invalidate
//! (a survivable entry is recomputed, costing time), never under-invalidate
//! (a stale answer can never survive).  Correctness never rests on the
//! filter being precise.
//!
//! # Example
//!
//! ```
//! use ugraph::footprint::VertexFootprint;
//!
//! let mut walked = VertexFootprint::new();
//! walked.insert(3);
//! walked.insert(7);
//! assert!(walked.may_contain(3) && walked.may_contain(7));
//! // Disjoint touched sets are (modulo false positives) rejected…
//! let mut touched = VertexFootprint::new();
//! touched.insert(1000);
//! // …and a shared vertex is always detected: no false negatives.
//! touched.insert(7);
//! assert!(walked.intersects(&touched));
//! ```

use crate::overlay::GraphUpdate;
use crate::VertexId;

/// Number of bits in a [`VertexFootprint`].
pub const FOOTPRINT_BITS: usize = 256;
const WORDS: usize = FOOTPRINT_BITS / 64;

/// A 256-bit bloom filter over vertex ids (two probe bits per vertex).
///
/// See the [module docs](self) for the one-sided guarantee and the
/// invalidation use case.  The type is `Copy` and 32 bytes, cheap enough to
/// store alongside every cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VertexFootprint {
    words: [u64; WORDS],
}

/// SplitMix64 finalizer: decorrelates the two probe-bit indices from the
/// (often sequential) vertex ids.
#[inline]
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The two probe-bit positions of a vertex, as `(word, mask)` pairs.
#[inline]
fn probes(v: VertexId) -> [(usize, u64); 2] {
    let h = mix(v as u64);
    let a = (h & 0xff) as usize;
    let b = ((h >> 32) & 0xff) as usize;
    [(a / 64, 1u64 << (a % 64)), (b / 64, 1u64 << (b % 64))]
}

impl VertexFootprint {
    /// The empty footprint (no vertex tests positive).
    pub fn new() -> Self {
        VertexFootprint::default()
    }

    /// The all-ones footprint: every vertex tests positive, so the entry it
    /// guards dies on *any* non-empty touched set.  This is the safe
    /// default for answers whose visited set is unknown.
    pub fn saturated() -> Self {
        VertexFootprint {
            words: [u64::MAX; WORDS],
        }
    }

    /// Records vertex `v`.
    #[inline]
    pub fn insert(&mut self, v: VertexId) {
        for (word, mask) in probes(v) {
            self.words[word] |= mask;
        }
    }

    /// Whether `v` *may* have been recorded.  `true` for every inserted
    /// vertex (no false negatives); occasionally `true` for others (false
    /// positives over-approximate, which only over-invalidates).
    #[inline]
    pub fn may_contain(&self, v: VertexId) -> bool {
        probes(v)
            .iter()
            .all(|&(word, mask)| self.words[word] & mask != 0)
    }

    /// Whether any bit is shared with `other`.  When `other` summarises a
    /// touched-vertex set this is a conservative quick test: `false` proves
    /// the sets are disjoint (a shared vertex sets the same bits in both),
    /// `true` may be a bit-level coincidence — callers wanting precision
    /// re-test per vertex with [`VertexFootprint::may_contain`].
    #[inline]
    pub fn intersects(&self, other: &VertexFootprint) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Folds `other` into `self` (set union).
    pub fn merge(&mut self, other: &VertexFootprint) {
        for (word, o) in self.words.iter_mut().zip(other.words.iter()) {
            *word |= o;
        }
    }

    /// Whether no vertex has been recorded.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of bits set (observability; full ≈ always-invalidated).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

/// The deduplicated, sorted set of vertices an update batch touches: both
/// endpoints of every update.
///
/// Both endpoints are conservative on purpose.  An arc mutation of
/// `(source, target)` changes the *forward* adjacency row of `source` and
/// the *reverse* (transpose) row of `target`; which row a walk reads
/// depends on the engine's walk direction, so including both endpoints
/// keeps the touched set a superset of the changed rows under either
/// direction — over-invalidation at worst, never under-invalidation.
pub fn touched_vertices(updates: &[GraphUpdate]) -> Vec<VertexId> {
    let mut touched: Vec<VertexId> = updates
        .iter()
        .flat_map(|u| {
            let (s, t) = u.endpoints();
            [s, t]
        })
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_vertices_always_test_positive() {
        let mut fp = VertexFootprint::new();
        for v in (0..10_000u32).step_by(7) {
            fp.insert(v);
        }
        for v in (0..10_000u32).step_by(7) {
            assert!(fp.may_contain(v), "false negative for {v}");
        }
    }

    #[test]
    fn empty_footprint_contains_nothing_and_saturated_everything() {
        let empty = VertexFootprint::new();
        let full = VertexFootprint::saturated();
        assert!(empty.is_empty());
        assert!(!full.is_empty());
        for v in [0u32, 1, 255, 256, 12345, u32::MAX] {
            assert!(!empty.may_contain(v));
            assert!(full.may_contain(v));
        }
        assert_eq!(full.count_ones() as usize, FOOTPRINT_BITS);
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    fn sparse_footprints_reject_most_foreign_vertices() {
        // Not a hard guarantee (bloom filters have false positives), but a
        // 16-vertex footprint must reject the clear majority of a foreign
        // id range, or the filter is useless for survival.
        let mut fp = VertexFootprint::new();
        for v in 0..16u32 {
            fp.insert(v);
        }
        let false_positives = (1000..2000u32).filter(|&v| fp.may_contain(v)).count();
        assert!(
            false_positives < 100,
            "16 inserts should fill few bits: {false_positives} FPs"
        );
    }

    #[test]
    fn shared_vertices_always_intersect() {
        for shared in [0u32, 99, 4096, 70_000] {
            let mut a = VertexFootprint::new();
            let mut b = VertexFootprint::new();
            a.insert(1);
            a.insert(shared);
            b.insert(1_000_000);
            b.insert(shared);
            assert!(a.intersects(&b), "shared vertex {shared} missed");
            assert!(b.intersects(&a));
        }
    }

    #[test]
    fn merge_is_union() {
        let mut a = VertexFootprint::new();
        let mut b = VertexFootprint::new();
        a.insert(1);
        b.insert(2);
        a.merge(&b);
        assert!(a.may_contain(1) && a.may_contain(2));
    }

    #[test]
    fn touched_vertices_collects_both_endpoints_sorted_deduped() {
        let updates = [
            GraphUpdate::InsertArc {
                source: 9,
                target: 2,
                probability: 0.5,
            },
            GraphUpdate::DeleteArc {
                source: 2,
                target: 5,
            },
            GraphUpdate::SetProbability {
                source: 9,
                target: 5,
                probability: 0.1,
            },
        ];
        assert_eq!(touched_vertices(&updates), vec![2, 5, 9]);
        assert!(touched_vertices(&[]).is_empty());
    }
}
