//! Dynamic uncertain graphs: a mutable delta overlay on an immutable
//! [`CsrGraph`].
//!
//! The paper models uncertain graphs whose arc probabilities come from real,
//! evolving data (entity-resolution links, noisy crawls), but a [`CsrGraph`]
//! is frozen at build time: any churn used to force a full rebuild of the
//! flat arrays and of everything referencing them.  [`DeltaOverlay`] makes
//! the CSR engine long-lived instead:
//!
//! * **updates** ([`GraphUpdate`]: arc insertion, deletion, probability
//!   change) are validated as a batch and recorded as sorted per-vertex
//!   patched rows — the touched vertex's base slice merged with its
//!   accumulated deltas, kept sorted by target id so every binary-search and
//!   zip-iteration invariant of [`CsrView`] carries over;
//! * **reads** go through [`OverlayView`], a [`GraphView`] that serves a
//!   patched row when one exists and the untouched base slice otherwise.
//!   Untouched vertices therefore return pointer-identical slices, which
//!   keeps the RNG draw order of random walks over them bit-identical to the
//!   static graph — the property the batch engine's determinism tests pin;
//! * **compaction** folds the patched rows back into a fresh contiguous
//!   [`CsrGraph`] once the recorded churn crosses a [`CompactionPolicy`]
//!   threshold, bounding both the per-read hash lookup cost and the overlay
//!   memory.
//!
//! Both directions (forward adjacency and its transpose) are patched in
//! lockstep, so the overlay maintains the same invariant as
//! [`CsrGraph::from_uncertain`]: the reverse view is exactly the forward
//! view of the transposed graph.
//!
//! # Example
//!
//! ```
//! use ugraph::{DeltaOverlay, GraphUpdate, UncertainGraph};
//!
//! let g = UncertainGraph::from_arcs(3, [(0, 1, 0.5), (1, 2, 0.9)]).unwrap();
//! let mut overlay = DeltaOverlay::from_graph(&g);
//! overlay
//!     .apply_all(&[
//!         GraphUpdate::InsertArc { source: 2, target: 0, probability: 0.4 },
//!         GraphUpdate::SetProbability { source: 0, target: 1, probability: 0.7 },
//!         GraphUpdate::DeleteArc { source: 1, target: 2 },
//!     ])
//!     .unwrap();
//! assert_eq!(overlay.num_arcs(), 2);
//! assert_eq!(overlay.arc_probability(0, 1), Some(0.7));
//! assert!(!overlay.has_arc(1, 2));
//! // The reverse view tracks the same mutations.
//! assert_eq!(overlay.reverse().neighbors(0), &[2]);
//! ```

use crate::alias::{build_alias_row, AliasSlot, AliasTable, AliasView, CsrAliasView};
use crate::csr::{CsrGraph, CsrView, GraphView};
use crate::uncertain::UncertainGraph;
use crate::{Probability, VertexId};
use std::collections::HashMap;
use std::fmt;

/// One mutation of a live uncertain graph.
///
/// The three variants have strict semantics so that a malformed update
/// stream is a reported error, never a silent merge: inserting an existing
/// arc, deleting a missing arc and re-weighting a missing arc are all
/// rejected (see [`UpdateError`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphUpdate {
    /// Add the arc `(source, target)` with the given existence probability.
    /// Fails with [`UpdateError::ArcAlreadyExists`] when the arc is present.
    InsertArc {
        /// Source vertex of the new arc.
        source: VertexId,
        /// Target vertex of the new arc.
        target: VertexId,
        /// Existence probability in `(0, 1]`.
        probability: Probability,
    },
    /// Remove the arc `(source, target)`.  Fails with
    /// [`UpdateError::ArcNotFound`] when the arc is absent.
    DeleteArc {
        /// Source vertex of the arc to remove.
        source: VertexId,
        /// Target vertex of the arc to remove.
        target: VertexId,
    },
    /// Replace the existence probability of the arc `(source, target)`.
    /// Fails with [`UpdateError::ArcNotFound`] when the arc is absent.
    SetProbability {
        /// Source vertex of the arc to re-weight.
        source: VertexId,
        /// Target vertex of the arc to re-weight.
        target: VertexId,
        /// New existence probability in `(0, 1]`.
        probability: Probability,
    },
}

impl GraphUpdate {
    /// The `(source, target)` endpoints the update touches.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            GraphUpdate::InsertArc { source, target, .. }
            | GraphUpdate::DeleteArc { source, target }
            | GraphUpdate::SetProbability { source, target, .. } => (source, target),
        }
    }
}

/// Why a batch of [`GraphUpdate`]s was rejected.
///
/// [`DeltaOverlay::apply_all`] is all-or-nothing: the batch is validated
/// (against the graph state it would observe while being applied in order)
/// before any mutation happens, so an `Err` leaves the overlay untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateError {
    /// An update references a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices of the live graph.
        num_vertices: usize,
    },
    /// An insert or re-weight carried a probability outside `(0, 1]`.
    InvalidProbability {
        /// Source vertex of the offending update.
        source: VertexId,
        /// Target vertex of the offending update.
        target: VertexId,
        /// The offending probability value.
        probability: Probability,
    },
    /// [`GraphUpdate::InsertArc`] named an arc that already exists.
    ArcAlreadyExists {
        /// Source vertex of the duplicate arc.
        source: VertexId,
        /// Target vertex of the duplicate arc.
        target: VertexId,
    },
    /// [`GraphUpdate::DeleteArc`] / [`GraphUpdate::SetProbability`] named an
    /// arc that does not exist.
    ArcNotFound {
        /// Source vertex of the missing arc.
        source: VertexId,
        /// Target vertex of the missing arc.
        target: VertexId,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "update references vertex {vertex}, but the graph has {num_vertices} vertices"
            ),
            UpdateError::InvalidProbability {
                source,
                target,
                probability,
            } => write!(
                f,
                "update of arc ({source}, {target}) carries invalid probability {probability}; \
                 probabilities must lie in (0, 1]"
            ),
            UpdateError::ArcAlreadyExists { source, target } => write!(
                f,
                "cannot insert arc ({source}, {target}): it already exists \
                 (use a set-probability update to re-weight it)"
            ),
            UpdateError::ArcNotFound { source, target } => {
                write!(f, "arc ({source}, {target}) does not exist")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// When a [`DeltaOverlay`] folds its patched rows back into a fresh CSR.
///
/// Compaction triggers once the number of recorded update operations since
/// the last compaction reaches
/// `max(min_ops, ceil(ops_fraction * base_arcs))`.  The two knobs cover both
/// regimes: `min_ops` keeps tiny graphs from compacting on every update,
/// `ops_fraction` bounds the overlay relative to the graph size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Minimum recorded operations before compaction is considered.
    pub min_ops: usize,
    /// Compact when the recorded operations exceed this fraction of the
    /// base graph's arc count.
    pub ops_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_ops: 4096,
            ops_fraction: 0.25,
        }
    }
}

impl CompactionPolicy {
    /// A policy that compacts after every applied batch (threshold 1).
    pub fn eager() -> Self {
        CompactionPolicy {
            min_ops: 1,
            ops_fraction: 0.0,
        }
    }

    /// A policy that never compacts automatically ([`DeltaOverlay::compact`]
    /// can still be called explicitly).
    pub fn never() -> Self {
        CompactionPolicy {
            min_ops: usize::MAX,
            ops_fraction: 0.0,
        }
    }

    /// The operation-count threshold for a base graph with `base_arcs` arcs.
    pub fn threshold(&self, base_arcs: usize) -> usize {
        let by_fraction = (self.ops_fraction * base_arcs as f64).ceil();
        let by_fraction = if by_fraction.is_finite() && by_fraction >= 0.0 {
            by_fraction as usize
        } else {
            0
        };
        self.min_ops.max(by_fraction).max(1)
    }
}

/// What a successful [`DeltaOverlay::apply_all`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateSummary {
    /// Arcs inserted by the batch.
    pub inserted: usize,
    /// Arcs deleted by the batch.
    pub deleted: usize,
    /// Arcs whose probability the batch replaced.
    pub reweighted: usize,
    /// Whether applying the batch triggered a compaction.
    pub compacted: bool,
    /// Live arc count after the batch.
    pub num_arcs: usize,
}

/// The merged, sorted adjacency of one touched vertex in one direction:
/// the vertex's base slice with all recorded deltas folded in.
#[derive(Debug, Clone, Default)]
struct Row {
    targets: Vec<VertexId>,
    probs: Vec<Probability>,
    /// The vertex's rebuilt alias row, maintained only when the base carries
    /// alias tables (refreshed after every applied batch that touches the
    /// vertex, so reads never see a stale table).
    alias: Option<Vec<AliasSlot>>,
}

impl Row {
    fn insert(&mut self, w: VertexId, p: Probability) {
        let idx = self
            .targets
            .binary_search(&w)
            .expect_err("validated insert of an arc that already exists");
        self.targets.insert(idx, w);
        self.probs.insert(idx, p);
    }

    fn remove(&mut self, w: VertexId) {
        let idx = self
            .targets
            .binary_search(&w)
            .expect("validated delete of an arc that does not exist");
        self.targets.remove(idx);
        self.probs.remove(idx);
    }

    fn set(&mut self, w: VertexId, p: Probability) {
        let idx = self
            .targets
            .binary_search(&w)
            .expect("validated re-weight of an arc that does not exist");
        self.probs[idx] = p;
    }
}

/// The patched rows of one direction, keyed by touched vertex.
#[derive(Debug, Clone, Default)]
struct DirOverlay {
    rows: HashMap<VertexId, Row>,
}

impl DirOverlay {
    /// The patched row of `v`, seeding it from the base slice on first touch
    /// (this is the sorted-slice merge: the base view's slices are copied
    /// once, then edited in place in sorted order).
    fn row_mut(&mut self, base: CsrView<'_>, v: VertexId) -> &mut Row {
        self.rows.entry(v).or_insert_with(|| Row {
            targets: base.neighbors(v).to_vec(),
            probs: base.probabilities(v).to_vec(),
            alias: None,
        })
    }
}

/// A mutable uncertain graph: an immutable [`CsrGraph`] base plus sorted
/// per-vertex patched rows, compacted back into a fresh CSR when the churn
/// crosses the [`CompactionPolicy`] threshold.
///
/// See the [module documentation](self) for the design.
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    base: CsrGraph,
    forward: DirOverlay,
    reverse: DirOverlay,
    live_arcs: usize,
    ops_since_compaction: usize,
    version: u64,
    policy: CompactionPolicy,
}

impl DeltaOverlay {
    /// Wraps an existing CSR base with an empty overlay and the default
    /// [`CompactionPolicy`].
    pub fn new(base: CsrGraph) -> Self {
        Self::with_policy(base, CompactionPolicy::default())
    }

    /// Wraps an existing CSR base with an explicit compaction policy.
    pub fn with_policy(base: CsrGraph, policy: CompactionPolicy) -> Self {
        let live_arcs = base.num_arcs();
        DeltaOverlay {
            base,
            forward: DirOverlay::default(),
            reverse: DirOverlay::default(),
            live_arcs,
            ops_since_compaction: 0,
            version: 0,
            policy,
        }
    }

    /// Builds the CSR base from an [`UncertainGraph`] and wraps it.
    pub fn from_graph(graph: &UncertainGraph) -> Self {
        Self::new(CsrGraph::from_uncertain(graph))
    }

    /// Number of vertices `|V|` (fixed for the lifetime of the overlay).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of *live* arcs: the base arcs plus inserts minus deletes.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.live_arcs
    }

    /// The immutable CSR base.  After updates and before the next
    /// compaction this does **not** include the pending deltas; read through
    /// [`DeltaOverlay::forward`] / [`DeltaOverlay::reverse`] for the live
    /// graph.
    #[inline]
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Monotone version counter: bumped by every successful
    /// [`DeltaOverlay::apply_all`].
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Update operations recorded since the last compaction.
    #[inline]
    pub fn ops_since_compaction(&self) -> usize {
        self.ops_since_compaction
    }

    /// Number of distinct vertices with a patched row in either direction.
    pub fn patched_vertices(&self) -> usize {
        let mut vertices: Vec<VertexId> = self
            .forward
            .rows
            .keys()
            .chain(self.reverse.rows.keys())
            .copied()
            .collect();
        vertices.sort_unstable();
        vertices.dedup();
        vertices.len()
    }

    /// The compaction policy in use.
    #[inline]
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Replaces the compaction policy (takes effect on the next apply).
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// The live forward view: `neighbors(v)` are the out-neighbors of `v`
    /// with all pending deltas folded in.
    #[inline]
    pub fn forward(&self) -> OverlayView<'_> {
        OverlayView {
            base: self.base.forward(),
            rows: &self.forward.rows,
        }
    }

    /// The live reverse (transpose) view, patched in lockstep with the
    /// forward view.
    #[inline]
    pub fn reverse(&self) -> OverlayView<'_> {
        OverlayView {
            base: self.base.reverse(),
            rows: &self.reverse.rows,
        }
    }

    /// Whether the live graph contains the arc `(u, v)`.
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.forward().has_arc(u, v)
    }

    /// Existence probability of the live arc `(u, v)`, or `None` when
    /// absent.
    pub fn arc_probability(&self, u: VertexId, v: VertexId) -> Option<Probability> {
        self.forward().arc_probability(u, v)
    }

    /// Validates a batch against the state each update would observe when
    /// the batch is applied in order (so `insert (u,v); set (u,v)` is legal
    /// in one batch), without mutating anything.
    fn validate(&self, updates: &[GraphUpdate]) -> Result<(), UpdateError> {
        let n = self.num_vertices();
        // Existence decisions made by earlier updates of this same batch.
        let mut overrides: HashMap<(VertexId, VertexId), bool> = HashMap::new();
        for update in updates {
            let (source, target) = update.endpoints();
            for vertex in [source, target] {
                if (vertex as usize) >= n {
                    return Err(UpdateError::VertexOutOfRange {
                        vertex,
                        num_vertices: n,
                    });
                }
            }
            if let GraphUpdate::InsertArc { probability, .. }
            | GraphUpdate::SetProbability { probability, .. } = *update
            {
                if !crate::is_valid_probability(probability) {
                    return Err(UpdateError::InvalidProbability {
                        source,
                        target,
                        probability,
                    });
                }
            }
            let exists = overrides
                .get(&(source, target))
                .copied()
                .unwrap_or_else(|| self.has_arc(source, target));
            match update {
                GraphUpdate::InsertArc { .. } => {
                    if exists {
                        return Err(UpdateError::ArcAlreadyExists { source, target });
                    }
                    overrides.insert((source, target), true);
                }
                GraphUpdate::DeleteArc { .. } => {
                    if !exists {
                        return Err(UpdateError::ArcNotFound { source, target });
                    }
                    overrides.insert((source, target), false);
                }
                GraphUpdate::SetProbability { .. } => {
                    if !exists {
                        return Err(UpdateError::ArcNotFound { source, target });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a batch of updates atomically: the batch is validated first
    /// and an error leaves the overlay untouched.  On success the version is
    /// bumped and, when the recorded churn crosses the policy threshold, the
    /// overlay is compacted into a fresh CSR base.
    pub fn apply_all(&mut self, updates: &[GraphUpdate]) -> Result<UpdateSummary, UpdateError> {
        self.validate(updates)?;
        let mut summary = UpdateSummary::default();
        for update in updates {
            match *update {
                GraphUpdate::InsertArc {
                    source,
                    target,
                    probability,
                } => {
                    self.forward
                        .row_mut(self.base.forward(), source)
                        .insert(target, probability);
                    self.reverse
                        .row_mut(self.base.reverse(), target)
                        .insert(source, probability);
                    self.live_arcs += 1;
                    summary.inserted += 1;
                }
                GraphUpdate::DeleteArc { source, target } => {
                    self.forward
                        .row_mut(self.base.forward(), source)
                        .remove(target);
                    self.reverse
                        .row_mut(self.base.reverse(), target)
                        .remove(source);
                    self.live_arcs -= 1;
                    summary.deleted += 1;
                }
                GraphUpdate::SetProbability {
                    source,
                    target,
                    probability,
                } => {
                    self.forward
                        .row_mut(self.base.forward(), source)
                        .set(target, probability);
                    self.reverse
                        .row_mut(self.base.reverse(), target)
                        .set(source, probability);
                    summary.reweighted += 1;
                }
            }
        }
        // Partial alias rebuild: only the vertices this batch actually
        // touched (sources in the forward direction, targets in the
        // reverse) pay the O(d²) row rebuild; every other row keeps its
        // table bit-for-bit.
        if self.base.has_alias_tables() {
            let mut sources: Vec<VertexId> = updates.iter().map(|u| u.endpoints().0).collect();
            let mut targets: Vec<VertexId> = updates.iter().map(|u| u.endpoints().1).collect();
            for (dirty, overlay) in [
                (&mut sources, &mut self.forward),
                (&mut targets, &mut self.reverse),
            ] {
                dirty.sort_unstable();
                dirty.dedup();
                for &v in dirty.iter() {
                    let row = overlay
                        .rows
                        .get_mut(&v)
                        .expect("every update endpoint has a patched row");
                    row.alias = Some(build_alias_row(&row.targets, &row.probs));
                }
            }
        }
        self.ops_since_compaction += updates.len();
        self.version += 1;
        summary.compacted = self.maybe_compact();
        summary.num_arcs = self.live_arcs;
        Ok(summary)
    }

    /// Compacts when the recorded churn has crossed the policy threshold;
    /// returns whether a compaction happened.
    pub fn maybe_compact(&mut self) -> bool {
        if self.ops_since_compaction >= self.policy.threshold(self.base.num_arcs()) {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Folds every patched row back into a fresh contiguous [`CsrGraph`]
    /// base and clears the overlay.  Reads through the views before and
    /// after compaction observe the identical adjacency.
    pub fn compact(&mut self) {
        let n = self.num_vertices();
        let forward = merge_direction(n, self.live_arcs, self.base.forward(), &self.forward.rows);
        let reverse = merge_direction(n, self.live_arcs, self.base.reverse(), &self.reverse.rows);
        // Alias tables ride along: unpatched vertices keep their base slots
        // bit-for-bit, patched vertices contribute the row rebuilt at apply
        // time — no vertex is rebuilt twice, none is rebuilt needlessly.
        let alias = self.base.alias_tables().map(|(fwd, rev)| {
            (
                merge_alias_direction(n, self.live_arcs, fwd, &self.forward.rows),
                merge_alias_direction(n, self.live_arcs, rev, &self.reverse.rows),
            )
        });
        self.base = CsrGraph::from_raw_directions(n, forward, reverse);
        if let Some((fwd, rev)) = alias {
            self.base.set_alias_tables(fwd, rev);
        }
        self.forward.rows.clear();
        self.reverse.rows.clear();
        self.ops_since_compaction = 0;
    }

    /// Whether the base (and therefore the live views) carry alias tables.
    #[inline]
    pub fn has_alias_tables(&self) -> bool {
        self.base.has_alias_tables()
    }

    /// Builds alias tables for the base and a rebuilt alias row for every
    /// already-patched vertex, so the live alias views become available
    /// mid-flight; a no-op when tables are already maintained.
    pub fn build_alias_tables(&mut self) {
        if !self.base.has_alias_tables() {
            self.base.build_alias_tables();
        }
        for overlay in [&mut self.forward, &mut self.reverse] {
            for row in overlay.rows.values_mut() {
                if row.alias.is_none() {
                    row.alias = Some(build_alias_row(&row.targets, &row.probs));
                }
            }
        }
    }

    /// The live forward alias view, when the base carries tables.
    #[inline]
    pub fn forward_alias(&self) -> Option<OverlayAliasView<'_>> {
        self.base.forward_alias().map(|base| OverlayAliasView {
            base,
            rows: &self.forward.rows,
        })
    }

    /// The live reverse alias view, when the base carries tables.
    #[inline]
    pub fn reverse_alias(&self) -> Option<OverlayAliasView<'_>> {
        self.base.reverse_alias().map(|base| OverlayAliasView {
            base,
            rows: &self.reverse.rows,
        })
    }

    /// Materialises the live graph as an [`UncertainGraph`] (for persisting
    /// a mutated graph or cross-checking against a from-scratch rebuild).
    pub fn to_uncertain(&self) -> UncertainGraph {
        let view = self.forward();
        let mut triples: Vec<(VertexId, VertexId, Probability)> =
            Vec::with_capacity(self.live_arcs);
        for v in 0..self.num_vertices() as VertexId {
            for (&w, &p) in view.neighbors(v).iter().zip(view.probabilities(v)) {
                triples.push((v, w, p));
            }
        }
        UncertainGraph::from_sorted_unique_arcs(self.num_vertices(), &triples)
    }
}

/// Concatenates one direction's live rows (patched where available, base
/// slices otherwise) into fresh flat CSR arrays.
fn merge_direction(
    num_vertices: usize,
    num_arcs: usize,
    base: CsrView<'_>,
    rows: &HashMap<VertexId, Row>,
) -> (Vec<usize>, Vec<VertexId>, Vec<Probability>) {
    let mut offsets = Vec::with_capacity(num_vertices + 1);
    let mut targets = Vec::with_capacity(num_arcs);
    let mut probs = Vec::with_capacity(num_arcs);
    offsets.push(0);
    for v in 0..num_vertices as VertexId {
        match rows.get(&v) {
            Some(row) => {
                targets.extend_from_slice(&row.targets);
                probs.extend_from_slice(&row.probs);
            }
            None => {
                targets.extend_from_slice(base.neighbors(v));
                probs.extend_from_slice(base.probabilities(v));
            }
        }
        offsets.push(targets.len());
    }
    (offsets, targets, probs)
}

/// Concatenates one direction's live alias rows (the row rebuilt at apply
/// time where the vertex is patched, the base table's slots otherwise) into
/// a fresh contiguous [`AliasTable`].
fn merge_alias_direction(
    num_vertices: usize,
    num_arcs: usize,
    base: &AliasTable,
    rows: &HashMap<VertexId, Row>,
) -> AliasTable {
    let mut offsets = Vec::with_capacity(num_vertices + 1);
    let mut slots = Vec::with_capacity(num_arcs + num_vertices);
    offsets.push(0);
    for v in 0..num_vertices as VertexId {
        match rows.get(&v) {
            Some(row) => slots.extend_from_slice(
                row.alias
                    .as_deref()
                    .expect("patched rows carry alias rows while the base has tables"),
            ),
            None => slots.extend_from_slice(base.slots_of(v)),
        }
        offsets.push(slots.len());
    }
    AliasTable::from_raw(offsets, slots)
}

/// A borrowed, direction-fixed view of a [`DeltaOverlay`]: the base
/// [`CsrView`] plus the patched rows of that direction.
///
/// `Copy` like [`CsrView`], so samplers and workers take it by value.  For
/// a vertex without a patched row the returned slices are the base slices
/// themselves, which is what keeps walk RNG draw order over untouched
/// vertices identical to the static graph.
#[derive(Debug, Clone, Copy)]
pub struct OverlayView<'a> {
    base: CsrView<'a>,
    rows: &'a HashMap<VertexId, Row>,
}

impl<'a> OverlayView<'a> {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Whether `v` has a patched row in this direction.
    #[inline]
    pub fn is_patched(&self, v: VertexId) -> bool {
        self.rows.contains_key(&v)
    }

    /// Live neighbors of `v` in this direction, sorted by vertex id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        match self.rows.get(&v) {
            Some(row) => &row.targets,
            None => self.base.neighbors(v),
        }
    }

    /// Live probabilities of `v`'s arcs, aligned with
    /// [`OverlayView::neighbors`].
    #[inline]
    pub fn probabilities(&self, v: VertexId) -> &'a [Probability] {
        match self.rows.get(&v) {
            Some(row) => &row.probs,
            None => self.base.probabilities(v),
        }
    }

    /// Live degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the live arc `(u, v)` exists in this direction (binary
    /// search over `u`'s sorted live neighbors).
    #[inline]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Live existence probability of the arc `(u, v)` in this direction, or
    /// `None` when absent.
    pub fn arc_probability(&self, u: VertexId, v: VertexId) -> Option<Probability> {
        let idx = self.neighbors(u).binary_search(&v).ok()?;
        Some(self.probabilities(u)[idx])
    }
}

/// A borrowed, direction-fixed alias view of a [`DeltaOverlay`]: the base
/// [`CsrAliasView`] plus the patched rows of that direction.  Serves the
/// rebuilt alias row for a patched vertex and the base table's slots —
/// pointer-identical — otherwise, mirroring [`OverlayView`]'s contract for
/// adjacency slices.
#[derive(Debug, Clone, Copy)]
pub struct OverlayAliasView<'a> {
    base: CsrAliasView<'a>,
    rows: &'a HashMap<VertexId, Row>,
}

impl AliasView for OverlayAliasView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    #[inline]
    fn slots(&self, v: VertexId) -> &[AliasSlot] {
        match self.rows.get(&v) {
            Some(row) => row
                .alias
                .as_deref()
                .expect("patched rows carry alias rows while the base has tables"),
            None => self.base.slots_of(v),
        }
    }
}

impl GraphView for OverlayView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        OverlayView::num_vertices(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        OverlayView::neighbors(self, v)
    }

    #[inline]
    fn probabilities(&self, v: VertexId) -> &[Probability] {
        OverlayView::probabilities(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        OverlayView::degree(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraph::from_arcs(
            5,
            [
                (0, 2, 0.8),
                (0, 3, 0.5),
                (1, 0, 0.8),
                (1, 2, 0.9),
                (2, 0, 0.7),
                (2, 3, 0.6),
                (3, 4, 0.6),
                (3, 1, 0.8),
            ],
        )
        .unwrap()
    }

    fn assert_views_match(overlay: &DeltaOverlay, expected: &UncertainGraph) {
        let csr = CsrGraph::from_uncertain(expected);
        assert_eq!(overlay.num_arcs(), expected.num_arcs());
        for v in 0..expected.num_vertices() as VertexId {
            assert_eq!(
                overlay.forward().neighbors(v),
                csr.forward().neighbors(v),
                "forward neighbors of {v}"
            );
            assert_eq!(
                overlay.forward().probabilities(v),
                csr.forward().probabilities(v),
                "forward probabilities of {v}"
            );
            assert_eq!(
                overlay.reverse().neighbors(v),
                csr.reverse().neighbors(v),
                "reverse neighbors of {v}"
            );
            assert_eq!(
                overlay.reverse().probabilities(v),
                csr.reverse().probabilities(v),
                "reverse probabilities of {v}"
            );
        }
    }

    #[test]
    fn untouched_overlay_serves_the_base_slices() {
        let g = fig1_graph();
        let overlay = DeltaOverlay::from_graph(&g);
        assert_views_match(&overlay, &g);
        assert_eq!(overlay.version(), 0);
        assert_eq!(overlay.patched_vertices(), 0);
        // Untouched vertices return the *identical* base slice.
        let base = overlay.base().forward();
        assert!(std::ptr::eq(
            overlay.forward().neighbors(0).as_ptr(),
            base.neighbors(0).as_ptr()
        ));
    }

    #[test]
    fn inserts_deletes_and_reweights_patch_both_directions() {
        let g = fig1_graph();
        let mut overlay =
            DeltaOverlay::with_policy(CsrGraph::from_uncertain(&g), CompactionPolicy::never());
        let summary = overlay
            .apply_all(&[
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 0,
                    probability: 0.3,
                },
                GraphUpdate::DeleteArc {
                    source: 0,
                    target: 3,
                },
                GraphUpdate::SetProbability {
                    source: 2,
                    target: 0,
                    probability: 0.95,
                },
            ])
            .unwrap();
        assert_eq!(summary.inserted, 1);
        assert_eq!(summary.deleted, 1);
        assert_eq!(summary.reweighted, 1);
        assert!(!summary.compacted);
        assert_eq!(summary.num_arcs, 8);
        let expected = UncertainGraph::from_arcs(
            5,
            [
                (0, 2, 0.8),
                (1, 0, 0.8),
                (1, 2, 0.9),
                (2, 0, 0.95),
                (2, 3, 0.6),
                (3, 4, 0.6),
                (3, 1, 0.8),
                (4, 0, 0.3),
            ],
        )
        .unwrap();
        assert_views_match(&overlay, &expected);
        assert_eq!(overlay.to_uncertain(), expected);
        assert_eq!(overlay.version(), 1);
        assert!(overlay.patched_vertices() > 0);
        // Untouched vertex 1's forward row still is the base slice.
        assert!(!overlay.forward().is_patched(1));
    }

    #[test]
    fn compaction_folds_the_rows_into_a_fresh_csr() {
        let g = fig1_graph();
        let mut overlay =
            DeltaOverlay::with_policy(CsrGraph::from_uncertain(&g), CompactionPolicy::never());
        overlay
            .apply_all(&[
                GraphUpdate::DeleteArc {
                    source: 3,
                    target: 4,
                },
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 2,
                    probability: 0.2,
                },
            ])
            .unwrap();
        let expected = overlay.to_uncertain();
        assert!(overlay.ops_since_compaction() > 0);
        overlay.compact();
        assert_eq!(overlay.ops_since_compaction(), 0);
        assert_eq!(overlay.patched_vertices(), 0);
        assert_eq!(overlay.base(), &CsrGraph::from_uncertain(&expected));
        assert_views_match(&overlay, &expected);
    }

    #[test]
    fn eager_policy_compacts_after_every_batch() {
        let g = fig1_graph();
        let mut overlay =
            DeltaOverlay::with_policy(CsrGraph::from_uncertain(&g), CompactionPolicy::eager());
        let summary = overlay
            .apply_all(&[GraphUpdate::DeleteArc {
                source: 0,
                target: 2,
            }])
            .unwrap();
        assert!(summary.compacted);
        assert_eq!(overlay.patched_vertices(), 0);
        assert_eq!(overlay.base().num_arcs(), 7);
    }

    #[test]
    fn rejected_batches_leave_the_overlay_untouched() {
        let g = fig1_graph();
        let mut overlay = DeltaOverlay::from_graph(&g);
        let bad_batches: Vec<(Vec<GraphUpdate>, UpdateError)> = vec![
            (
                vec![GraphUpdate::InsertArc {
                    source: 0,
                    target: 2,
                    probability: 0.5,
                }],
                UpdateError::ArcAlreadyExists {
                    source: 0,
                    target: 2,
                },
            ),
            (
                vec![GraphUpdate::DeleteArc {
                    source: 0,
                    target: 4,
                }],
                UpdateError::ArcNotFound {
                    source: 0,
                    target: 4,
                },
            ),
            (
                vec![GraphUpdate::SetProbability {
                    source: 4,
                    target: 0,
                    probability: 0.5,
                }],
                UpdateError::ArcNotFound {
                    source: 4,
                    target: 0,
                },
            ),
            (
                vec![GraphUpdate::InsertArc {
                    source: 0,
                    target: 9,
                    probability: 0.5,
                }],
                UpdateError::VertexOutOfRange {
                    vertex: 9,
                    num_vertices: 5,
                },
            ),
            (
                vec![GraphUpdate::InsertArc {
                    source: 4,
                    target: 0,
                    probability: 1.5,
                }],
                UpdateError::InvalidProbability {
                    source: 4,
                    target: 0,
                    probability: 1.5,
                },
            ),
            (
                // First update is fine, second is invalid: atomicity means
                // the first must not stick either.
                vec![
                    GraphUpdate::InsertArc {
                        source: 4,
                        target: 0,
                        probability: 0.5,
                    },
                    GraphUpdate::DeleteArc {
                        source: 4,
                        target: 3,
                    },
                ],
                UpdateError::ArcNotFound {
                    source: 4,
                    target: 3,
                },
            ),
        ];
        for (batch, expected) in bad_batches {
            let err = overlay.apply_all(&batch).unwrap_err();
            assert_eq!(err, expected);
            assert_views_match(&overlay, &g);
            assert_eq!(overlay.version(), 0);
        }
    }

    #[test]
    fn batch_internal_dependencies_validate_in_order() {
        let g = fig1_graph();
        let mut overlay = DeltaOverlay::from_graph(&g);
        // Insert then re-weight then delete the same arc in one batch.
        overlay
            .apply_all(&[
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 1,
                    probability: 0.2,
                },
                GraphUpdate::SetProbability {
                    source: 4,
                    target: 1,
                    probability: 0.9,
                },
                GraphUpdate::DeleteArc {
                    source: 4,
                    target: 1,
                },
            ])
            .unwrap();
        assert_views_match(&overlay, &g);
        // Delete then re-insert an existing arc in one batch.
        overlay
            .apply_all(&[
                GraphUpdate::DeleteArc {
                    source: 0,
                    target: 2,
                },
                GraphUpdate::InsertArc {
                    source: 0,
                    target: 2,
                    probability: 0.1,
                },
            ])
            .unwrap();
        assert_eq!(overlay.arc_probability(0, 2), Some(0.1));
    }

    #[test]
    fn threshold_combines_min_ops_and_fraction() {
        let policy = CompactionPolicy {
            min_ops: 10,
            ops_fraction: 0.5,
        };
        assert_eq!(policy.threshold(4), 10);
        assert_eq!(policy.threshold(100), 50);
        assert_eq!(CompactionPolicy::eager().threshold(1_000_000), 1);
        assert_eq!(CompactionPolicy::never().threshold(8), usize::MAX);
        assert_eq!(CompactionPolicy::default().threshold(0), 4096);
    }

    /// Every vertex's live alias slots must equal a from-scratch table
    /// build over the live adjacency — the invariant the partial rebuild
    /// maintains.
    fn assert_alias_matches_fresh_build(overlay: &DeltaOverlay) {
        let mut fresh = CsrGraph::from_uncertain(&overlay.to_uncertain());
        fresh.build_alias_tables();
        let pairs = [
            (
                overlay.forward_alias().unwrap(),
                fresh.forward_alias().unwrap(),
            ),
            (
                overlay.reverse_alias().unwrap(),
                fresh.reverse_alias().unwrap(),
            ),
        ];
        for (live, expected) in pairs {
            for v in 0..overlay.num_vertices() as VertexId {
                assert_eq!(live.slots(v), expected.slots_of(v), "alias row of {v}");
            }
        }
    }

    #[test]
    fn updates_rebuild_alias_rows_only_for_touched_vertices() {
        let mut base = CsrGraph::from_uncertain(&fig1_graph());
        base.build_alias_tables();
        let mut overlay = DeltaOverlay::with_policy(base, CompactionPolicy::never());
        overlay
            .apply_all(&[
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 0,
                    probability: 0.3,
                },
                GraphUpdate::SetProbability {
                    source: 2,
                    target: 0,
                    probability: 0.95,
                },
            ])
            .unwrap();
        assert_alias_matches_fresh_build(&overlay);
        // An untouched vertex serves the base table's slots pointer-
        // identically — the "only patched vertices rebuilt" contract.
        let live = overlay.forward_alias().unwrap();
        let base_table = overlay.base().forward_alias().unwrap();
        assert!(std::ptr::eq(
            live.slots(1).as_ptr(),
            base_table.slots_of(1).as_ptr()
        ));
        // Touched vertices serve rebuilt rows, not the stale base slots.
        assert_ne!(live.slots(2), base_table.slots_of(2));
    }

    #[test]
    fn compaction_carries_alias_tables_into_the_new_base() {
        let mut base = CsrGraph::from_uncertain(&fig1_graph());
        base.build_alias_tables();
        let mut overlay = DeltaOverlay::with_policy(base, CompactionPolicy::never());
        overlay
            .apply_all(&[
                GraphUpdate::DeleteArc {
                    source: 3,
                    target: 4,
                },
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 2,
                    probability: 0.2,
                },
            ])
            .unwrap();
        overlay.compact();
        assert!(overlay.base().has_alias_tables());
        assert_eq!(overlay.patched_vertices(), 0);
        assert_alias_matches_fresh_build(&overlay);
        // The compacted tables are bit-identical to a from-scratch build of
        // the same graph (copy-vs-rebuild indistinguishability).
        let mut fresh = CsrGraph::from_uncertain(&overlay.to_uncertain());
        fresh.build_alias_tables();
        let (fwd, rev) = overlay.base().alias_tables().unwrap();
        let (fresh_fwd, fresh_rev) = fresh.alias_tables().unwrap();
        assert_eq!(fwd, fresh_fwd);
        assert_eq!(rev, fresh_rev);
    }

    #[test]
    fn alias_tables_can_be_built_mid_flight_over_patched_rows() {
        let mut overlay = DeltaOverlay::with_policy(
            CsrGraph::from_uncertain(&fig1_graph()),
            CompactionPolicy::never(),
        );
        assert!(overlay.forward_alias().is_none());
        overlay
            .apply_all(&[GraphUpdate::InsertArc {
                source: 4,
                target: 0,
                probability: 0.3,
            }])
            .unwrap();
        overlay.build_alias_tables();
        assert!(overlay.has_alias_tables());
        assert_alias_matches_fresh_build(&overlay);
    }

    #[test]
    fn overlay_without_tables_never_maintains_alias_rows() {
        let mut overlay = DeltaOverlay::from_graph(&fig1_graph());
        overlay
            .apply_all(&[GraphUpdate::DeleteArc {
                source: 0,
                target: 2,
            }])
            .unwrap();
        assert!(overlay.forward_alias().is_none());
        assert!(overlay.reverse_alias().is_none());
    }

    #[test]
    fn empty_batch_is_a_no_op_but_bumps_the_version() {
        let g = fig1_graph();
        let mut overlay = DeltaOverlay::from_graph(&g);
        let summary = overlay.apply_all(&[]).unwrap();
        assert_eq!(
            summary,
            UpdateSummary {
                num_arcs: 8,
                ..UpdateSummary::default()
            }
        );
        assert_eq!(overlay.version(), 1);
        assert_views_match(&overlay, &g);
    }
}
