//! Deterministic and uncertain directed graphs under the possible-world model.
//!
//! This crate provides the graph substrate used by the uncertain-SimRank
//! reproduction of *"SimRank Computation on Uncertain Graphs"* (Zhu, Zou & Li,
//! ICDE 2016):
//!
//! * [`DiGraph`] — a deterministic directed graph stored in compressed sparse
//!   row (CSR) form, with both forward (out-neighbor) and reverse
//!   (in-neighbor) adjacency.
//! * [`UncertainGraph`] — a directed graph whose arcs carry independent
//!   existence probabilities in `(0, 1]`, i.e. the tuple `(V, E, P)` of the
//!   paper (Section II).
//! * [`CsrGraph`] — a compact, walk-oriented CSR view (flat
//!   `offsets`/`targets`/`probs` arrays for both the forward adjacency and
//!   its transpose) built once and shared by all samplers, so estimators no
//!   longer materialise transposed graph copies per query.
//! * [`DeltaOverlay`] — dynamic graphs: arc insertions, deletions and
//!   probability updates recorded as sorted per-vertex patched rows over an
//!   immutable CSR base, merged on read through [`OverlayView`] and
//!   compacted back into a fresh [`CsrGraph`] under a [`CompactionPolicy`].
//! * [`possible_world`] — the possible-world semantics: a possible world of an
//!   uncertain graph `G` is a deterministic graph on the same vertex set whose
//!   arc set is a subset of `E(G)`; its probability is the product in
//!   Eq. (4) of the paper.  Both exhaustive enumeration (for tiny graphs used
//!   in the tests) and i.i.d. sampling are provided.
//! * [`io`] — a small weighted-edge-list format (`u v p` per line) used by the
//!   examples and the experiment harness.
//! * [`snapshot`] — a versioned, checksummed on-disk image of a [`CsrGraph`]
//!   (both directions plus an optional label table) read back into place
//!   without re-sorting or re-validating per edge, and [`updatelog`] — an
//!   append-only log of [`GraphUpdate`] rounds a restarted server replays on
//!   top of a snapshot to reach the exact epoch it died at.
//! * [`stats`] — degree and probability statistics used when calibrating the
//!   synthetic datasets against Table II of the paper.
//! * [`footprint`] — compact bloom-filter summaries of vertex sets
//!   ([`VertexFootprint`]): walk footprints recorded per cached answer and
//!   the touched-vertex sets of update batches, the two sides of the
//!   caching layer's fine-grained invalidation.
//!
//! # Example
//!
//! ```
//! use ugraph::{UncertainGraphBuilder, UncertainGraph};
//!
//! // The 5-vertex uncertain graph of Fig. 1(a) in the paper.
//! let g: UncertainGraph = UncertainGraphBuilder::new(5)
//!     .arc(0, 2, 0.8) // e1: v1 -> v3
//!     .arc(0, 3, 0.5) // e2: v1 -> v4
//!     .arc(1, 0, 0.8) // e3: v2 -> v1
//!     .arc(1, 2, 0.9) // e4: v2 -> v3
//!     .arc(2, 0, 0.7) // e5: v3 -> v1
//!     .arc(2, 3, 0.6) // e6: v3 -> v4
//!     .arc(3, 4, 0.6) // e7: v4 -> v5
//!     .arc(3, 1, 0.8) // e8: v4 -> v2
//!     .build()
//!     .unwrap();
//! assert_eq!(g.num_vertices(), 5);
//! assert_eq!(g.num_arcs(), 8);
//! assert!((g.arc_probability(0, 2).unwrap() - 0.8).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alias;
pub mod binfmt;
mod builder;
pub mod csr;
mod error;
pub mod footprint;
mod graph;
pub mod io;
pub mod overlay;
pub mod possible_world;
mod serde_impl;
pub mod snapshot;
pub mod stats;
mod uncertain;
pub mod updatelog;

pub use alias::{alias_draw, AliasSlot, AliasTable, AliasView, CsrAliasView};
pub use builder::{DiGraphBuilder, DuplicatePolicy, UncertainGraphBuilder};
pub use csr::{CsrGraph, CsrView, GraphView};
pub use error::GraphError;
pub use footprint::VertexFootprint;
pub use graph::{ArcIter, DiGraph};
pub use overlay::{
    CompactionPolicy, DeltaOverlay, GraphUpdate, OverlayAliasView, OverlayView, UpdateError,
    UpdateSummary,
};
pub use snapshot::CsrSnapshot;
pub use uncertain::{ProbArc, UncertainGraph};
pub use updatelog::UpdateLog;

/// Identifier of a vertex.  Vertices of a graph with `n` vertices are the
/// integers `0..n`.
pub type VertexId = u32;

/// Convenience alias used throughout the workspace for arc probabilities.
pub type Probability = f64;

/// Returns `true` when `p` is a valid arc existence probability, i.e. lies in
/// the half-open interval `(0, 1]` required by the paper's uncertain-graph
/// model (arcs with probability 0 simply do not exist).
#[inline]
pub fn is_valid_probability(p: Probability) -> bool {
    p.is_finite() && p > 0.0 && p <= 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(is_valid_probability(1.0));
        assert!(is_valid_probability(0.3));
        assert!(is_valid_probability(f64::MIN_POSITIVE));
        assert!(!is_valid_probability(0.0));
        assert!(!is_valid_probability(-0.1));
        assert!(!is_valid_probability(1.5));
        assert!(!is_valid_probability(f64::NAN));
        assert!(!is_valid_probability(f64::INFINITY));
    }
}
