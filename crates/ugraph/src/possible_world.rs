//! Possible-world semantics of uncertain graphs.
//!
//! Under the possible-world model (Section II of the paper), an uncertain
//! graph `G = (V, E, P)` represents a probability distribution over the set
//! `Ω(G)` of its possible worlds.  A possible world is a deterministic graph
//! `G` with `V(G) = V(G)` and `E(G) ⊆ E(G)`, and the probability of the event
//! `G ⇒ G` is (Eq. 4)
//!
//! ```text
//! Pr(G ⇒ G) = Π_{e ∈ E(G)} P(e) · Π_{e ∈ E(G)\E(G)} (1 − P(e)).
//! ```
//!
//! This module provides
//! * [`world_probability`] — Eq. (4) for an explicit arc subset,
//! * [`enumerate_worlds`] — exhaustive enumeration of `Ω(G)` (2^|E| worlds;
//!   only for the tiny graphs used in tests and ground-truth computations),
//! * [`sample_world`] / [`WorldSampler`] — i.i.d. sampling of possible worlds.

use crate::{DiGraph, Probability, UncertainGraph, VertexId};
use rand::Rng;

/// A possible world of an uncertain graph: the subset of arcs that exist,
/// its probability, and the corresponding deterministic graph.
#[derive(Debug, Clone)]
pub struct PossibleWorld {
    /// Indices into the arc list of the uncertain graph (in `arcs()` order)
    /// of the arcs present in this world.
    pub present_arcs: Vec<usize>,
    /// Probability `Pr(G ⇒ G)` of this world (Eq. 4).
    pub probability: Probability,
    /// The deterministic graph of this world.
    pub graph: DiGraph,
}

/// Computes `Pr(G ⇒ G)` (Eq. 4) for the world in which exactly the arcs whose
/// indices (in `g.arcs()` order) are listed in `present` exist.
///
/// `present` must be sorted and duplicate-free; this is asserted in debug
/// builds.
pub fn world_probability(g: &UncertainGraph, present: &[usize]) -> Probability {
    debug_assert!(present.windows(2).all(|w| w[0] < w[1]));
    let mut prob = 1.0;
    let mut cursor = 0usize;
    for (idx, arc) in g.arcs().enumerate() {
        if cursor < present.len() && present[cursor] == idx {
            prob *= arc.probability;
            cursor += 1;
        } else {
            prob *= 1.0 - arc.probability;
        }
    }
    debug_assert_eq!(
        cursor,
        present.len(),
        "present contains out-of-range indices"
    );
    prob
}

/// Exhaustively enumerates all `2^|E|` possible worlds of `g`.
///
/// # Panics
///
/// Panics if `g` has more than 25 arcs, because the enumeration would be
/// astronomically large; this function exists for tests and for brute-force
/// ground truth on toy graphs only.
pub fn enumerate_worlds(g: &UncertainGraph) -> Vec<PossibleWorld> {
    let m = g.num_arcs();
    assert!(
        m <= 25,
        "refusing to enumerate 2^{m} possible worlds; enumerate_worlds is for toy graphs"
    );
    let arcs: Vec<(VertexId, VertexId, Probability)> = g
        .arcs()
        .map(|a| (a.source, a.target, a.probability))
        .collect();
    let mut worlds = Vec::with_capacity(1usize << m);
    for mask in 0u64..(1u64 << m) {
        let mut present = Vec::new();
        let mut prob = 1.0;
        let mut pairs = Vec::new();
        for (idx, &(u, v, p)) in arcs.iter().enumerate() {
            if mask & (1 << idx) != 0 {
                present.push(idx);
                prob *= p;
                pairs.push((u, v));
            } else {
                prob *= 1.0 - p;
            }
        }
        let graph = DiGraph::from_arcs(g.num_vertices(), pairs)
            .expect("arcs of a possible world are a subset of valid arcs");
        worlds.push(PossibleWorld {
            present_arcs: present,
            probability: prob,
            graph,
        });
    }
    worlds
}

/// Samples one possible world of `g`: each arc is kept independently with its
/// existence probability.
pub fn sample_world<R: Rng + ?Sized>(g: &UncertainGraph, rng: &mut R) -> DiGraph {
    let mut pairs = Vec::with_capacity(g.num_arcs());
    for arc in g.arcs() {
        if rng.gen::<f64>() < arc.probability {
            pairs.push((arc.source, arc.target));
        }
    }
    DiGraph::from_arcs(g.num_vertices(), pairs).expect("sampled arcs are a subset of valid arcs")
}

/// A reusable sampler of possible worlds that avoids re-allocating the arc
/// buffer on every sample.
#[derive(Debug)]
pub struct WorldSampler<'g> {
    graph: &'g UncertainGraph,
    scratch: Vec<(VertexId, VertexId)>,
}

impl<'g> WorldSampler<'g> {
    /// Creates a sampler over `graph`.
    pub fn new(graph: &'g UncertainGraph) -> Self {
        WorldSampler {
            graph,
            scratch: Vec::with_capacity(graph.num_arcs()),
        }
    }

    /// Samples one possible world.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> DiGraph {
        self.scratch.clear();
        for arc in self.graph.arcs() {
            if rng.gen::<f64>() < arc.probability {
                self.scratch.push((arc.source, arc.target));
            }
        }
        DiGraph::from_arcs(self.graph.num_vertices(), self.scratch.iter().copied())
            .expect("sampled arcs are a subset of valid arcs")
    }
}

/// Computes the expectation of `f` over all possible worlds of `g` by
/// exhaustive enumeration.  Only usable on toy graphs (≤ 25 arcs).
pub fn expectation_over_worlds<F>(g: &UncertainGraph, mut f: F) -> f64
where
    F: FnMut(&DiGraph) -> f64,
{
    enumerate_worlds(g)
        .iter()
        .map(|w| w.probability * f(&w.graph))
        .sum()
}

/// Estimates the expectation of `f` over possible worlds by Monte Carlo
/// sampling with `num_samples` i.i.d. worlds.
pub fn monte_carlo_expectation<F, R>(
    g: &UncertainGraph,
    num_samples: usize,
    rng: &mut R,
    mut f: F,
) -> f64
where
    F: FnMut(&DiGraph) -> f64,
    R: Rng + ?Sized,
{
    assert!(num_samples > 0, "num_samples must be positive");
    let mut sampler = WorldSampler::new(g);
    let mut total = 0.0;
    for _ in 0..num_samples {
        let world = sampler.sample(rng);
        total += f(&world);
    }
    total / num_samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UncertainGraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let g = fig1_graph();
        let worlds = enumerate_worlds(&g);
        assert_eq!(worlds.len(), 256);
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn fig1_possible_world_probability_matches_paper() {
        // Fig. 1(b): the possible world with arcs e1, e3, e5, e6, e8 present
        // and e2, e4, e7 absent has probability ≈ 0.0043.
        let g = fig1_graph();
        // arcs() order: (0,2)=e1, (0,3)=e2, (1,0)=e3, (1,2)=e4, (2,0)=e5,
        //               (2,3)=e6, (3,1)=e8, (3,4)=e7
        let arcs: Vec<_> = g.arcs().collect();
        let index_of = |u: VertexId, v: VertexId| {
            arcs.iter()
                .position(|a| a.source == u && a.target == v)
                .unwrap()
        };
        let mut present = vec![
            index_of(0, 2), // e1
            index_of(1, 0), // e3
            index_of(2, 0), // e5
            index_of(2, 3), // e6
            index_of(3, 1), // e8
        ];
        present.sort_unstable();
        let p = world_probability(&g, &present);
        let expected = 0.8 * 0.8 * 0.7 * 0.6 * 0.8 * (1.0 - 0.5) * (1.0 - 0.9) * (1.0 - 0.6);
        assert!((p - expected).abs() < 1e-12);
        assert!((p - 0.0043).abs() < 5e-4, "p = {p}");
    }

    #[test]
    fn enumeration_matches_world_probability() {
        let g = fig1_graph();
        for w in enumerate_worlds(&g).iter().take(64) {
            let p = world_probability(&g, &w.present_arcs);
            assert!((p - w.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn certain_graph_has_single_possible_world_with_probability_one() {
        let g = fig1_graph().certain();
        let worlds = enumerate_worlds(&g);
        let full: Vec<&PossibleWorld> = worlds.iter().filter(|w| w.probability > 0.0).collect();
        assert_eq!(full.len(), 1);
        assert!((full[0].probability - 1.0).abs() < 1e-12);
        assert_eq!(full[0].graph.num_arcs(), g.num_arcs());
    }

    #[test]
    fn sampled_world_is_subgraph() {
        let g = fig1_graph();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let w = sample_world(&g, &mut rng);
            assert_eq!(w.num_vertices(), g.num_vertices());
            for (u, v) in w.arcs() {
                assert!(g.has_arc(u, v));
            }
        }
    }

    #[test]
    fn sampler_matches_expected_arc_count() {
        let g = fig1_graph();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = WorldSampler::new(&g);
        let n = 20_000;
        let mut total_arcs = 0usize;
        for _ in 0..n {
            total_arcs += sampler.sample(&mut rng).num_arcs();
        }
        let mean = total_arcs as f64 / n as f64;
        assert!(
            (mean - g.expected_num_arcs()).abs() < 0.05,
            "mean = {mean}, expected = {}",
            g.expected_num_arcs()
        );
    }

    #[test]
    fn expectation_over_worlds_matches_monte_carlo() {
        let g = fig1_graph();
        // Expected number of arcs, both ways.
        let exact = expectation_over_worlds(&g, |w| w.num_arcs() as f64);
        assert!((exact - g.expected_num_arcs()).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = monte_carlo_expectation(&g, 20_000, &mut rng, |w| w.num_arcs() as f64);
        assert!((mc - exact).abs() < 0.05, "mc = {mc}, exact = {exact}");
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn enumeration_refuses_large_graphs() {
        let arcs: Vec<_> = (0..26u32).map(|i| (i, i + 1, 0.5)).collect();
        let g = UncertainGraph::from_arcs(64, arcs).unwrap();
        let _ = enumerate_worlds(&g);
    }
}
