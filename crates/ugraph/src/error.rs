//! Error type shared by the graph builders and the edge-list I/O.

use std::fmt;

/// Errors produced while constructing or reading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex id referenced by an arc is `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// Number of vertices of the graph under construction.
        num_vertices: usize,
    },
    /// An arc probability was outside `(0, 1]` (or not finite).
    InvalidProbability {
        /// Source vertex of the offending arc.
        source: u32,
        /// Target vertex of the offending arc.
        target: u32,
        /// The offending probability value.
        probability: f64,
    },
    /// The same `(source, target)` arc was inserted twice.
    DuplicateArc {
        /// Source vertex of the duplicated arc.
        source: u32,
        /// Target vertex of the duplicated arc.
        target: u32,
    },
    /// A self-loop `(v, v)` was inserted while the builder forbids them.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// An I/O error occurred while reading or writing an edge list.
    Io(String),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary graph file was malformed (bad magic, truncation, checksum
    /// mismatch, trailing bytes).
    Format {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::InvalidProbability {
                source,
                target,
                probability,
            } => write!(
                f,
                "arc ({source}, {target}) has invalid existence probability {probability}; \
                 probabilities must lie in (0, 1]"
            ),
            GraphError::DuplicateArc { source, target } => {
                write!(f, "arc ({source}, {target}) was inserted more than once")
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop on vertex {vertex} is not allowed by this builder"
                )
            }
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Format { message } => {
                write!(f, "malformed binary graph file: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offenders() {
        let e = GraphError::VertexOutOfRange {
            vertex: 17,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::InvalidProbability {
            source: 1,
            target: 2,
            probability: 1.5,
        };
        assert!(e.to_string().contains("1.5"));

        let e = GraphError::DuplicateArc {
            source: 3,
            target: 4,
        };
        assert!(e.to_string().contains("(3, 4)"));

        let e = GraphError::Parse {
            line: 12,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
