//! A versioned, checksummed on-disk CSR snapshot.
//!
//! [`crate::binfmt`] stores an *edge list*: reading it re-validates every arc
//! and rebuilds both CSR directions (two sorts over all arcs).  That is the
//! right trust model for interchange, but it makes boot time proportional to
//! that rebuild — the exact cost the serve path pays on every restart.  A
//! **snapshot** instead persists the compiled [`CsrGraph`] itself: the
//! `offsets` / `targets` / `probs` arrays of both directions are written as
//! 8-byte-aligned little-endian sections behind a `USIMCSR1` header and read
//! straight back into place, without re-sorting or re-validating per edge.
//!
//! ```text
//! offset  size       field
//! 0       8          magic  b"USIMCSR1"
//! 8       4          format version (u32, little endian) = 1
//! 12      4          section flags (u32; 0 when no optional section present)
//! 16      8          number of vertices  n  (u64)
//! 24      8          number of arcs      m  (u64)
//! 32      8          number of labels    L  (u64; 0 or n)
//! 40      (n+1)·8    forward offsets  (u64 each)
//! …       m·4 [+pad] forward targets  (u32 each, padded to 8-byte alignment)
//! …       m·8        forward probabilities (f64 each)
//! …       (n+1)·8    reverse offsets
//! …       m·4 [+pad] reverse targets
//! …       m·8        reverse probabilities
//! …       L·8        vertex labels (u64 each)
//! …       (m+n)·16   forward alias slots (iff flags bit 0; prob f64, first u32, second u32)
//! …       (m+n)·16   reverse alias slots (iff flags bit 0)
//! end     8          word-wise FNV checksum of every byte before it (u64)
//! ```
//!
//! The flags word was the always-zero reserved word until the alias sections
//! were introduced, so every pre-existing snapshot reads as flags 0 — no
//! optional sections — and loads unchanged.  Bit 0 ([`FLAG_ALIAS_TABLES`])
//! announces one Walker alias-slot section per direction after the label
//! table: `d(v) + 1` 16-byte slots per vertex in vertex order (see
//! [`crate::alias`]), covered by the same trailing checksum.  Slot offsets
//! are derived from the direction's CSR offsets (`csr_offsets[v] + v`), so
//! no extra offset array is stored.  Unknown flag bits are rejected: a
//! reader that does not understand a section cannot skip what it cannot
//! size.
//!
//! # Trust model
//!
//! Reading validates the magic, the version, the checksum, the header
//! arithmetic (section sizes, label count, vertex-id range) and the
//! monotonicity of both offset arrays — an O(n) scan that guarantees every
//! later slice access is in bounds.  It does **not** re-check per-arc
//! invariants (sorted neighbor slices, probabilities in `(0, 1]`): those
//! held when the writer serialised a live [`CsrGraph`], and any bit that
//! changed since is caught by the checksum.  Truncations and bit-flips are
//! reported as typed [`GraphError::Format`], never a panic or a silently
//! wrong graph.
//!
//! The optional label table carries the wire labels the serving stack maps
//! to compact vertex ids, making a snapshot a self-contained boot artifact
//! for `usim serve --snapshot` (together with the [`crate::updatelog`]).

use crate::alias::{AliasSlot, AliasTable};
use crate::binfmt::format_error;
use crate::{CsrGraph, GraphError, Probability, VertexId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic of the CSR snapshot format.
pub const MAGIC: &[u8; 8] = b"USIMCSR1";

/// Current (and only) snapshot format version.
pub const VERSION: u32 = 1;

/// Flags bit 0: the snapshot carries one alias-slot section per direction
/// after the label table.
pub const FLAG_ALIAS_TABLES: u32 = 1;

/// All flag bits this build understands; anything else is rejected.
const KNOWN_FLAGS: u32 = FLAG_ALIAS_TABLES;

/// Header length in bytes: magic, version, reserved word, three u64 counts.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// A deserialised snapshot: the compiled CSR graph plus the (possibly
/// empty) vertex label table that was stored with it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrSnapshot {
    /// The CSR graph, both directions, exactly as serialised.
    pub graph: CsrGraph,
    /// Wire labels, one per vertex in id order; empty when the writer
    /// stored no label table (ids are their own labels).
    pub labels: Vec<u64>,
}

impl CsrSnapshot {
    /// The label table, synthesising the identity mapping when none was
    /// stored.
    pub fn labels_or_identity(&self) -> Vec<u64> {
        if self.labels.is_empty() {
            (0..self.graph.num_vertices() as u64).collect()
        } else {
            self.labels.clone()
        }
    }
}

/// Bytes of zero padding needed after `len` bytes to reach 8-byte alignment.
fn pad8(len: usize) -> usize {
    (8 - len % 8) % 8
}

/// Streaming word-wise FNV checksum over the snapshot bytes.
///
/// Same constants as the byte-wise FNV-1a in [`crate::binfmt`], but folding
/// one little-endian u64 *word* per multiply instead of one byte — an 8x
/// cheaper pass that keeps snapshot reads array-copy fast instead of being
/// dominated by the integrity check.  Any single bit flip still changes the
/// digest (xor and odd-prime multiplication are both bijective mod 2^64),
/// and mixing the total byte length into the final state catches
/// truncation or extension by zero bytes.  Snapshot-format only: the edge
/// list and update log keep the byte-wise variant.
struct WordFnv {
    state: u64,
    buf: [u8; 8],
    buf_len: usize,
    total: u64,
}

impl WordFnv {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        WordFnv {
            state: Self::OFFSET_BASIS,
            buf: [0u8; 8],
            buf_len: 0,
            total: 0,
        }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(Self::PRIME);
    }

    fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.buf_len > 0 {
            let take = bytes.len().min(8 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len == 8 {
                let word = u64::from_le_bytes(self.buf);
                self.fold(word);
                self.buf_len = 0;
            } else {
                // The input ran out before filling the carry word.
                return;
            }
        }
        let mut words = bytes.chunks_exact(8);
        for chunk in &mut words {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.fold(word);
        }
        let tail = words.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    fn finish(&self) -> u64 {
        let mut state = self.state;
        if self.buf_len > 0 {
            let mut word = [0u8; 8];
            word[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            state = (state ^ u64::from_le_bytes(word)).wrapping_mul(Self::PRIME);
        }
        (state ^ self.total).wrapping_mul(Self::PRIME)
    }
}

/// Writes `graph` (and an optional label table — empty slice for none) to
/// `writer` in the snapshot format.
pub fn write_snapshot<W: Write>(
    graph: &CsrGraph,
    labels: &[u64],
    writer: W,
) -> Result<(), GraphError> {
    if !labels.is_empty() && labels.len() != graph.num_vertices() {
        return Err(format_error(format!(
            "label table has {} entries but the graph has {} vertices",
            labels.len(),
            graph.num_vertices()
        )));
    }
    let mut writer = BufWriter::new(writer);
    let mut checksum = WordFnv::new();
    let mut emit = |writer: &mut BufWriter<W>, bytes: &[u8]| -> Result<(), GraphError> {
        checksum.update(bytes);
        writer.write_all(bytes).map_err(GraphError::from)
    };

    let flags = if graph.has_alias_tables() {
        FLAG_ALIAS_TABLES
    } else {
        0
    };
    emit(&mut writer, MAGIC)?;
    emit(&mut writer, &VERSION.to_le_bytes())?;
    emit(&mut writer, &flags.to_le_bytes())?;
    emit(&mut writer, &(graph.num_vertices() as u64).to_le_bytes())?;
    emit(&mut writer, &(graph.num_arcs() as u64).to_le_bytes())?;
    emit(&mut writer, &(labels.len() as u64).to_le_bytes())?;

    for view in [graph.forward(), graph.reverse()] {
        for &offset in view.offsets() {
            emit(&mut writer, &(offset as u64).to_le_bytes())?;
        }
        for &target in view.targets_flat() {
            emit(&mut writer, &target.to_le_bytes())?;
        }
        for _ in 0..pad8(view.targets_flat().len() * 4) {
            emit(&mut writer, &[0u8])?;
        }
        for &prob in view.probs_flat() {
            emit(&mut writer, &prob.to_le_bytes())?;
        }
    }
    for &label in labels {
        emit(&mut writer, &label.to_le_bytes())?;
    }
    if let Some((forward, reverse)) = graph.alias_tables() {
        for table in [forward, reverse] {
            for slot in table.slots_flat() {
                emit(&mut writer, &slot.prob.to_le_bytes())?;
                emit(&mut writer, &slot.first.to_le_bytes())?;
                emit(&mut writer, &slot.second.to_le_bytes())?;
            }
        }
    }

    let digest = checksum.finish();
    writer.write_all(&digest.to_le_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Writes a snapshot to a file (see [`write_snapshot`]).
pub fn write_snapshot_file<P: AsRef<Path>>(
    graph: &CsrGraph,
    labels: &[u64],
    path: P,
) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_snapshot(graph, labels, file)
}

/// Reads a section of exactly `len` bytes, feeding the checksum.  The read
/// is chunked so a corrupt header claiming an absurd length fails on
/// truncation early instead of allocating the claimed size up front.
fn read_section<R: Read>(
    reader: &mut R,
    checksum: &mut WordFnv,
    len: usize,
    what: &str,
) -> Result<Vec<u8>, GraphError> {
    const CHUNK: usize = 1 << 20;
    let mut bytes = Vec::with_capacity(len.min(CHUNK));
    let mut remaining = len;
    let mut buffer = vec![0u8; CHUNK.min(len.max(1))];
    while remaining > 0 {
        let take = remaining.min(buffer.len());
        reader
            .read_exact(&mut buffer[..take])
            .map_err(|e| format_error(format!("truncated snapshot while reading {what}: {e}")))?;
        checksum.update(&buffer[..take]);
        bytes.extend_from_slice(&buffer[..take]);
        remaining -= take;
    }
    Ok(bytes)
}

fn section_len(count: usize, width: usize, what: &str) -> Result<usize, GraphError> {
    count
        .checked_mul(width)
        .ok_or_else(|| format_error(format!("section size overflow in {what}")))
}

fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Reads a snapshot from `reader` (see the module docs for the format and
/// the trust model).
pub fn read_snapshot<R: Read>(reader: R) -> Result<CsrSnapshot, GraphError> {
    let mut reader = BufReader::new(reader);
    let mut checksum = WordFnv::new();

    let header = read_section(&mut reader, &mut checksum, HEADER_LEN, "the header")?;
    if &header[0..8] != MAGIC {
        return Err(format_error(format!(
            "bad magic {:?}; not a CSR snapshot (expected {MAGIC:?})",
            &header[0..8]
        )));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(format_error(format!(
            "unsupported snapshot version {version} (this build reads version {VERSION})"
        )));
    }
    let flags = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
    if flags & !KNOWN_FLAGS != 0 {
        return Err(format_error(format!(
            "unknown section flags {flags:#010x} (this build understands {KNOWN_FLAGS:#010x}); \
             optional sections cannot be skipped without knowing their size"
        )));
    }
    let num_vertices = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    let num_arcs = u64::from_le_bytes(header[24..32].try_into().expect("8-byte slice"));
    let num_labels = u64::from_le_bytes(header[32..40].try_into().expect("8-byte slice"));
    if num_vertices > u64::from(VertexId::MAX) + 1 {
        return Err(format_error(format!(
            "{num_vertices} vertices exceed the 32-bit vertex-id space"
        )));
    }
    let n = usize::try_from(num_vertices)
        .map_err(|_| format_error("vertex count does not fit in memory on this platform"))?;
    let m = usize::try_from(num_arcs)
        .map_err(|_| format_error("arc count does not fit in memory on this platform"))?;
    if num_labels != 0 && num_labels != num_vertices {
        return Err(format_error(format!(
            "label table has {num_labels} entries, expected 0 or {num_vertices}"
        )));
    }
    let num_labels = usize::try_from(num_labels).expect("bounded by num_vertices");

    let offsets_len = section_len(n + 1, 8, "the offsets")?;
    let targets_len = section_len(m, 4, "the targets")?;
    let targets_pad = pad8(targets_len);
    let probs_len = section_len(m, 8, "the probabilities")?;

    type RawDirection = (Vec<usize>, Vec<VertexId>, Vec<Probability>);
    let read_direction = |reader: &mut BufReader<R>,
                          checksum: &mut WordFnv,
                          name: &str|
     -> Result<RawDirection, GraphError> {
        let offsets_bytes = read_section(
            reader,
            checksum,
            offsets_len,
            &format!("the {name} offsets"),
        )?;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut previous = 0usize;
        for (index, chunk) in offsets_bytes.chunks_exact(8).enumerate() {
            let offset = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let offset = usize::try_from(offset).map_err(|_| {
                format_error(format!("{name} offset {index} does not fit in memory"))
            })?;
            // Monotone offsets bounded by m make every arc_range slice of
            // the rebuilt views in bounds — the one structural check the
            // walk hot path cannot live without.
            if offset < previous || offset > m {
                return Err(format_error(format!(
                    "{name} offsets are not monotone within {m} arcs at index {index}"
                )));
            }
            previous = offset;
            offsets.push(offset);
        }
        if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
            return Err(format_error(format!(
                "{name} offsets do not span exactly {m} arcs"
            )));
        }
        let targets_bytes = read_section(
            reader,
            checksum,
            targets_len,
            &format!("the {name} targets"),
        )?;
        let targets: Vec<VertexId> = targets_bytes
            .chunks_exact(4)
            .map(|c| VertexId::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let padding = read_section(
            reader,
            checksum,
            targets_pad,
            &format!("the {name} target padding"),
        )?;
        if padding.iter().any(|&b| b != 0) {
            return Err(format_error(format!("nonzero {name} target padding")));
        }
        let probs_bytes = read_section(
            reader,
            checksum,
            probs_len,
            &format!("the {name} probabilities"),
        )?;
        let probs: Vec<Probability> = probs_bytes
            .chunks_exact(8)
            .map(|c| Probability::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Ok((offsets, targets, probs))
    };

    let forward = read_direction(&mut reader, &mut checksum, "forward")?;
    let reverse = read_direction(&mut reader, &mut checksum, "reverse")?;

    let labels_bytes = read_section(
        &mut reader,
        &mut checksum,
        section_len(num_labels, 8, "the labels")?,
        "the label table",
    )?;
    let labels = decode_u64s(&labels_bytes);

    let mut alias = None;
    if flags & FLAG_ALIAS_TABLES != 0 {
        let slots_len = section_len(m + n, 16, "the alias slots")?;
        let mut read_table = |csr_offsets: &[usize],
                              name: &str|
         -> Result<AliasTable, GraphError> {
            let bytes = read_section(
                &mut reader,
                &mut checksum,
                slots_len,
                &format!("the {name} alias slots"),
            )?;
            let mut slots = Vec::with_capacity(m + n);
            for (index, chunk) in bytes.chunks_exact(16).enumerate() {
                let first = VertexId::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
                let second = VertexId::from_le_bytes(chunk[12..16].try_into().expect("4 bytes"));
                // Outcomes feed straight back into arc_range on the next
                // step, so out-of-range ids are the one corruption the walk
                // hot path cannot survive — same structural bar as the
                // offsets monotonicity check above.
                for id in [first, second] {
                    if id != crate::alias::DEAD && (id as u64) >= num_vertices {
                        return Err(format_error(format!(
                            "{name} alias slot {index} names vertex {id} outside the \
                             {num_vertices}-vertex graph"
                        )));
                    }
                }
                slots.push(AliasSlot {
                    prob: f64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes")),
                    first,
                    second,
                });
            }
            // d(v) + 1 slots per vertex: offsets are the CSR offsets shifted
            // by the vertex index, no separate array on disk.
            let offsets: Vec<usize> = csr_offsets
                .iter()
                .enumerate()
                .map(|(v, &o)| o + v)
                .collect();
            Ok(AliasTable::from_raw(offsets, slots))
        };
        let forward_table = read_table(&forward.0, "forward")?;
        let reverse_table = read_table(&reverse.0, "reverse")?;
        alias = Some((forward_table, reverse_table));
    }

    let expected = checksum.finish();
    let mut stored = [0u8; 8];
    reader.read_exact(&mut stored).map_err(|e| {
        format_error(format!(
            "truncated snapshot while reading the checksum: {e}"
        ))
    })?;
    let stored = u64::from_le_bytes(stored);
    if stored != expected {
        return Err(format_error(format!(
            "checksum mismatch: stored {stored:#018x}, computed {expected:#018x}; the snapshot is corrupted"
        )));
    }
    let mut trailing = [0u8; 1];
    if reader.read(&mut trailing).map_err(GraphError::from)? != 0 {
        return Err(format_error("trailing bytes after the snapshot checksum"));
    }

    let mut graph = CsrGraph::from_raw_directions(n, forward, reverse);
    if let Some((forward_table, reverse_table)) = alias {
        graph.set_alias_tables(forward_table, reverse_table);
    }
    Ok(CsrSnapshot { graph, labels })
}

/// Reads a snapshot from a file (see [`read_snapshot`]).
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<CsrSnapshot, GraphError> {
    let file = File::open(path)?;
    read_snapshot(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{UncertainGraph, UncertainGraphBuilder};

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn encode(graph: &CsrGraph, labels: &[u64]) -> Vec<u8> {
        let mut buffer = Vec::new();
        write_snapshot(graph, labels, &mut buffer).unwrap();
        buffer
    }

    /// Byte offsets of every section boundary of a snapshot of `graph`,
    /// computed from the format spec (not from the writer).
    fn section_boundaries(graph: &CsrGraph, num_labels: usize) -> Vec<usize> {
        let n = graph.num_vertices();
        let m = graph.num_arcs();
        let direction = [(n + 1) * 8, m * 4 + pad8(m * 4), m * 8];
        let mut boundaries = vec![8, HEADER_LEN];
        let mut at = HEADER_LEN;
        for _ in 0..2 {
            for len in direction {
                at += len;
                boundaries.push(at);
            }
        }
        at += num_labels * 8;
        boundaries.push(at); // end of labels == start of checksum
        at += 8;
        boundaries.push(at); // end of file
        boundaries
    }

    #[test]
    fn roundtrip_restores_the_identical_csr() {
        let graph = fig1_graph();
        let csr = CsrGraph::from_uncertain(&graph);
        let labels: Vec<u64> = vec![10, 20, 30, 40, 50];
        let snapshot = read_snapshot(encode(&csr, &labels).as_slice()).unwrap();
        assert_eq!(snapshot.graph, csr);
        assert_eq!(snapshot.labels, labels);
    }

    #[test]
    fn roundtrip_without_labels_and_identity_synthesis() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let snapshot = read_snapshot(encode(&csr, &[]).as_slice()).unwrap();
        assert_eq!(snapshot.graph, csr);
        assert!(snapshot.labels.is_empty());
        assert_eq!(snapshot.labels_or_identity(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_of_empty_and_odd_arc_count_graphs() {
        for arcs in [
            vec![],
            vec![(0, 1, 0.5)],
            vec![(0, 1, 0.5), (1, 2, 0.25), (2, 0, 1.0)],
        ] {
            let graph = UncertainGraph::from_arcs(3, arcs).unwrap();
            let csr = CsrGraph::from_uncertain(&graph);
            let snapshot = read_snapshot(encode(&csr, &[]).as_slice()).unwrap();
            assert_eq!(snapshot.graph, csr, "graph with {} arcs", csr.num_arcs());
        }
        let empty = CsrGraph::from_uncertain(&UncertainGraph::from_arcs(0, []).unwrap());
        let snapshot = read_snapshot(encode(&empty, &[]).as_slice()).unwrap();
        assert_eq!(snapshot.graph.num_vertices(), 0);
    }

    #[test]
    fn file_helpers_roundtrip() {
        let path = std::env::temp_dir().join(format!("usim_snapshot_{}.csr", std::process::id()));
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        write_snapshot_file(&csr, &[9, 8, 7, 6, 5], &path).unwrap();
        let snapshot = read_snapshot_file(&path).unwrap();
        assert_eq!(snapshot.graph, csr);
        assert_eq!(snapshot.labels, vec![9, 8, 7, 6, 5]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_label_table_is_rejected_at_write_time() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let mut buffer = Vec::new();
        let err = write_snapshot(&csr, &[1, 2], &mut buffer).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
    }

    #[test]
    fn truncation_at_every_section_boundary_is_a_typed_error() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let labels: Vec<u64> = vec![10, 20, 30, 40, 50];
        let bytes = encode(&csr, &labels);
        let boundaries = section_boundaries(&csr, labels.len());
        assert_eq!(*boundaries.last().unwrap(), bytes.len(), "spec drifted");
        for &boundary in &boundaries[..boundaries.len() - 1] {
            // At the boundary itself and one byte into the next section.
            for cut in [boundary, boundary.saturating_sub(1), boundary + 1] {
                let err = read_snapshot(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, GraphError::Format { .. }),
                    "cut at {cut}: {err}"
                );
                assert!(err.to_string().contains("truncated"), "cut at {cut}: {err}");
            }
        }
    }

    #[test]
    fn a_bit_flip_in_every_header_field_is_a_typed_error() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let labels: Vec<u64> = vec![10, 20, 30, 40, 50];
        let clean = encode(&csr, &labels);
        // Every byte of every header field: magic, version, reserved,
        // num_vertices, num_arcs, num_labels.
        for offset in 0..HEADER_LEN {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupted = clean.clone();
                corrupted[offset] ^= bit;
                let result = std::panic::catch_unwind(|| read_snapshot(corrupted.as_slice()));
                let outcome = result.unwrap_or_else(|_| {
                    panic!("header byte {offset} flipped by {bit:#04x} caused a panic")
                });
                let err = outcome.expect_err("corrupted header must not parse");
                assert!(
                    matches!(err, GraphError::Format { .. }),
                    "byte {offset} flip {bit:#04x}: {err}"
                );
            }
        }
    }

    #[test]
    fn body_bit_flips_are_caught_by_the_checksum() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let clean = encode(&csr, &[]);
        for offset in [
            HEADER_LEN + 3,         // inside the forward offsets
            HEADER_LEN + 6 * 8 + 2, // inside the forward targets
            clean.len() - 12,       // inside the last section
        ] {
            let mut corrupted = clean.clone();
            corrupted[offset] ^= 0x10;
            let err = read_snapshot(corrupted.as_slice()).unwrap_err();
            assert!(
                matches!(err, GraphError::Format { .. }),
                "flip at {offset}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_checksum_and_trailing_bytes_are_rejected() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let clean = encode(&csr, &[]);
        let mut corrupted = clean.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xff;
        let err = read_snapshot(corrupted.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let mut trailing = clean.clone();
        trailing.push(0);
        let err = read_snapshot(trailing.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    /// Recomputes the trailing checksum after a deliberate body edit, so a
    /// test can exercise the *structural* validation behind the checksum.
    fn reseal(bytes: &mut [u8]) {
        let body_len = bytes.len() - 8;
        let mut checksum = WordFnv::new();
        checksum.update(&bytes[..body_len]);
        let digest = checksum.finish();
        bytes[body_len..].copy_from_slice(&digest.to_le_bytes());
    }

    #[test]
    fn alias_tables_roundtrip_bit_for_bit() {
        let mut csr = CsrGraph::from_uncertain(&fig1_graph());
        csr.build_alias_tables();
        let labels: Vec<u64> = vec![10, 20, 30, 40, 50];
        let bytes = encode(&csr, &labels);
        // The flags word announces the sections …
        assert_eq!(
            u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            FLAG_ALIAS_TABLES
        );
        // … and they are exactly (m + n) 16-byte slots per direction larger
        // than the same snapshot without tables.
        let plain = encode(&CsrGraph::from_uncertain(&fig1_graph()), &labels);
        let per_direction = (csr.num_arcs() + csr.num_vertices()) * 16;
        assert_eq!(bytes.len(), plain.len() + 2 * per_direction);

        let snapshot = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snapshot.graph, csr);
        assert_eq!(snapshot.labels, labels);
        assert!(snapshot.graph.has_alias_tables());
        let (read_fwd, read_rev) = snapshot.graph.alias_tables().unwrap();
        let (orig_fwd, orig_rev) = csr.alias_tables().unwrap();
        assert_eq!(read_fwd, orig_fwd);
        assert_eq!(read_rev, orig_rev);
    }

    #[test]
    fn snapshots_without_alias_sections_still_load() {
        // Byte-for-byte the pre-flags format: flags word 0, nothing after
        // the labels.  This is every snapshot written before (or without)
        // the alias backend.
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let bytes = encode(&csr, &[]);
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 0);
        let snapshot = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(snapshot.graph, csr);
        assert!(!snapshot.graph.has_alias_tables());
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let mut bytes = encode(&csr, &[]);
        bytes[13] = 0x04; // an undefined flag bit
        reseal(&mut bytes);
        let err = read_snapshot(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("flags"), "{err}");
    }

    #[test]
    fn truncated_alias_sections_are_a_typed_error() {
        let mut csr = CsrGraph::from_uncertain(&fig1_graph());
        csr.build_alias_tables();
        let bytes = encode(&csr, &[]);
        let per_direction = (csr.num_arcs() + csr.num_vertices()) * 16;
        let alias_start = bytes.len() - 8 - 2 * per_direction;
        for cut in [
            alias_start + 1,                 // inside the forward slots
            alias_start + per_direction,     // boundary between directions
            alias_start + per_direction + 7, // inside the reverse slots
            bytes.len() - 9,                 // everything but the checksum
        ] {
            let err = read_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::Format { .. }),
                "cut at {cut}: {err}"
            );
            assert!(err.to_string().contains("truncated"), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn alias_bit_flips_are_caught_by_the_checksum() {
        let mut csr = CsrGraph::from_uncertain(&fig1_graph());
        csr.build_alias_tables();
        let clean = encode(&csr, &[]);
        let per_direction = (csr.num_arcs() + csr.num_vertices()) * 16;
        let alias_start = clean.len() - 8 - 2 * per_direction;
        for offset in [alias_start, alias_start + per_direction + 5] {
            let mut corrupted = clean.clone();
            corrupted[offset] ^= 0x20;
            let err = read_snapshot(corrupted.as_slice()).unwrap_err();
            assert!(err.to_string().contains("checksum"), "{err}");
        }
    }

    #[test]
    fn out_of_range_alias_outcomes_are_rejected_even_with_a_valid_checksum() {
        let mut csr = CsrGraph::from_uncertain(&fig1_graph());
        csr.build_alias_tables();
        let mut bytes = encode(&csr, &[]);
        let per_direction = (csr.num_arcs() + csr.num_vertices()) * 16;
        let alias_start = bytes.len() - 8 - 2 * per_direction;
        // `first` of the first forward slot -> a vertex id past the graph.
        bytes[alias_start + 8..alias_start + 12]
            .copy_from_slice(&(csr.num_vertices() as u32 + 7).to_le_bytes());
        reseal(&mut bytes);
        let err = read_snapshot(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn future_versions_are_rejected() {
        let csr = CsrGraph::from_uncertain(&fig1_graph());
        let mut bytes = encode(&csr, &[]);
        bytes[8] = 2; // version field
        let err = read_snapshot(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
