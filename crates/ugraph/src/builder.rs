//! Fluent builders for [`DiGraph`] and [`UncertainGraph`].
//!
//! The builders validate vertex ranges, probability ranges, duplicate arcs
//! and (optionally) self-loops, and can either fail fast or deduplicate,
//! which is convenient when constructing graphs from noisy generators.

use crate::{DiGraph, GraphError, Probability, UncertainGraph, VertexId};

/// What to do when the same arc is inserted more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Return [`GraphError::DuplicateArc`] (the default).
    #[default]
    Error,
    /// Keep the first occurrence, silently dropping later ones.
    KeepFirst,
    /// Keep the occurrence with the largest probability (for uncertain
    /// graphs; equivalent to `KeepFirst` for deterministic graphs).
    KeepMaxProbability,
}

/// Builder for [`DiGraph`].
#[derive(Debug, Clone)]
pub struct DiGraphBuilder {
    num_vertices: usize,
    arcs: Vec<(VertexId, VertexId)>,
    allow_self_loops: bool,
    duplicate_policy: DuplicatePolicy,
}

impl DiGraphBuilder {
    /// Starts building a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        DiGraphBuilder {
            num_vertices,
            arcs: Vec::new(),
            allow_self_loops: true,
            duplicate_policy: DuplicatePolicy::Error,
        }
    }

    /// Forbids self-loops; inserting one makes [`build`](Self::build) fail.
    pub fn forbid_self_loops(mut self) -> Self {
        self.allow_self_loops = false;
        self
    }

    /// Sets the duplicate-arc policy.
    pub fn duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.duplicate_policy = policy;
        self
    }

    /// Adds the arc `(u, v)`.
    pub fn arc(mut self, u: VertexId, v: VertexId) -> Self {
        self.arcs.push((u, v));
        self
    }

    /// Adds many arcs at once.
    pub fn arcs(mut self, arcs: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        self.arcs.extend(arcs);
        self
    }

    /// Number of arcs currently staged.
    pub fn staged_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Validates and builds the graph.
    pub fn build(self) -> Result<DiGraph, GraphError> {
        let mut pairs = self.arcs;
        for &(u, v) in &pairs {
            for w in [u, v] {
                if (w as usize) >= self.num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: w as u64,
                        num_vertices: self.num_vertices,
                    });
                }
            }
            if !self.allow_self_loops && u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
        }
        pairs.sort_unstable();
        match self.duplicate_policy {
            DuplicatePolicy::Error => {
                if let Some(w) = pairs.windows(2).find(|w| w[0] == w[1]) {
                    return Err(GraphError::DuplicateArc {
                        source: w[0].0,
                        target: w[0].1,
                    });
                }
            }
            DuplicatePolicy::KeepFirst | DuplicatePolicy::KeepMaxProbability => {
                pairs.dedup();
            }
        }
        Ok(DiGraph::from_sorted_unique_arcs(self.num_vertices, &pairs))
    }
}

/// Builder for [`UncertainGraph`].
#[derive(Debug, Clone)]
pub struct UncertainGraphBuilder {
    num_vertices: usize,
    arcs: Vec<(VertexId, VertexId, Probability)>,
    allow_self_loops: bool,
    duplicate_policy: DuplicatePolicy,
}

impl UncertainGraphBuilder {
    /// Starts building an uncertain graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        UncertainGraphBuilder {
            num_vertices,
            arcs: Vec::new(),
            allow_self_loops: true,
            duplicate_policy: DuplicatePolicy::Error,
        }
    }

    /// Forbids self-loops; inserting one makes [`build`](Self::build) fail.
    pub fn forbid_self_loops(mut self) -> Self {
        self.allow_self_loops = false;
        self
    }

    /// Sets the duplicate-arc policy.
    pub fn duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.duplicate_policy = policy;
        self
    }

    /// Adds the arc `(u, v)` with existence probability `p`.
    pub fn arc(mut self, u: VertexId, v: VertexId, p: Probability) -> Self {
        self.arcs.push((u, v, p));
        self
    }

    /// Adds many probabilistic arcs at once.
    pub fn arcs(
        mut self,
        arcs: impl IntoIterator<Item = (VertexId, VertexId, Probability)>,
    ) -> Self {
        self.arcs.extend(arcs);
        self
    }

    /// Number of arcs currently staged.
    pub fn staged_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Validates and builds the uncertain graph.
    pub fn build(self) -> Result<UncertainGraph, GraphError> {
        let mut triples = self.arcs;
        for &(u, v, p) in &triples {
            for w in [u, v] {
                if (w as usize) >= self.num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: w as u64,
                        num_vertices: self.num_vertices,
                    });
                }
            }
            if !self.allow_self_loops && u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            if !crate::is_valid_probability(p) {
                return Err(GraphError::InvalidProbability {
                    source: u,
                    target: v,
                    probability: p,
                });
            }
        }
        match self.duplicate_policy {
            DuplicatePolicy::Error => {
                triples.sort_unstable_by_key(|a| (a.0, a.1));
                if let Some(w) = triples
                    .windows(2)
                    .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
                {
                    return Err(GraphError::DuplicateArc {
                        source: w[0].0,
                        target: w[0].1,
                    });
                }
            }
            DuplicatePolicy::KeepFirst => {
                // Stable sort keeps the first insertion first within a group.
                triples.sort_by_key(|a| (a.0, a.1));
                triples.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));
            }
            DuplicatePolicy::KeepMaxProbability => {
                triples.sort_by(|a, b| {
                    (a.0, a.1)
                        .cmp(&(b.0, b.1))
                        .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                });
                triples.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));
            }
        }
        Ok(UncertainGraph::from_sorted_unique_arcs(
            self.num_vertices,
            &triples,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digraph_builder_roundtrip() {
        let g = DiGraphBuilder::new(3)
            .arc(0, 1)
            .arcs([(1, 2), (2, 0)])
            .build()
            .unwrap();
        assert_eq!(g.num_arcs(), 3);
        assert!(g.has_arc(2, 0));
    }

    #[test]
    fn digraph_builder_rejects_self_loop_when_forbidden() {
        let err = DiGraphBuilder::new(2)
            .forbid_self_loops()
            .arc(1, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { vertex: 1 }));
        // ... but allows it by default.
        let g = DiGraphBuilder::new(2).arc(1, 1).build().unwrap();
        assert!(g.has_arc(1, 1));
    }

    #[test]
    fn digraph_builder_duplicate_policies() {
        let err = DiGraphBuilder::new(2)
            .arc(0, 1)
            .arc(0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateArc { .. }));

        let g = DiGraphBuilder::new(2)
            .duplicate_policy(DuplicatePolicy::KeepFirst)
            .arc(0, 1)
            .arc(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn uncertain_builder_roundtrip() {
        let g = UncertainGraphBuilder::new(3)
            .arc(0, 1, 0.5)
            .arc(1, 2, 0.25)
            .build()
            .unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert!((g.arc_probability(1, 2).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uncertain_builder_keep_max_probability() {
        let g = UncertainGraphBuilder::new(2)
            .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
            .arc(0, 1, 0.3)
            .arc(0, 1, 0.9)
            .arc(0, 1, 0.5)
            .build()
            .unwrap();
        assert_eq!(g.num_arcs(), 1);
        assert!((g.arc_probability(0, 1).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn uncertain_builder_keep_first() {
        let g = UncertainGraphBuilder::new(2)
            .duplicate_policy(DuplicatePolicy::KeepFirst)
            .arc(0, 1, 0.3)
            .arc(0, 1, 0.9)
            .build()
            .unwrap();
        assert!((g.arc_probability(0, 1).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn uncertain_builder_validates_probability_and_range() {
        assert!(UncertainGraphBuilder::new(2)
            .arc(0, 1, 0.0)
            .build()
            .is_err());
        assert!(UncertainGraphBuilder::new(2)
            .arc(0, 9, 0.5)
            .build()
            .is_err());
        assert!(UncertainGraphBuilder::new(2)
            .forbid_self_loops()
            .arc(0, 0, 0.5)
            .build()
            .is_err());
    }

    #[test]
    fn staged_arc_counts() {
        let b = DiGraphBuilder::new(4).arc(0, 1).arc(1, 2);
        assert_eq!(b.staged_arcs(), 2);
        let ub = UncertainGraphBuilder::new(4).arc(0, 1, 0.5);
        assert_eq!(ub.staged_arcs(), 1);
    }
}
