//! A compact, walk-oriented compressed-sparse-row view of a graph.
//!
//! [`DiGraph`] and [`UncertainGraph`] already store their adjacency in CSR
//! form, but the SimRank estimators need more than raw adjacency: the
//! random-walk interpretation of SimRank follows arcs *backwards*, so every
//! estimator used to materialise a full transposed copy of the input
//! (`UncertainGraph::transpose`, a sort + rebuild of all arcs) before it could
//! walk anything.  [`CsrGraph`] removes that step: it is built **once** from a
//! graph and exposes *both* directions as flat `offsets` / `targets` / `probs`
//! arrays through [`CsrView`], so a sampler picks the forward or the reverse
//! (transpose) view at query time with zero copying.
//!
//! Neighbor slices are sorted by vertex id (inherited from the [`DiGraph`]
//! build), which keeps arc lookups a binary search and iteration
//! deterministic.
//!
//! # Layout
//!
//! For each direction the graph is three parallel flat arrays:
//!
//! ```text
//! offsets: [0, d(0), d(0)+d(1), …]          (num_vertices + 1 entries)
//! targets: neighbors of 0, neighbors of 1, …  (num_arcs entries, sorted per vertex)
//! probs:   probability of each arc, aligned with `targets`
//! ```
//!
//! `neighbors(v)` and `probabilities(v)` are the sub-slices
//! `targets[offsets[v]..offsets[v+1]]` and `probs[offsets[v]..offsets[v+1]]`.

use crate::alias::{AliasTable, CsrAliasView};
use crate::graph::DiGraph;
use crate::uncertain::UncertainGraph;
use crate::{Probability, VertexId};

/// Read-only, direction-fixed adjacency: the interface walk samplers need.
///
/// [`CsrView`] implements it for the static CSR arrays, and
/// [`crate::OverlayView`] implements it for a CSR base patched by a
/// [`crate::DeltaOverlay`] — so `rwalk::CsrSampler` walks a live, mutating
/// graph through exactly the same sorted-slice reads it uses for a frozen
/// one.  For any vertex whose adjacency the overlay has not touched, an
/// implementation must return the *identical* base slices, which is what
/// keeps the RNG draw order of walks over untouched vertices unchanged.
pub trait GraphView {
    /// Number of vertices `|V|`.
    fn num_vertices(&self) -> usize;

    /// Neighbors of `v` in this direction, sorted by vertex id.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Probabilities of `v`'s arcs, aligned with [`GraphView::neighbors`].
    fn probabilities(&self, v: VertexId) -> &[Probability];

    /// Degree of `v` in this direction.
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }
}

/// One direction of a [`CsrGraph`]: flat offsets / targets / probabilities.
#[derive(Debug, Clone, PartialEq)]
struct CsrDirection {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    probs: Vec<Probability>,
}

/// A compact CSR representation of an uncertain (or deterministic) graph with
/// both the forward adjacency and its transpose materialised as flat arrays.
///
/// Built once (see [`CsrGraph::from_uncertain`] / [`CsrGraph::from_digraph`]);
/// all samplers and the batch [`QueryEngine`] walk [`CsrView`]s of this
/// structure instead of re-deriving adjacency per query.
///
/// [`QueryEngine`]: https://docs.rs/usim_core (crates/core)
///
/// # Alias tables
///
/// The graph optionally carries precomputed Walker alias tables for both
/// directions (see [`crate::alias`]), built on demand by
/// [`CsrGraph::build_alias_tables`] — only engines configured for the alias
/// sampler backend pay the `O(Σ d²)` build.  The tables are *derived* data
/// (a pure function of the CSR arrays), so [`PartialEq`] deliberately
/// ignores them: a graph with tables equals the same graph without.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    num_vertices: usize,
    forward: CsrDirection,
    reverse: CsrDirection,
    /// `(forward, reverse)` alias tables, present only when built or loaded
    /// from a snapshot that persisted them.
    alias: Option<Box<(AliasTable, AliasTable)>>,
}

impl PartialEq for CsrGraph {
    /// Structural equality of the CSR arrays only — the optional alias
    /// tables are derived data and do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.num_vertices == other.num_vertices
            && self.forward == other.forward
            && self.reverse == other.reverse
    }
}

impl CsrGraph {
    /// Builds the CSR representation of an uncertain graph.
    ///
    /// The forward view reproduces `graph.out_arcs`, the reverse view
    /// reproduces `graph.in_arcs` (equivalently: the forward view of
    /// `graph.transpose()`, without building the transpose).
    pub fn from_uncertain(graph: &UncertainGraph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_arcs();
        let mut forward = CsrDirection {
            offsets: Vec::with_capacity(n + 1),
            targets: Vec::with_capacity(m),
            probs: Vec::with_capacity(m),
        };
        let mut reverse = CsrDirection {
            offsets: Vec::with_capacity(n + 1),
            targets: Vec::with_capacity(m),
            probs: Vec::with_capacity(m),
        };
        forward.offsets.push(0);
        reverse.offsets.push(0);
        for v in 0..n as VertexId {
            let (out_nbrs, out_probs) = graph.out_arcs(v);
            forward.targets.extend_from_slice(out_nbrs);
            forward.probs.extend_from_slice(out_probs);
            forward.offsets.push(forward.targets.len());
            let (in_nbrs, in_probs) = graph.in_arcs(v);
            reverse.targets.extend_from_slice(in_nbrs);
            reverse.probs.extend_from_slice(in_probs);
            reverse.offsets.push(reverse.targets.len());
        }
        CsrGraph {
            num_vertices: n,
            forward,
            reverse,
            alias: None,
        }
    }

    /// Builds the CSR representation of a deterministic graph; every arc gets
    /// probability 1, so walks on it are ordinary uniform random walks.
    pub fn from_digraph(graph: &DiGraph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_arcs();
        let mut forward = CsrDirection {
            offsets: Vec::with_capacity(n + 1),
            targets: Vec::with_capacity(m),
            probs: vec![1.0; m],
        };
        let mut reverse = CsrDirection {
            offsets: Vec::with_capacity(n + 1),
            targets: Vec::with_capacity(m),
            probs: vec![1.0; m],
        };
        forward.offsets.push(0);
        reverse.offsets.push(0);
        for v in 0..n as VertexId {
            forward.targets.extend_from_slice(graph.out_neighbors(v));
            forward.offsets.push(forward.targets.len());
            reverse.targets.extend_from_slice(graph.in_neighbors(v));
            reverse.offsets.push(reverse.targets.len());
        }
        CsrGraph {
            num_vertices: n,
            forward,
            reverse,
            alias: None,
        }
    }

    /// Builds a CSR graph directly from pre-merged flat arrays, one
    /// `(offsets, targets, probs)` triple per direction.  Used by
    /// [`crate::DeltaOverlay`] compaction, which already holds both
    /// directions in merged, sorted form.
    pub(crate) fn from_raw_directions(
        num_vertices: usize,
        forward: (Vec<usize>, Vec<VertexId>, Vec<Probability>),
        reverse: (Vec<usize>, Vec<VertexId>, Vec<Probability>),
    ) -> Self {
        let build = |(offsets, targets, probs): (Vec<usize>, Vec<VertexId>, Vec<Probability>)| {
            debug_assert_eq!(offsets.len(), num_vertices + 1);
            debug_assert_eq!(offsets.first().copied(), Some(0));
            debug_assert_eq!(offsets.last().copied(), Some(targets.len()));
            debug_assert_eq!(targets.len(), probs.len());
            CsrDirection {
                offsets,
                targets,
                probs,
            }
        };
        let forward = build(forward);
        let reverse = build(reverse);
        debug_assert_eq!(forward.targets.len(), reverse.targets.len());
        CsrGraph {
            num_vertices,
            forward,
            reverse,
            alias: None,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arcs `|E|`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.forward.targets.len()
    }

    /// The forward view: `neighbors(v)` are the out-neighbors of `v`.
    #[inline]
    pub fn forward(&self) -> CsrView<'_> {
        CsrView {
            num_vertices: self.num_vertices,
            offsets: &self.forward.offsets,
            targets: &self.forward.targets,
            probs: &self.forward.probs,
        }
    }

    /// The reverse (transpose) view: `neighbors(v)` are the in-neighbors of
    /// `v`.  Walking this view is identical to walking the forward view of
    /// the transposed graph — the direction SimRank's walks use.
    #[inline]
    pub fn reverse(&self) -> CsrView<'_> {
        CsrView {
            num_vertices: self.num_vertices,
            offsets: &self.reverse.offsets,
            targets: &self.reverse.targets,
            probs: &self.reverse.probs,
        }
    }

    /// Whether alias tables have been built (or loaded) for this graph.
    #[inline]
    pub fn has_alias_tables(&self) -> bool {
        self.alias.is_some()
    }

    /// Builds the Walker alias tables for both directions (`O(Σ d²)`); a
    /// no-op when tables are already present.
    pub fn build_alias_tables(&mut self) {
        if self.alias.is_none() {
            let forward = AliasTable::from_view(self.forward());
            let reverse = AliasTable::from_view(self.reverse());
            self.alias = Some(Box::new((forward, reverse)));
        }
    }

    /// Installs pre-built alias tables (the snapshot reader and overlay
    /// compaction, which construct tables out of band).
    pub(crate) fn set_alias_tables(&mut self, forward: AliasTable, reverse: AliasTable) {
        debug_assert_eq!(forward.num_slots(), self.num_arcs() + self.num_vertices);
        debug_assert_eq!(reverse.num_slots(), self.num_arcs() + self.num_vertices);
        self.alias = Some(Box::new((forward, reverse)));
    }

    /// The `(forward, reverse)` alias tables, when built.
    pub(crate) fn alias_tables(&self) -> Option<(&AliasTable, &AliasTable)> {
        self.alias.as_deref().map(|t| (&t.0, &t.1))
    }

    /// The forward-direction alias view, when tables are built.
    #[inline]
    pub fn forward_alias(&self) -> Option<CsrAliasView<'_>> {
        self.alias.as_deref().map(|t| t.0.view())
    }

    /// The reverse-direction alias view, when tables are built.
    #[inline]
    pub fn reverse_alias(&self) -> Option<CsrAliasView<'_>> {
        self.alias.as_deref().map(|t| t.1.view())
    }
}

/// A borrowed, direction-fixed view of a [`CsrGraph`]: the three flat arrays
/// of one direction.  `Copy`, pointer-sized ×4 — hand it to workers freely.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    num_vertices: usize,
    offsets: &'a [usize],
    targets: &'a [VertexId],
    probs: &'a [Probability],
}

impl<'a> CsrView<'a> {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arcs `|E|`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Index range of `v`'s arcs within [`Self::targets_flat`] /
    /// [`Self::probs_flat`].
    ///
    /// `v` must be a vertex of the graph; out-of-range ids panic on the
    /// `offsets` index.  Fallible entry points (the batch `QueryEngine`
    /// APIs, the CLI) validate ids *before* reaching this hot path.
    #[inline]
    pub fn arc_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        debug_assert!(
            v < self.num_vertices,
            "vertex {v} out of range (graph has {} vertices)",
            self.num_vertices
        );
        (self.offsets[v], self.offsets[v + 1])
    }

    /// Neighbors of `v` in this direction, sorted by vertex id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        let (start, end) = self.arc_range(v);
        &self.targets[start..end]
    }

    /// Probabilities of `v`'s arcs, aligned with [`Self::neighbors`].
    #[inline]
    pub fn probabilities(&self, v: VertexId) -> &'a [Probability] {
        let (start, end) = self.arc_range(v);
        &self.probs[start..end]
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let (start, end) = self.arc_range(v);
        end - start
    }

    /// Whether the arc `(u, v)` exists in this direction — a binary search
    /// over `u`'s sorted neighbor slice.
    #[inline]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Existence probability of the arc `(u, v)` in this direction, or `None`
    /// when the arc is absent — a binary search over `u`'s sorted neighbors.
    #[inline]
    pub fn arc_probability(&self, u: VertexId, v: VertexId) -> Option<Probability> {
        let (start, _) = self.arc_range(u);
        let idx = self.neighbors(u).binary_search(&v).ok()?;
        Some(self.probs[start + idx])
    }

    /// One-step transition probability `1 / degree(u)` of the uniform random
    /// walk on the skeleton, 0 when `(u, v)` is not an arc (binary search).
    #[inline]
    pub fn transition_probability(&self, u: VertexId, v: VertexId) -> f64 {
        let d = self.degree(u);
        if d > 0 && self.has_arc(u, v) {
            1.0 / d as f64
        } else {
            0.0
        }
    }

    /// The entire flat target array (all vertices concatenated).
    #[inline]
    pub fn targets_flat(&self) -> &'a [VertexId] {
        self.targets
    }

    /// The entire flat probability array, aligned with
    /// [`Self::targets_flat`].
    #[inline]
    pub fn probs_flat(&self) -> &'a [Probability] {
        self.probs
    }

    /// The offsets array (`num_vertices + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &'a [usize] {
        self.offsets
    }
}

impl GraphView for CsrView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrView::num_vertices(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrView::neighbors(self, v)
    }

    #[inline]
    fn probabilities(&self, v: VertexId) -> &[Probability] {
        CsrView::probabilities(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrView::degree(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraph::from_arcs(
            5,
            [
                (0, 2, 0.8),
                (0, 3, 0.5),
                (1, 0, 0.8),
                (1, 2, 0.9),
                (2, 0, 0.7),
                (2, 3, 0.6),
                (3, 4, 0.6),
                (3, 1, 0.8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn forward_view_matches_out_arcs() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_arcs(), 8);
        let fwd = csr.forward();
        for v in g.vertices() {
            let (nbrs, probs) = g.out_arcs(v);
            assert_eq!(fwd.neighbors(v), nbrs);
            assert_eq!(fwd.probabilities(v), probs);
            assert_eq!(fwd.degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn reverse_view_matches_in_arcs_and_the_transpose() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let rev = csr.reverse();
        for v in g.vertices() {
            let (nbrs, probs) = g.in_arcs(v);
            assert_eq!(rev.neighbors(v), nbrs);
            assert_eq!(rev.probabilities(v), probs);
        }
        // The reverse view IS the forward view of the transpose.
        let transposed = CsrGraph::from_uncertain(&g.transpose());
        let tf = transposed.forward();
        for v in g.vertices() {
            assert_eq!(rev.neighbors(v), tf.neighbors(v));
            assert_eq!(rev.probabilities(v), tf.probabilities(v));
        }
    }

    #[test]
    fn neighbor_slices_are_sorted_for_binary_search() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        for view in [csr.forward(), csr.reverse()] {
            for v in 0..csr.num_vertices() as VertexId {
                let nbrs = view.neighbors(v);
                assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            }
        }
    }

    #[test]
    fn arc_lookups_use_both_directions() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let fwd = csr.forward();
        let rev = csr.reverse();
        assert!(fwd.has_arc(0, 2));
        assert!(!fwd.has_arc(2, 1));
        assert!(rev.has_arc(2, 0), "reverse direction flips the arc");
        assert_eq!(fwd.arc_probability(0, 2), Some(0.8));
        assert_eq!(rev.arc_probability(2, 0), Some(0.8));
        assert_eq!(fwd.arc_probability(0, 4), None);
        assert!((fwd.transition_probability(0, 2) - 0.5).abs() < 1e-12);
        assert_eq!(fwd.transition_probability(0, 4), 0.0);
        assert_eq!(fwd.transition_probability(4, 0), 0.0);
    }

    #[test]
    fn digraph_build_gets_unit_probabilities() {
        let d = DiGraph::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]).unwrap();
        let csr = CsrGraph::from_digraph(&d);
        assert_eq!(csr.num_arcs(), 5);
        let fwd = csr.forward();
        for v in d.vertices() {
            assert_eq!(fwd.neighbors(v), d.out_neighbors(v));
            assert!(fwd.probabilities(v).iter().all(|&p| p == 1.0));
            assert_eq!(csr.reverse().neighbors(v), d.in_neighbors(v));
        }
    }

    #[test]
    fn flat_arrays_are_consistent_with_offsets() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let fwd = csr.forward();
        assert_eq!(fwd.offsets().len(), 6);
        assert_eq!(*fwd.offsets().last().unwrap(), fwd.targets_flat().len());
        assert_eq!(fwd.targets_flat().len(), fwd.probs_flat().len());
        let (start, end) = fwd.arc_range(1);
        assert_eq!(&fwd.targets_flat()[start..end], fwd.neighbors(1));
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = UncertainGraph::from_arcs(3, [(0, 1, 0.5)]).unwrap();
        let csr = CsrGraph::from_uncertain(&g);
        assert_eq!(csr.forward().degree(2), 0);
        assert_eq!(csr.forward().neighbors(2), &[] as &[VertexId]);
        assert_eq!(csr.reverse().degree(0), 0);
        let empty = CsrGraph::from_uncertain(&UncertainGraph::from_arcs(0, []).unwrap());
        assert_eq!(empty.num_vertices(), 0);
        assert_eq!(empty.num_arcs(), 0);
    }
}
