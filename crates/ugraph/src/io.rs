//! Reading and writing uncertain graphs as weighted edge lists.
//!
//! The format is one arc per line: `source target probability`, separated by
//! whitespace.  Lines starting with `#` or `%` and blank lines are ignored.
//! Vertex ids are arbitrary non-negative integers; they are compacted to
//! `0..n` on read (in first-appearance order) unless
//! [`ReadOptions::assume_compact`] is set.  Deterministic graphs use the same
//! format without the probability column (or with it ignored).

use crate::{GraphError, Probability, UncertainGraph, UncertainGraphBuilder, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Options controlling edge-list parsing.
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// If true, vertex ids in the file are assumed to already be `0..n` and
    /// are used directly; otherwise ids are remapped compactly in
    /// first-appearance order.
    pub assume_compact: bool,
    /// Probability assigned to arcs that do not carry a third column.
    pub default_probability: Probability,
    /// If true, duplicate arcs keep the maximum probability instead of being
    /// an error.
    pub merge_duplicates: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            assume_compact: false,
            default_probability: 1.0,
            merge_duplicates: false,
        }
    }
}

/// Result of reading an edge list: the graph plus the mapping from original
/// vertex labels to compact ids.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The parsed uncertain graph.
    pub graph: UncertainGraph,
    /// `labels[i]` is the original label of compact vertex id `i`.
    pub labels: Vec<u64>,
}

impl ReadResult {
    /// Looks up the compact id of an original label (linear scan; intended
    /// for tests and small interactive use).
    pub fn id_of_label(&self, label: u64) -> Option<VertexId> {
        self.labels
            .iter()
            .position(|&l| l == label)
            .map(|i| i as VertexId)
    }
}

/// Reads an uncertain graph from any reader in edge-list format.
pub fn read_edge_list<R: Read>(reader: R, options: &ReadOptions) -> Result<ReadResult, GraphError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<u64> = Vec::new();
    let mut id_map: HashMap<u64, VertexId> = HashMap::new();
    let mut arcs: Vec<(VertexId, VertexId, Probability)> = Vec::new();
    let mut max_label_plus_one: u64 = 0;

    let intern = |label: u64, labels: &mut Vec<u64>, id_map: &mut HashMap<u64, VertexId>| {
        *id_map.entry(label).or_insert_with(|| {
            let id = labels.len() as VertexId;
            labels.push(label);
            id
        })
    };

    for (line_no, line) in reader.lines().enumerate() {
        let line = line.map_err(GraphError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse_u64 = |s: Option<&str>, what: &str| -> Result<u64, GraphError> {
            s.ok_or_else(|| GraphError::Parse {
                line: line_no + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: line_no + 1,
                message: format!("invalid {what}: {e}"),
            })
        };
        let u_label = parse_u64(fields.next(), "source vertex")?;
        let v_label = parse_u64(fields.next(), "target vertex")?;
        let probability = match fields.next() {
            Some(s) => s.parse::<f64>().map_err(|e| GraphError::Parse {
                line: line_no + 1,
                message: format!("invalid probability: {e}"),
            })?,
            None => options.default_probability,
        };
        max_label_plus_one = max_label_plus_one.max(u_label + 1).max(v_label + 1);
        let (u, v) = if options.assume_compact {
            (u_label as VertexId, v_label as VertexId)
        } else {
            (
                intern(u_label, &mut labels, &mut id_map),
                intern(v_label, &mut labels, &mut id_map),
            )
        };
        arcs.push((u, v, probability));
    }

    let num_vertices = if options.assume_compact {
        max_label_plus_one as usize
    } else {
        labels.len()
    };
    if options.assume_compact {
        labels = (0..num_vertices as u64).collect();
    }

    let mut builder = UncertainGraphBuilder::new(num_vertices).arcs(arcs);
    if options.merge_duplicates {
        builder = builder.duplicate_policy(crate::builder::DuplicatePolicy::KeepMaxProbability);
    }
    let graph = builder.build()?;
    Ok(ReadResult { graph, labels })
}

/// Reads an uncertain graph from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    options: &ReadOptions,
) -> Result<ReadResult, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

/// Writes an uncertain graph to any writer in edge-list format.
pub fn write_edge_list<W: Write>(graph: &UncertainGraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# uncertain graph: {} vertices, {} arcs",
        graph.num_vertices(),
        graph.num_arcs()
    )?;
    for arc in graph.arcs() {
        writeln!(writer, "{} {} {}", arc.source, arc.target, arc.probability)?;
    }
    Ok(())
}

/// Writes an uncertain graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let input = "# comment\n0 1 0.5\n1 2 0.75\n\n% another comment\n2 0 1.0\n";
        let result = read_edge_list(input.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(result.graph.num_vertices(), 3);
        assert_eq!(result.graph.num_arcs(), 3);
        assert!((result.graph.arc_probability(1, 2).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn remaps_sparse_labels_compactly() {
        let input = "100 200 0.5\n200 300 0.25\n";
        let result = read_edge_list(input.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(result.graph.num_vertices(), 3);
        assert_eq!(result.labels, vec![100, 200, 300]);
        assert_eq!(result.id_of_label(200), Some(1));
        assert_eq!(result.id_of_label(999), None);
    }

    #[test]
    fn assume_compact_uses_ids_directly() {
        let input = "0 3 0.5\n";
        let opts = ReadOptions {
            assume_compact: true,
            ..Default::default()
        };
        let result = read_edge_list(input.as_bytes(), &opts).unwrap();
        assert_eq!(result.graph.num_vertices(), 4);
        assert!(result.graph.has_arc(0, 3));
    }

    #[test]
    fn missing_probability_uses_default() {
        let input = "0 1\n1 2 0.5\n";
        let opts = ReadOptions {
            default_probability: 0.9,
            ..Default::default()
        };
        let result = read_edge_list(input.as_bytes(), &opts).unwrap();
        assert!((result.graph.arc_probability(0, 1).unwrap() - 0.9).abs() < 1e-12);
        assert!((result.graph.arc_probability(1, 2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let input = "0 1 0.5\nnot a line\n";
        let err = read_edge_list(input.as_bytes(), &ReadOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let input = "0 1 1.5\n";
        let err = read_edge_list(input.as_bytes(), &ReadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability { .. }));
    }

    #[test]
    fn duplicate_merging() {
        let input = "0 1 0.5\n0 1 0.8\n";
        assert!(read_edge_list(input.as_bytes(), &ReadOptions::default()).is_err());
        let opts = ReadOptions {
            merge_duplicates: true,
            ..Default::default()
        };
        let result = read_edge_list(input.as_bytes(), &opts).unwrap();
        assert_eq!(result.graph.num_arcs(), 1);
        assert!((result.graph.arc_probability(0, 1).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = UncertainGraph::from_arcs(3, [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 1.0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let opts = ReadOptions {
            assume_compact: true,
            ..Default::default()
        };
        let back = read_edge_list(buf.as_slice(), &opts).unwrap();
        assert_eq!(back.graph.num_arcs(), 3);
        for arc in g.arcs() {
            let p = back.graph.arc_probability(arc.source, arc.target).unwrap();
            assert!((p - arc.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = UncertainGraph::from_arcs(2, [(0, 1, 0.5)]).unwrap();
        let dir = std::env::temp_dir().join("ugraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path, &ReadOptions::default()).unwrap();
        assert_eq!(back.graph.num_arcs(), 1);
        std::fs::remove_file(&path).ok();
    }
}
