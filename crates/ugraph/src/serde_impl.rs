//! Serde support for uncertain graphs.
//!
//! An [`UncertainGraph`] serialises as its logical content — the vertex count
//! plus the probabilistic arc list — rather than its CSR internals, so the
//! encoded form is stable across internal representation changes and
//! readable when emitted as JSON (configuration files, experiment manifests,
//! result archives).  Deserialisation rebuilds the CSR through
//! [`UncertainGraph::from_arcs`] and therefore re-applies all validation:
//! malformed input (out-of-range vertices, invalid probabilities, duplicate
//! arcs) is reported as a serde error instead of producing a broken graph.

use crate::{ProbArc, UncertainGraph};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The serialised form of an uncertain graph.
#[derive(Serialize, Deserialize)]
struct UncertainGraphDto {
    num_vertices: usize,
    arcs: Vec<ProbArc>,
}

impl Serialize for UncertainGraph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let dto = UncertainGraphDto {
            num_vertices: self.num_vertices(),
            arcs: self.arcs().collect(),
        };
        dto.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for UncertainGraph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let dto = UncertainGraphDto::deserialize(deserializer)?;
        UncertainGraph::from_arcs(
            dto.num_vertices,
            dto.arcs
                .into_iter()
                .map(|arc| (arc.source, arc.target, arc.probability)),
        )
        .map_err(|e| D::Error::custom(format!("invalid uncertain graph: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use crate::UncertainGraphBuilder;

    fn fig1_graph() -> crate::UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_the_graph() {
        let graph = fig1_graph();
        let json = serde_json::to_string(&graph).unwrap();
        assert!(json.contains("\"num_vertices\":5"));
        let restored: crate::UncertainGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, graph);
    }

    #[test]
    fn arcless_graph_roundtrips() {
        let graph = UncertainGraphBuilder::new(3).build().unwrap();
        let json = serde_json::to_string(&graph).unwrap();
        let restored: crate::UncertainGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.num_vertices(), 3);
        assert_eq!(restored.num_arcs(), 0);
    }

    #[test]
    fn prob_arc_serialises_with_named_fields() {
        let arc = crate::ProbArc {
            source: 1,
            target: 2,
            probability: 0.75,
        };
        let json = serde_json::to_string(&arc).unwrap();
        assert_eq!(json, r#"{"source":1,"target":2,"probability":0.75}"#);
        let back: crate::ProbArc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, arc);
    }

    #[test]
    fn invalid_serialised_graphs_are_rejected_with_context() {
        // Probability outside (0, 1].
        let bad_probability =
            r#"{"num_vertices":2,"arcs":[{"source":0,"target":1,"probability":1.5}]}"#;
        let err = serde_json::from_str::<crate::UncertainGraph>(bad_probability).unwrap_err();
        assert!(err.to_string().contains("probability"), "{err}");

        // Vertex id out of range.
        let bad_vertex = r#"{"num_vertices":2,"arcs":[{"source":0,"target":9,"probability":0.5}]}"#;
        let err = serde_json::from_str::<crate::UncertainGraph>(bad_vertex).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        // Duplicate arc.
        let duplicate = r#"{"num_vertices":2,"arcs":[
            {"source":0,"target":1,"probability":0.5},
            {"source":0,"target":1,"probability":0.6}]}"#;
        let err = serde_json::from_str::<crate::UncertainGraph>(duplicate).unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
    }
}
