//! A compact binary on-disk format for uncertain graphs.
//!
//! The text edge-list format of [`crate::io`] is convenient for interchange
//! but costly to parse for the multi-million-edge graphs of the scalability
//! experiment (Fig. 12 of the paper).  This module provides a simple binary
//! format used by the CLI's `convert` command and the experiment harness when
//! caching generated datasets between runs:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"USIMGRB1"
//! 8       4     number of vertices  (u32, little endian)
//! 12      8     number of arcs      (u64, little endian)
//! 20      16·m  arc records: source u32, target u32, probability f64
//! 20+16m  8     FNV-1a checksum of bytes 0 .. 20+16m (u64, little endian)
//! ```
//!
//! Reading validates the magic, the checksum, every vertex id and every
//! probability, so a truncated or bit-flipped file is reported as a
//! [`GraphError::Format`] rather than silently producing a wrong graph.

use crate::{GraphError, UncertainGraph, VertexId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic of the binary uncertain-graph format, version 1.
pub const MAGIC: &[u8; 8] = b"USIMGRB1";

const HEADER_LEN: usize = 8 + 4 + 8;
const ARC_RECORD_LEN: usize = 4 + 4 + 8;

/// Incrementally computed FNV-1a hash, used as the checksum of every binary
/// format in this crate ([`crate::snapshot`] and [`crate::updatelog`] reuse
/// it so all on-disk artifacts share one integrity primitive).
#[derive(Debug, Clone)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) fn format_error(message: impl Into<String>) -> GraphError {
    GraphError::Format {
        message: message.into(),
    }
}

/// Writes `graph` to `writer` in the binary format.
pub fn write_binary<W: Write>(graph: &UncertainGraph, writer: W) -> Result<(), GraphError> {
    let mut writer = BufWriter::new(writer);
    let mut checksum = Fnv1a::new();
    let mut emit = |writer: &mut BufWriter<W>, bytes: &[u8]| -> Result<(), GraphError> {
        checksum.update(bytes);
        writer.write_all(bytes).map_err(GraphError::from)
    };

    emit(&mut writer, MAGIC)?;
    emit(&mut writer, &(graph.num_vertices() as u32).to_le_bytes())?;
    emit(&mut writer, &(graph.num_arcs() as u64).to_le_bytes())?;
    for arc in graph.arcs() {
        emit(&mut writer, &arc.source.to_le_bytes())?;
        emit(&mut writer, &arc.target.to_le_bytes())?;
        emit(&mut writer, &arc.probability.to_le_bytes())?;
    }
    let digest = checksum.finish();
    writer.write_all(&digest.to_le_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Writes `graph` to a file in the binary format.
pub fn write_binary_file<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_binary(graph, file)
}

/// Reads an uncertain graph from `reader` in the binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<UncertainGraph, GraphError> {
    let mut reader = BufReader::new(reader);
    let mut checksum = Fnv1a::new();

    let mut read_exact =
        |reader: &mut BufReader<R>, buffer: &mut [u8], what: &str| -> Result<(), GraphError> {
            reader
                .read_exact(buffer)
                .map_err(|e| format_error(format!("truncated file while reading {what}: {e}")))?;
            checksum.update(buffer);
            Ok(())
        };

    let mut magic = [0u8; 8];
    read_exact(&mut reader, &mut magic, "the file magic")?;
    if &magic != MAGIC {
        return Err(format_error(format!(
            "bad magic {magic:?}; not a binary uncertain-graph file (expected {MAGIC:?})"
        )));
    }

    let mut header = [0u8; HEADER_LEN - 8];
    read_exact(&mut reader, &mut header, "the header")?;
    let num_vertices = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice")) as usize;
    let num_arcs = u64::from_le_bytes(header[4..12].try_into().expect("8-byte slice")) as usize;

    let mut arcs: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(num_arcs.min(1 << 24));
    let mut record = [0u8; ARC_RECORD_LEN];
    for index in 0..num_arcs {
        read_exact(&mut reader, &mut record, &format!("arc record {index}"))?;
        let source = u32::from_le_bytes(record[0..4].try_into().expect("4-byte slice"));
        let target = u32::from_le_bytes(record[4..8].try_into().expect("4-byte slice"));
        let probability = f64::from_le_bytes(record[8..16].try_into().expect("8-byte slice"));
        arcs.push((source, target, probability));
    }

    let expected = checksum.finish();
    let mut stored = [0u8; 8];
    reader
        .read_exact(&mut stored)
        .map_err(|e| format_error(format!("truncated file while reading the checksum: {e}")))?;
    let stored = u64::from_le_bytes(stored);
    if stored != expected {
        return Err(format_error(format!(
            "checksum mismatch: stored {stored:#018x}, computed {expected:#018x}; the file is corrupted"
        )));
    }
    let mut trailing = [0u8; 1];
    if reader.read(&mut trailing).map_err(GraphError::from)? != 0 {
        return Err(format_error("trailing bytes after the checksum"));
    }

    UncertainGraph::from_arcs(num_vertices, arcs)
}

/// Reads an uncertain graph from a file in the binary format.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = File::open(path)?;
    read_binary(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn encode(graph: &UncertainGraph) -> Vec<u8> {
        let mut buffer = Vec::new();
        write_binary(graph, &mut buffer).unwrap();
        buffer
    }

    #[test]
    fn roundtrip_preserves_every_arc_and_probability() {
        let original = fig1_graph();
        let bytes = encode(&original);
        assert_eq!(bytes.len(), HEADER_LEN + 8 * ARC_RECORD_LEN + 8);
        let restored = read_binary(bytes.as_slice()).unwrap();
        assert_eq!(restored.num_vertices(), original.num_vertices());
        assert_eq!(restored.num_arcs(), original.num_arcs());
        for arc in original.arcs() {
            let p = restored.arc_probability(arc.source, arc.target).unwrap();
            assert_eq!(p, arc.probability, "arc ({}, {})", arc.source, arc.target);
        }
    }

    #[test]
    fn roundtrip_of_an_arcless_graph() {
        let empty = UncertainGraphBuilder::new(3).build().unwrap();
        let restored = read_binary(encode(&empty).as_slice()).unwrap();
        assert_eq!(restored.num_vertices(), 3);
        assert_eq!(restored.num_arcs(), 0);
    }

    #[test]
    fn file_helpers_roundtrip() {
        let path = std::env::temp_dir().join(format!("usim_binfmt_{}.bin", std::process::id()));
        let original = fig1_graph();
        write_binary_file(&original, &path).unwrap();
        let restored = read_binary_file(&path).unwrap();
        assert_eq!(restored.num_arcs(), original.num_arcs());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&fig1_graph());
        bytes[0] = b'X';
        let err = read_binary(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = encode(&fig1_graph());
        for cut in [4usize, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 3] {
            let err = read_binary(&bytes[..cut]).unwrap_err();
            assert!(err.to_string().contains("truncated"), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn truncation_at_every_section_boundary_is_a_typed_error() {
        let bytes = encode(&fig1_graph());
        // Section boundaries of the format: end of magic, end of header,
        // end of every arc record, start of the checksum.
        let mut boundaries = vec![8usize, HEADER_LEN];
        for arc in 1..=8 {
            boundaries.push(HEADER_LEN + arc * ARC_RECORD_LEN);
        }
        assert_eq!(*boundaries.last().unwrap(), bytes.len() - 8);
        for &boundary in &boundaries {
            // At the boundary itself, one byte short, one byte past.
            for cut in [boundary.saturating_sub(1), boundary, boundary + 1] {
                let err = read_binary(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, GraphError::Format { .. }),
                    "cut at {cut}: {err}"
                );
                assert!(err.to_string().contains("truncated"), "cut at {cut}: {err}");
            }
        }
    }

    #[test]
    fn a_bit_flip_in_every_header_field_is_a_typed_error() {
        let clean = encode(&fig1_graph());
        // Every byte of the magic, the vertex count and the arc count: a
        // flip must surface as a typed Format error — bad magic, checksum
        // mismatch or truncation — never a panic or a silently wrong graph.
        for offset in 0..HEADER_LEN {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupted = clean.clone();
                corrupted[offset] ^= bit;
                let result = std::panic::catch_unwind(|| read_binary(corrupted.as_slice()));
                let outcome = result.unwrap_or_else(|_| {
                    panic!("header byte {offset} flipped by {bit:#04x} caused a panic")
                });
                let err = outcome.expect_err("corrupted header must not parse");
                assert!(
                    matches!(err, GraphError::Format { .. }),
                    "byte {offset} flip {bit:#04x}: {err}"
                );
            }
        }
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let clean = encode(&fig1_graph());
        // Flip one byte inside an arc record's probability field.
        let mut corrupted = clean.clone();
        let offset = HEADER_LEN + ARC_RECORD_LEN + 10;
        corrupted[offset] ^= 0x01;
        let err = read_binary(corrupted.as_slice()).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("checksum") || message.contains("probability"),
            "unexpected error: {message}"
        );
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut bytes = encode(&fig1_graph());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let err = read_binary(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&fig1_graph());
        bytes.push(0);
        let err = read_binary(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn text_and_binary_formats_agree() {
        let graph = fig1_graph();
        let mut text = Vec::new();
        crate::io::write_edge_list(&graph, &mut text).unwrap();
        // `assume_compact` keeps the original vertex ids so arcs can be
        // compared positionally with the binary round trip.
        let options = crate::io::ReadOptions {
            assume_compact: true,
            ..Default::default()
        };
        let from_text = crate::io::read_edge_list(text.as_slice(), &options)
            .unwrap()
            .graph;
        let from_binary = read_binary(encode(&graph).as_slice()).unwrap();
        assert_eq!(from_text.num_vertices(), from_binary.num_vertices());
        assert_eq!(from_text.num_arcs(), from_binary.num_arcs());
        for arc in from_binary.arcs() {
            let p = from_text.arc_probability(arc.source, arc.target).unwrap();
            assert!((p - arc.probability).abs() < 1e-9);
        }
    }
}
