//! Uncertain directed graphs: every arc carries an independent existence
//! probability in `(0, 1]` (the tuple `(V, E, P)` of Section II of the paper).

use crate::graph::DiGraph;
use crate::{GraphError, Probability, VertexId};

/// An arc of an uncertain graph together with its existence probability.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProbArc {
    /// Source vertex.
    pub source: VertexId,
    /// Target vertex.
    pub target: VertexId,
    /// Existence probability in `(0, 1]`.
    pub probability: Probability,
}

/// A directed uncertain graph in CSR form.
///
/// The topology is stored exactly like [`DiGraph`] (forward + reverse CSR)
/// with a parallel array of arc probabilities for each direction, so that
/// `out_arcs(v)` yields the out-neighbors of `v` together with the
/// probabilities of the corresponding arcs without any indirection.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainGraph {
    skeleton: DiGraph,
    /// Probability of the arc `(v, out_targets[i])`, aligned with the forward
    /// CSR of `skeleton`.
    out_probabilities: Vec<Probability>,
    /// Probability of the arc `(in_sources[i], v)`, aligned with the reverse
    /// CSR of `skeleton`.
    in_probabilities: Vec<Probability>,
}

impl UncertainGraph {
    /// Builds an uncertain graph from a list of probabilistic arcs.
    pub fn from_arcs(
        num_vertices: usize,
        arcs: impl IntoIterator<Item = (VertexId, VertexId, Probability)>,
    ) -> Result<Self, GraphError> {
        let mut triples: Vec<(VertexId, VertexId, Probability)> = arcs.into_iter().collect();
        for &(u, v, p) in &triples {
            for w in [u, v] {
                if (w as usize) >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: w as u64,
                        num_vertices,
                    });
                }
            }
            if !crate::is_valid_probability(p) {
                return Err(GraphError::InvalidProbability {
                    source: u,
                    target: v,
                    probability: p,
                });
            }
        }
        triples.sort_unstable_by_key(|&(u, v, _)| (u, v));
        if let Some(w) = triples
            .windows(2)
            .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
        {
            return Err(GraphError::DuplicateArc {
                source: w[0].0,
                target: w[0].1,
            });
        }
        Ok(Self::from_sorted_unique_arcs(num_vertices, &triples))
    }

    pub(crate) fn from_sorted_unique_arcs(
        num_vertices: usize,
        triples: &[(VertexId, VertexId, Probability)],
    ) -> Self {
        let pairs: Vec<(VertexId, VertexId)> = triples.iter().map(|&(u, v, _)| (u, v)).collect();
        let skeleton = DiGraph::from_sorted_unique_arcs(num_vertices, &pairs);
        let out_probabilities: Vec<Probability> = triples.iter().map(|&(_, _, p)| p).collect();

        // The reverse CSR of `skeleton` orders arcs by (target, source).  Walk
        // the reverse adjacency and look up each arc's probability.
        let mut in_probabilities = Vec::with_capacity(triples.len());
        for v in 0..num_vertices as VertexId {
            for &u in skeleton.in_neighbors(v) {
                // Binary search over u's (sorted) out-neighbors.
                let nbrs = skeleton.out_neighbors(u);
                let idx = nbrs
                    .binary_search(&v)
                    .expect("reverse arc must exist in forward adjacency");
                let base = out_offset(&skeleton, u);
                in_probabilities.push(out_probabilities[base + idx]);
            }
        }

        UncertainGraph {
            skeleton,
            out_probabilities,
            in_probabilities,
        }
    }

    /// Number of vertices `|V(G)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.skeleton.num_vertices()
    }

    /// Number of arcs `|E(G)|`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.skeleton.num_arcs()
    }

    /// The deterministic skeleton (all arcs present, probabilities dropped).
    ///
    /// This is the graph the paper calls "the deterministic graph obtained by
    /// removing uncertainty from the uncertain graph" (used by SimRank-II,
    /// Jaccard-II, DSIM and SimDER).
    #[inline]
    pub fn skeleton(&self) -> &DiGraph {
        &self.skeleton
    }

    /// Consumes the uncertain graph and returns its deterministic skeleton.
    pub fn into_skeleton(self) -> DiGraph {
        self.skeleton
    }

    /// Out-neighbors `O_G(v)`, sorted by vertex id.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.skeleton.out_neighbors(v)
    }

    /// In-neighbors `I_G(v)`, sorted by vertex id.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.skeleton.in_neighbors(v)
    }

    /// Out-degree `|O_G(v)|` (number of *possible* out-arcs).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.skeleton.out_degree(v)
    }

    /// In-degree `|I_G(v)|` (number of *possible* in-arcs).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.skeleton.in_degree(v)
    }

    /// Whether the (possible) arc `(u, v)` exists in `E(G)`.
    #[inline]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.skeleton.has_arc(u, v)
    }

    /// Out-neighbors of `v` together with the probabilities of the arcs
    /// leaving `v`, as parallel slices.
    #[inline]
    pub fn out_arcs(&self, v: VertexId) -> (&[VertexId], &[Probability]) {
        let (start, end) = out_range(&self.skeleton, v);
        (
            self.skeleton.out_neighbors(v),
            &self.out_probabilities[start..end],
        )
    }

    /// In-neighbors of `v` together with the probabilities of the arcs
    /// entering `v`, as parallel slices.
    #[inline]
    pub fn in_arcs(&self, v: VertexId) -> (&[VertexId], &[Probability]) {
        let (start, end) = in_range(&self.skeleton, v);
        (
            self.skeleton.in_neighbors(v),
            &self.in_probabilities[start..end],
        )
    }

    /// Existence probability of the arc `(u, v)`, or `None` if `(u, v)` is not
    /// an arc of the uncertain graph.
    pub fn arc_probability(&self, u: VertexId, v: VertexId) -> Option<Probability> {
        let nbrs = self.skeleton.out_neighbors(u);
        let idx = nbrs.binary_search(&v).ok()?;
        let base = out_offset(&self.skeleton, u);
        Some(self.out_probabilities[base + idx])
    }

    /// Iterator over all probabilistic arcs in `(source, target)` order.
    pub fn arcs(&self) -> impl Iterator<Item = ProbArc> + '_ {
        self.skeleton.arcs().zip(self.out_probabilities.iter()).map(
            |((source, target), &probability)| ProbArc {
                source,
                target,
                probability,
            },
        )
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.skeleton.vertices()
    }

    /// Average out-degree `|E| / |V|` of the *possible* arcs.
    pub fn average_degree(&self) -> f64 {
        self.skeleton.average_degree()
    }

    /// Expected number of arcs, `Σ_e P(e)`.
    pub fn expected_num_arcs(&self) -> f64 {
        self.out_probabilities.iter().sum()
    }

    /// Returns a copy of this graph with every probability replaced by 1.
    ///
    /// By Theorem 3 of the paper, SimRank on the result equals deterministic
    /// SimRank on [`UncertainGraph::skeleton`]; the tests rely on this.
    pub fn certain(&self) -> UncertainGraph {
        UncertainGraph {
            skeleton: self.skeleton.clone(),
            out_probabilities: vec![1.0; self.out_probabilities.len()],
            in_probabilities: vec![1.0; self.in_probabilities.len()],
        }
    }

    /// Returns the transposed uncertain graph (every arc reversed, keeping
    /// its probability).
    ///
    /// Used by the SimRank estimators, whose random walks follow in-edges.
    pub fn transpose(&self) -> UncertainGraph {
        let mut triples: Vec<(VertexId, VertexId, Probability)> = self
            .arcs()
            .map(|a| (a.target, a.source, a.probability))
            .collect();
        triples.sort_unstable_by_key(|&(u, v, _)| (u, v));
        UncertainGraph::from_sorted_unique_arcs(self.num_vertices(), &triples)
    }

    /// Wraps a deterministic graph as an uncertain graph whose arcs all have
    /// the given probability.
    pub fn from_digraph_with_probability(
        graph: &DiGraph,
        probability: Probability,
    ) -> Result<Self, GraphError> {
        Self::from_arcs(
            graph.num_vertices(),
            graph.arcs().map(|(u, v)| (u, v, probability)),
        )
    }
}

#[inline]
fn out_offset(g: &DiGraph, v: VertexId) -> usize {
    out_range(g, v).0
}

#[inline]
fn out_range(g: &DiGraph, v: VertexId) -> (usize, usize) {
    g.out_range(v)
}

#[inline]
fn in_range(g: &DiGraph, v: VertexId) -> (usize, usize) {
    g.in_range(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn fig1_graph() -> UncertainGraph {
        UncertainGraph::from_arcs(
            5,
            [
                (0, 2, 0.8),
                (0, 3, 0.5),
                (1, 0, 0.8),
                (1, 2, 0.9),
                (2, 0, 0.7),
                (2, 3, 0.6),
                (3, 4, 0.6),
                (3, 1, 0.8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = fig1_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(3), 2);
        assert!((g.average_degree() - 8.0 / 5.0).abs() < 1e-12);
        assert!((g.expected_num_arcs() - 5.7).abs() < 1e-12);
    }

    #[test]
    fn arc_probability_lookup() {
        let g = fig1_graph();
        assert!((g.arc_probability(0, 2).unwrap() - 0.8).abs() < 1e-12);
        assert!((g.arc_probability(3, 1).unwrap() - 0.8).abs() < 1e-12);
        assert!((g.arc_probability(2, 3).unwrap() - 0.6).abs() < 1e-12);
        assert!(g.arc_probability(0, 4).is_none());
        assert!(g.arc_probability(4, 0).is_none());
    }

    #[test]
    fn out_arcs_and_in_arcs_are_aligned() {
        let g = fig1_graph();
        let (nbrs, probs) = g.out_arcs(0);
        assert_eq!(nbrs, &[2, 3]);
        assert_eq!(probs, &[0.8, 0.5]);

        let (nbrs, probs) = g.in_arcs(3);
        assert_eq!(nbrs, &[0, 2]);
        assert_eq!(probs, &[0.5, 0.6]);

        let (nbrs, probs) = g.in_arcs(0);
        assert_eq!(nbrs, &[1, 2]);
        assert_eq!(probs, &[0.8, 0.7]);

        // Every arc's probability is consistent between the two directions.
        for arc in g.arcs() {
            let (in_nbrs, in_probs) = g.in_arcs(arc.target);
            let idx = in_nbrs.iter().position(|&u| u == arc.source).unwrap();
            assert!((in_probs[idx] - arc.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn arcs_iterator_in_order() {
        let g = fig1_graph();
        let arcs: Vec<(VertexId, VertexId)> = g.arcs().map(|a| (a.source, a.target)).collect();
        assert_eq!(
            arcs,
            vec![
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 1),
                (3, 4)
            ]
        );
    }

    #[test]
    fn rejects_invalid_probability() {
        let err = UncertainGraph::from_arcs(2, [(0, 1, 0.0)]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability { .. }));
        let err = UncertainGraph::from_arcs(2, [(0, 1, 1.2)]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_duplicate_and_out_of_range() {
        let err = UncertainGraph::from_arcs(2, [(0, 1, 0.5), (0, 1, 0.6)]).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateArc { .. }));
        let err = UncertainGraph::from_arcs(2, [(0, 7, 0.5)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn certain_copy_has_probability_one_everywhere() {
        let g = fig1_graph().certain();
        for arc in g.arcs() {
            assert_eq!(arc.probability, 1.0);
        }
        assert_eq!(g.skeleton(), fig1_graph().skeleton());
    }

    #[test]
    fn skeleton_matches_topology() {
        let g = fig1_graph();
        let s = g.skeleton();
        assert_eq!(s.num_arcs(), 8);
        assert!(s.has_arc(0, 2));
        assert!(!s.has_arc(2, 1));
        let into = g.clone().into_skeleton();
        assert_eq!(&into, s);
    }

    #[test]
    fn transpose_preserves_probabilities() {
        let g = fig1_graph();
        let t = g.transpose();
        assert_eq!(t.num_arcs(), g.num_arcs());
        for arc in g.arcs() {
            let p = t.arc_probability(arc.target, arc.source).unwrap();
            assert!((p - arc.probability).abs() < 1e-12);
        }
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn from_digraph_with_probability() {
        let d = DiGraph::from_arcs(3, [(0, 1), (1, 2)]).unwrap();
        let g = UncertainGraph::from_digraph_with_probability(&d, 0.25).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert!((g.arc_probability(0, 1).unwrap() - 0.25).abs() < 1e-12);
    }
}
