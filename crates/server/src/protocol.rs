//! The line-delimited JSON wire protocol and its request handler.
//!
//! One request per line, one response per line, both JSON objects.  The
//! request's `type` field selects the operation and mirrors the engine API:
//!
//! | `type`       | engine entry point                                      |
//! |--------------|---------------------------------------------------------|
//! | `similarity` | [`usim_core::QueryEngine::similarity`]                  |
//! | `profile`    | [`usim_core::QueryEngine::profile`]                     |
//! | `top_k`      | [`usim_core::QueryEngine::batch_top_k_similar_to`]      |
//! | `batch`      | [`usim_core::QueryEngine::batch_similarities`]          |
//! | `update`     | [`usim_core::QueryEngine::apply_updates`]               |
//! | `stats`      | engine metadata (vertices, arcs, epoch, sampler backend, configuration, result-cache counters) |
//! | `metrics`    | Prometheus text exposition of every serving counter (see [`RequestHandler::prometheus_exposition`]) |
//! | `slow_queries` | the slow-query log kept by the stage tracer (empty unless [`RequestHandler::with_tracing`] enabled it) |
//!
//! Vertices are addressed by the graph file's *original labels* (the same
//! labels the `usim` CLI speaks), resolved here against the label table.
//! Every successful response carries `"ok": true` and the update `"epoch"`
//! the answer was computed under — captured under one engine read lock, so
//! clients can detect staleness across interleaved `update` frames.  Every
//! failure is a typed `"ok": false` frame with a stable `code` and a
//! field-precise `message`; malformed input never panics the server or
//! drops the connection.  The full frame-by-frame reference with
//! copy-pasteable examples lives in `docs/PROTOCOL.md`.
//!
//! [`RequestHandler`] is transport-free (a `&str` line in, a JSON line
//! out), so the whole protocol is unit-testable without sockets; the TCP
//! layer in [`crate::server`] only adds framing and threads.
//!
//! All query traffic flows through a [`usim_core::ShardedQueryEngine`] —
//! by default a K=1 router over a [`usim_core::CachedQueryEngine`]: with
//! [`RequestHandler::with_cache`] the server reuses epoch-validated answers
//! for hot pairs (bit-identical to recomputation — the cache can change
//! latency, never a score), and the `stats` frame reports the cache's
//! hit/miss/stale/eviction counters plus a per-shard section.
//! [`RequestHandler::new`] leaves the cache off;
//! [`RequestHandler::sharded`] serves a real K-shard scatter-gather
//! deployment (`usim serve --shards K`), whose answers are — by the
//! sharded engine's determinism contract — byte-identical on the wire to
//! the K=1 server.
//!
//! With [`RequestHandler::with_update_log`] attached, every accepted
//! `update` batch is appended to a durable [`ugraph::UpdateLog`] (synced
//! before the response frame goes out), so a restarted server can replay
//! back to the exact epoch its clients last observed.
//!
//! With [`RequestHandler::with_coalescing`] attached, concurrent
//! `similarity` / `profile` / `top_k` / `batch` requests are collected into
//! single engine batches by the [`crate::coalesce::Coalescer`] — answers
//! stay byte-identical (the engine's batch determinism contract), only
//! throughput changes.  The handler also counts requests per type and
//! surfaces those counters — together with the transport's latency
//! histogram and the coalescer's batching counters — in the `stats`
//! frame's `latency` and `coalescer` objects.

use crate::coalesce::{CoalesceError, CoalesceOptions, Coalescer};
use crate::metrics::{RequestKind, ServeMetrics};
use bytes::{BufMut, BytesMut};
use parking_lot::Mutex;
use serde::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ugraph::{GraphUpdate, UpdateError, UpdateLog, VertexId};
use usim_core::{
    CachedQueryEngine, CoalescedAnswer, CoalescedQuery, QueryError, ShardedQueryEngine,
    SharedQueryEngine,
};
use usim_obs::{time_stage, walk_metrics, PromWriter, Stage, StageTrace, Tracer};

/// Default cap on `batch` pairs, `top_k` candidates and `update` batches —
/// a bound on per-request memory and lock-hold time, not a protocol limit.
pub const DEFAULT_MAX_BATCH: usize = 65_536;

/// Stable machine-readable error codes carried by `"ok": false` frames.
///
/// The set is part of the wire contract (documented in `docs/PROTOCOL.md`);
/// messages are for humans and may change, codes may not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a JSON object, or its `type` field is missing or not
    /// a string.
    MalformedFrame,
    /// The `type` field names no known request type.
    UnknownRequestType,
    /// A field is missing, has the wrong JSON type, or is not accepted by
    /// this request type.
    BadField,
    /// A vertex label does not appear in the graph.
    UnknownVertex,
    /// A `batch`, `top_k` or `update` request exceeded the server's
    /// configured maximum batch size.
    OversizedBatch,
    /// The engine rejected an update batch ([`ugraph::UpdateError`]); the
    /// graph is unchanged.
    UpdateRejected,
    /// The engine rejected a query ([`usim_core::QueryError`]).
    QueryRejected,
    /// An update was applied in memory but could not be appended to the
    /// durable update log: answers already reflect it, a restart would
    /// not.  Clients should treat the server as needing operator
    /// attention.
    LogFailed,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::UnknownRequestType => "unknown_request_type",
            ErrorCode::BadField => "bad_field",
            ErrorCode::UnknownVertex => "unknown_vertex",
            ErrorCode::OversizedBatch => "oversized_batch",
            ErrorCode::UpdateRejected => "update_rejected",
            ErrorCode::QueryRejected => "query_rejected",
            ErrorCode::LogFailed => "log_failed",
        }
    }
}

/// A response line ready to write back, tagged with whether it reports an
/// error (for server statistics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The serialised JSON object, without the trailing newline.
    pub json: String,
    /// Whether this is an `"ok": false` frame.
    pub is_error: bool,
}

/// What the transport needs to know about a response that
/// [`RequestHandler::handle_line_into`] wrote straight into its buffer
/// (the allocation-free sibling of [`Frame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseMeta {
    /// Whether the written frame is an `"ok": false` frame.
    pub is_error: bool,
}

/// A request rejection: a stable code plus a human-readable, field-precise
/// message.  Internal to handling; it leaves the handler as an error
/// [`Frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Reject {
    code: ErrorCode,
    message: String,
}

impl Reject {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Reject {
            code,
            message: message.into(),
        }
    }
}

type Entries = [(String, Value)];

/// The transport-free request handler: owns the shared engine, the label
/// table, and the batch-size limit.
///
/// # Example
///
/// ```
/// use ugraph::UncertainGraphBuilder;
/// use usim_core::{SharedQueryEngine, SimRankConfig};
/// use usim_server::RequestHandler;
///
/// let g = UncertainGraphBuilder::new(3)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .build()
///     .unwrap();
/// let engine = SharedQueryEngine::new(&g, SimRankConfig::default().with_samples(100));
/// let handler = RequestHandler::new(engine, (0..3).collect(), 1024);
///
/// let frame = handler
///     .handle_line(r#"{"type":"similarity","source":0,"target":1}"#)
///     .unwrap();
/// assert!(!frame.is_error);
/// assert!(frame.json.contains("\"ok\":true"));
/// assert!(frame.json.contains("\"epoch\":0"));
///
/// // Malformed frames come back typed, never as a panic.
/// let frame = handler.handle_line("{oops").unwrap();
/// assert!(frame.is_error);
/// assert!(frame.json.contains("malformed_frame"));
/// ```
#[derive(Debug)]
pub struct RequestHandler {
    engine: ShardedQueryEngine,
    labels: Vec<u64>,
    index: HashMap<u64, VertexId>,
    max_batch: usize,
    /// When present, every accepted `update` batch is appended here before
    /// the response frame is written, so a restarted server can replay to
    /// the epoch its clients last saw.  The mutex is held across
    /// apply + append: log order always equals epoch order.
    update_log: Option<Mutex<UpdateLog>>,
    /// Per-request-type counters, the coalescer's batching counters, and
    /// the latency histogram the transport records into.
    metrics: Arc<ServeMetrics>,
    /// When present, query traffic is batched across connections (updates
    /// and stats always bypass it — updates need the write gate, stats is
    /// metadata).
    coalescer: Option<Coalescer>,
    /// When present, a deterministic fraction of requests carries a
    /// [`StageTrace`] through the serving stack; finished traces feed the
    /// per-stage histograms and the slow-query log.  Answers are
    /// bit-identical with tracing on or off — instrumentation only reads
    /// clocks, never RNG streams.
    tracer: Option<Tracer>,
}

impl RequestHandler {
    /// Builds a handler serving `engine`, speaking the given label table
    /// (`labels[v]` is the wire label of engine vertex `v`, exactly like
    /// the CLI's loaded-graph table).  The result cache is off; use
    /// [`RequestHandler::with_cache`] to enable it.
    ///
    /// # Panics
    ///
    /// Panics when the label table length does not match the engine's
    /// vertex count, or when `max_batch` is zero.
    pub fn new(engine: SharedQueryEngine, labels: Vec<u64>, max_batch: usize) -> Self {
        RequestHandler::with_cache(engine, labels, max_batch, 0)
    }

    /// Like [`RequestHandler::new`] with an epoch-validated result cache
    /// bounded to `cache_capacity` entries in front of the engine
    /// (`0` disables caching).  Cached answers are bit-identical to
    /// uncached ones — see [`usim_core::CachedQueryEngine`] — and the
    /// cache's hit/miss/stale/eviction counters are surfaced by the
    /// `stats` frame.
    pub fn with_cache(
        engine: SharedQueryEngine,
        labels: Vec<u64>,
        max_batch: usize,
        cache_capacity: usize,
    ) -> Self {
        RequestHandler::sharded(
            ShardedQueryEngine::single(CachedQueryEngine::new(engine, cache_capacity)),
            labels,
            max_batch,
        )
    }

    /// The general constructor: serves any [`ShardedQueryEngine`] — K=1
    /// wrapping an existing stack ([`ShardedQueryEngine::single`], what
    /// [`RequestHandler::new`] / [`RequestHandler::with_cache`] build) or a
    /// real K-shard scatter-gather deployment.  Answers are bit-identical
    /// either way; only the `stats` frame's shard section differs.
    ///
    /// # Panics
    ///
    /// Panics when the label table length does not match the engine's
    /// vertex count, or when `max_batch` is zero.
    pub fn sharded(engine: ShardedQueryEngine, labels: Vec<u64>, max_batch: usize) -> Self {
        assert_eq!(
            labels.len(),
            engine.num_vertices(),
            "label table must cover every vertex"
        );
        assert!(max_batch > 0, "max_batch must be positive");
        let index = labels
            .iter()
            .enumerate()
            .map(|(v, &label)| (label, v as VertexId))
            .collect();
        RequestHandler {
            engine,
            labels,
            index,
            max_batch,
            update_log: None,
            metrics: Arc::new(ServeMetrics::new()),
            coalescer: None,
            tracer: None,
        }
    }

    /// Attaches a durable [`UpdateLog`]: every accepted `update` batch is
    /// appended (and synced) before its response frame goes out.  The log
    /// must already be replayed into the engine — [`UpdateLog::open`]
    /// returns the logged rounds precisely so the boot path can do that
    /// (see `usim serve --update-log`).
    pub fn with_update_log(mut self, log: UpdateLog) -> Self {
        self.update_log = Some(Mutex::new(log));
        self
    }

    /// Enables request coalescing: concurrent `similarity` / `profile` /
    /// `top_k` / `batch` requests are collected (up to `options.window`, or
    /// until `options.cap` are pending) and dispatched as **one** engine
    /// batch through the intra-batch-dedup path.  Answers are byte-identical
    /// to the uncoalesced handler — see [`crate::coalesce`] for why — and
    /// every response still carries the epoch its batch was computed under.
    pub fn with_coalescing(mut self, options: CoalesceOptions) -> Self {
        self.coalescer = Some(Coalescer::new(options, Arc::clone(&self.metrics)));
        self
    }

    /// Enables sampled per-query stage tracing: every `round(1/sample_rate)`-th
    /// request carries a [`StageTrace`] through parse, coalescer,
    /// cache, shard routing, sampling, merge and serialisation; finished
    /// traces feed per-stage latency histograms (the `stats` frame's
    /// `tracing.stages` section) and a slow-query log keeping the
    /// `slow_log_capacity` slowest traced requests (the `slow_queries`
    /// frame).  A rate ≤ 0 builds the tracer disabled.
    ///
    /// Tracing never changes an answer: instrumentation reads clocks, never
    /// the engine's RNG streams, so responses are byte-identical with
    /// tracing on or off.
    pub fn with_tracing(mut self, sample_rate: f64, slow_log_capacity: usize) -> Self {
        self.tracer = Some(Tracer::new(sample_rate, slow_log_capacity));
        self
    }

    /// Turns on the process-global walk/engine counters
    /// ([`usim_obs::walk_metrics`]): walks, steps per sampler backend,
    /// deaths, meetings, overlay patched-vs-base row reads, lazy row
    /// instantiations, arena invalidations and compactions — surfaced by
    /// the `stats` frame's `walks` section and the Prometheus exposition.
    pub fn with_walk_metrics(self) -> Self {
        walk_metrics().set_enabled(true);
        self
    }

    /// The serving metrics this handler feeds (the transport records
    /// latencies into the same object, so one `stats` frame tells the whole
    /// story).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The coalescer, when [`RequestHandler::with_coalescing`] enabled one.
    pub fn coalescer(&self) -> Option<&Coalescer> {
        self.coalescer.as_ref()
    }

    /// The stage tracer, when [`RequestHandler::with_tracing`] attached one.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The shared engine behind shard 0 (every shard replica answers
    /// identically; this is the observability handle).
    pub fn engine(&self) -> &SharedQueryEngine {
        self.engine.shard_engine(0).shared()
    }

    /// Shard 0's caching wrapper (the whole stack under K=1).
    pub fn cached_engine(&self) -> &CachedQueryEngine {
        self.engine.shard_engine(0)
    }

    /// The scatter-gather router the handler answers through.
    pub fn sharded_engine(&self) -> &ShardedQueryEngine {
        &self.engine
    }

    /// The configured batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Handles one wire line.  Returns `None` for blank lines (keep-alives
    /// are free); otherwise always returns exactly one response frame.
    pub fn handle_line(&self, line: &str) -> Option<Frame> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let trace = self.tracer.as_ref().and_then(Tracer::begin);
        let started = trace.as_ref().map(|_| Instant::now());
        let mut kind = "invalid";
        let (value, is_error) = self.dispatch(line, trace.as_ref(), &mut kind);
        let json = time_stage(trace.as_ref(), Stage::Serialize, || {
            serde_json::to_string(&value).expect("response values are finite")
        });
        self.finish_trace(trace, kind, started, None);
        Some(Frame { json, is_error })
    }

    /// Like [`RequestHandler::handle_line`], but serialises the response
    /// (newline included) straight into `out` — no per-request `String`.
    /// The bytes appended are exactly `handle_line(line).json + "\n"`
    /// (same serialiser, same field order), so the wire format is
    /// indistinguishable; only the allocation profile changes.
    pub fn handle_line_into(&self, line: &str, out: &mut BytesMut) -> Option<ResponseMeta> {
        self.handle_line_into_traced(line, out, None)
    }

    /// Like [`RequestHandler::handle_line_into`], additionally crediting
    /// `queue_wait` (the transport's accept-to-worker-pickup delay, which
    /// only the transport can measure) to this frame's trace when the
    /// frame is sampled.  The wait also extends the trace's total, so the
    /// per-request stage sum stays within the end-to-end latency sample
    /// the transport records for the same frame.
    pub fn handle_line_into_traced(
        &self,
        line: &str,
        out: &mut BytesMut,
        queue_wait: Option<Duration>,
    ) -> Option<ResponseMeta> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let trace = self.tracer.as_ref().and_then(Tracer::begin);
        let started = trace.as_ref().map(|_| Instant::now());
        let mut kind = "invalid";
        let (value, is_error) = self.dispatch(line, trace.as_ref(), &mut kind);
        time_stage(trace.as_ref(), Stage::Serialize, || {
            serde_json::to_writer(&mut *out, &value).expect("response values are finite");
            out.put_slice(b"\n");
        });
        self.finish_trace(trace, kind, started, queue_wait);
        Some(ResponseMeta { is_error })
    }

    /// Folds a finished trace into the tracer (no-op for un-sampled
    /// requests).
    fn finish_trace(
        &self,
        trace: Option<StageTrace>,
        kind: &'static str,
        started: Option<Instant>,
        queue_wait: Option<Duration>,
    ) {
        let (Some(tracer), Some(trace), Some(started)) = (self.tracer.as_ref(), trace, started)
        else {
            return;
        };
        let mut total = started.elapsed();
        if let Some(wait) = queue_wait {
            trace.add(Stage::QueueWait, wait);
            total += wait;
        }
        tracer.finish(&trace, kind, total);
    }

    /// The shared core of both entry points: the response as a JSON tree
    /// plus its error flag; `kind_out` is set to the resolved request type
    /// (for the slow-query log) as soon as it is known.
    fn dispatch(
        &self,
        line: &str,
        trace: Option<&StageTrace>,
        kind_out: &mut &'static str,
    ) -> (Value, bool) {
        match self.handle(line, trace, kind_out) {
            Ok(value) => (value, false),
            Err(reject) => {
                // Lines that never resolved to a known request type count
                // under the `invalid` kind; field-level failures of a known
                // type were already counted under that type at dispatch.
                if matches!(
                    reject.code,
                    ErrorCode::MalformedFrame | ErrorCode::UnknownRequestType
                ) {
                    self.metrics.count_request(RequestKind::Invalid);
                }
                (error_value(&reject), true)
            }
        }
    }

    fn handle(
        &self,
        line: &str,
        trace: Option<&StageTrace>,
        kind_out: &mut &'static str,
    ) -> Result<Value, Reject> {
        let value: Value = time_stage(trace, Stage::Parse, || serde_json::from_str(line))
            .map_err(|e| Reject::new(ErrorCode::MalformedFrame, format!("invalid JSON: {e}")))?;
        let entries = value.as_map().ok_or_else(|| {
            Reject::new(
                ErrorCode::MalformedFrame,
                format!("expected a JSON object, found {}", value.kind()),
            )
        })?;
        let rtype = match field(entries, "type") {
            Some(Value::Str(s)) => s.as_str(),
            Some(other) => {
                return Err(Reject::new(
                    ErrorCode::MalformedFrame,
                    format!("field `type`: expected a string, found {}", other.kind()),
                ))
            }
            None => {
                return Err(Reject::new(
                    ErrorCode::MalformedFrame,
                    "missing field `type`",
                ))
            }
        };
        let kind = match rtype {
            "similarity" => RequestKind::Similarity,
            "profile" => RequestKind::Profile,
            "top_k" => RequestKind::TopK,
            "batch" => RequestKind::Batch,
            "update" => RequestKind::Update,
            "stats" => RequestKind::Stats,
            "metrics" => RequestKind::Metrics,
            "slow_queries" => RequestKind::SlowQueries,
            other => {
                return Err(Reject::new(
                    ErrorCode::UnknownRequestType,
                    format!(
                        "unknown request type {other:?}; expected one of \
                         \"similarity\", \"profile\", \"top_k\", \"batch\", \"update\", \
                         \"stats\", \"metrics\", \"slow_queries\""
                    ),
                ))
            }
        };
        *kind_out = kind.as_str();
        // Counted at dispatch, before the handler runs: a stats frame
        // therefore includes itself, and field-level rejections still count
        // under the type the client named.
        self.metrics.count_request(kind);
        match kind {
            RequestKind::Similarity => self.similarity(entries, trace),
            RequestKind::Profile => self.profile(entries, trace),
            RequestKind::TopK => self.top_k(entries, trace),
            RequestKind::Batch => self.batch(entries, trace),
            RequestKind::Update => self.update(entries),
            RequestKind::Stats => self.stats(entries),
            RequestKind::Metrics => self.metrics_frame(entries),
            RequestKind::SlowQueries => self.slow_queries(entries),
            RequestKind::Invalid => unreachable!("invalid kinds never dispatch"),
        }
    }

    // -- request type handlers ---------------------------------------------

    fn similarity(&self, entries: &Entries, trace: Option<&StageTrace>) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "similarity", &["source", "target"])?;
        let u = self.resolve(require_label(entries, "source")?)?;
        let v = self.resolve(require_label(entries, "target")?)?;
        let (epoch, score) = if self.coalescer.is_some() {
            self.coalesced(
                CoalescedQuery::Similarity(u, v),
                trace,
                |answer| match answer {
                    CoalescedAnswer::Similarity(score) => Some(score),
                    _ => None,
                },
            )?
        } else {
            self.engine
                .similarity_with_trace(u, v, trace)
                .map_err(query_rejected)?
        };
        Ok(ok_value(
            "similarity",
            epoch,
            vec![("score".into(), Value::Float(score))],
        ))
    }

    fn profile(&self, entries: &Entries, trace: Option<&StageTrace>) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "profile", &["source", "target"])?;
        let u = self.resolve(require_label(entries, "source")?)?;
        let v = self.resolve(require_label(entries, "target")?)?;
        let (epoch, profile) = if self.coalescer.is_some() {
            self.coalesced(
                CoalescedQuery::Profile(u, v),
                trace,
                |answer| match answer {
                    CoalescedAnswer::Profile(profile) => Some(profile),
                    _ => None,
                },
            )?
        } else {
            self.engine
                .profile_with_trace(u, v, trace)
                .map_err(query_rejected)?
        };
        Ok(ok_value(
            "profile",
            epoch,
            vec![
                (
                    "meeting".into(),
                    Value::Seq(profile.meeting.iter().map(|&m| Value::Float(m)).collect()),
                ),
                ("decay".into(), Value::Float(profile.decay)),
                ("score".into(), Value::Float(profile.score())),
            ],
        ))
    }

    fn top_k(&self, entries: &Entries, trace: Option<&StageTrace>) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "top_k", &["source", "k", "candidates"])?;
        let source = self.resolve(require_label(entries, "source")?)?;
        let k = require_usize(entries, "k")?;
        let candidates: Vec<VertexId> = match field(entries, "candidates") {
            // Default: rank every vertex, exactly like `usim topk` — but
            // still under the batch cap, which exists to bound per-request
            // work and read-lock hold time.
            None => {
                self.check_batch_len(self.labels.len(), "the implicit all-vertices candidate set")?;
                (0..self.labels.len() as VertexId).collect()
            }
            Some(value) => {
                let items = expect_seq(value, "candidates")?;
                self.check_batch_len(items.len(), "candidates")?;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| self.resolve(expect_label(item, &format!("candidates[{i}]"))?))
                    .collect::<Result<_, _>>()?
            }
        };
        let (epoch, ranked) = if self.coalescer.is_some() {
            self.coalesced(
                CoalescedQuery::TopK {
                    query: source,
                    candidates,
                    k,
                },
                trace,
                |answer| match answer {
                    CoalescedAnswer::TopK(ranked) => Some(ranked),
                    _ => None,
                },
            )?
        } else {
            self.engine
                .batch_top_k_similar_to_with_trace(source, &candidates, k, trace)
                .map_err(query_rejected)?
        };
        let results = ranked
            .into_iter()
            .map(|scored| {
                Value::Map(vec![
                    (
                        "vertex".into(),
                        Value::Uint(self.labels[scored.vertex as usize]),
                    ),
                    ("score".into(), Value::Float(scored.score)),
                ])
            })
            .collect();
        Ok(ok_value(
            "top_k",
            epoch,
            vec![("results".into(), Value::Seq(results))],
        ))
    }

    fn batch(&self, entries: &Entries, trace: Option<&StageTrace>) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "batch", &["pairs"])?;
        let items = expect_seq(require_field(entries, "pairs")?, "pairs")?;
        self.check_batch_len(items.len(), "pairs")?;
        let mut pairs = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let pair = expect_seq(item, &format!("pairs[{i}]"))?;
            let [a, b] = pair else {
                return Err(Reject::new(
                    ErrorCode::BadField,
                    format!(
                        "field `pairs[{i}]`: expected a [source, target] pair, \
                         got {} elements",
                        pair.len()
                    ),
                ));
            };
            pairs.push((
                self.resolve(expect_label(a, &format!("pairs[{i}][0]"))?)?,
                self.resolve(expect_label(b, &format!("pairs[{i}][1]"))?)?,
            ));
        }
        let (epoch, scores) = if self.coalescer.is_some() {
            self.coalesced(
                CoalescedQuery::Scores(pairs),
                trace,
                |answer| match answer {
                    CoalescedAnswer::Scores(scores) => Some(scores),
                    _ => None,
                },
            )?
        } else {
            self.engine
                .batch_similarities_with_trace(&pairs, trace)
                .map_err(query_rejected)?
        };
        Ok(ok_value(
            "batch",
            epoch,
            vec![(
                "scores".into(),
                Value::Seq(scores.into_iter().map(Value::Float).collect()),
            )],
        ))
    }

    fn update(&self, entries: &Entries) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "update", &["updates"])?;
        let items = expect_seq(require_field(entries, "updates")?, "updates")?;
        self.check_batch_len(items.len(), "updates")?;
        let mut updates = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            updates.push(self.parse_update(item, i)?);
        }
        // Summary and post-update epoch are captured under one write-lock
        // acquisition: a concurrent update committing in between could
        // otherwise stamp this summary with a later update's epoch.  When a
        // durable log is attached its mutex is taken *first* and held across
        // apply + append, so the log's round order always equals the
        // engine's epoch order.
        let mut log = self.update_log.as_ref().map(Mutex::lock);
        let (summary, epoch) = self
            .engine
            .apply_updates(&updates)
            .map_err(|e| Reject::new(ErrorCode::UpdateRejected, self.describe_update_error(&e)))?;
        if let Some(log) = log.as_mut() {
            log.append_round(&updates).map_err(|e| {
                Reject::new(
                    ErrorCode::LogFailed,
                    format!(
                        "update applied in memory (epoch {epoch}) but could not be \
                         appended to the update log: {e}"
                    ),
                )
            })?;
        }
        Ok(ok_value(
            "update",
            epoch,
            vec![
                ("inserted".into(), Value::Uint(summary.inserted as u64)),
                ("deleted".into(), Value::Uint(summary.deleted as u64)),
                ("reweighted".into(), Value::Uint(summary.reweighted as u64)),
                ("arcs".into(), Value::Uint(summary.num_arcs as u64)),
                ("compacted".into(), Value::Bool(summary.compacted)),
            ],
        ))
    }

    fn stats(&self, entries: &Entries) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "stats", &[])?;
        let (epoch, vertices, arcs, config) = self.engine.with_read(|e| {
            (
                e.update_epoch(),
                e.num_vertices(),
                e.num_arcs(),
                *e.config(),
            )
        });
        let sampler = config.sampler;
        let config = serde::to_value(&config).map_err(|e| {
            Reject::new(
                ErrorCode::QueryRejected,
                format!("cannot serialise the engine configuration: {e}"),
            )
        })?;
        // Cache counters are lock-free atomics; the snapshot is taken
        // outside the engine lock (an observability frame, not a
        // linearisable read).
        let mut cache = vec![
            (
                "enabled".to_string(),
                Value::Bool(self.engine.cache_enabled()),
            ),
            (
                "capacity".to_string(),
                Value::Uint(self.engine.cache_capacity() as u64),
            ),
        ];
        if let Some(stats) = self.engine.cache_stats() {
            cache.extend([
                ("entries".to_string(), Value::Uint(stats.entries as u64)),
                ("hits".to_string(), Value::Uint(stats.hits)),
                ("misses".to_string(), Value::Uint(stats.misses)),
                ("stale".to_string(), Value::Uint(stats.stale)),
                ("evictions".to_string(), Value::Uint(stats.evictions)),
                ("insertions".to_string(), Value::Uint(stats.insertions)),
                ("survived".to_string(), Value::Uint(stats.survived)),
                ("killed".to_string(), Value::Uint(stats.killed)),
            ]);
        }
        // Per-shard section: vertex range, pinned worker threads and the
        // shard's own cache counters (also lock-free snapshots).
        let shards = self
            .engine
            .shard_infos()
            .into_iter()
            .map(|info| {
                let mut entry = vec![
                    ("index".to_string(), Value::Uint(info.index as u64)),
                    ("start".to_string(), Value::Uint(info.start as u64)),
                    ("end".to_string(), Value::Uint(info.end as u64)),
                    ("threads".to_string(), Value::Uint(info.threads as u64)),
                ];
                if let Some(stats) = info.cache {
                    entry.push((
                        "cache".to_string(),
                        Value::Map(vec![
                            ("entries".to_string(), Value::Uint(stats.entries as u64)),
                            ("hits".to_string(), Value::Uint(stats.hits)),
                            ("misses".to_string(), Value::Uint(stats.misses)),
                            ("stale".to_string(), Value::Uint(stats.stale)),
                            ("evictions".to_string(), Value::Uint(stats.evictions)),
                            ("insertions".to_string(), Value::Uint(stats.insertions)),
                            ("survived".to_string(), Value::Uint(stats.survived)),
                            ("killed".to_string(), Value::Uint(stats.killed)),
                        ]),
                    ));
                }
                Value::Map(entry)
            })
            .collect();
        // Latency and coalescer sections: lock-free counter snapshots, like
        // the cache section above.  Fields are always present (zeroed when
        // the feature is off) so dashboards need no schema branching.
        let histogram = self.metrics.latency();
        let requests = RequestKind::ALL
            .iter()
            .map(|&kind| {
                (
                    kind.as_str().to_string(),
                    Value::Uint(self.metrics.requests_of(kind)),
                )
            })
            .collect();
        let latency = vec![
            ("count".to_string(), Value::Uint(histogram.count())),
            (
                "p50_us".to_string(),
                Value::Uint(histogram.quantile_upper_bound_us(0.50)),
            ),
            (
                "p90_us".to_string(),
                Value::Uint(histogram.quantile_upper_bound_us(0.90)),
            ),
            (
                "p99_us".to_string(),
                Value::Uint(histogram.quantile_upper_bound_us(0.99)),
            ),
            ("requests".to_string(), Value::Map(requests)),
        ];
        let coalescer_options = self.coalescer.as_ref().map(Coalescer::options);
        let snapshot = self.metrics.coalescer_snapshot();
        let coalescer = vec![
            (
                "enabled".to_string(),
                Value::Bool(coalescer_options.is_some()),
            ),
            (
                "window_us".to_string(),
                Value::Uint(
                    coalescer_options
                        .map(|o| u64::try_from(o.window.as_micros()).unwrap_or(u64::MAX))
                        .unwrap_or(0),
                ),
            ),
            (
                "cap".to_string(),
                Value::Uint(coalescer_options.map(|o| o.cap as u64).unwrap_or(0)),
            ),
            ("requests".to_string(), Value::Uint(snapshot.requests)),
            ("batches".to_string(), Value::Uint(snapshot.batches)),
            (
                "mean_occupancy".to_string(),
                Value::Float(snapshot.mean_occupancy),
            ),
            (
                "window_flushes".to_string(),
                Value::Uint(snapshot.window_flushes),
            ),
            ("cap_flushes".to_string(), Value::Uint(snapshot.cap_flushes)),
        ];
        // Tracing and walk-counter sections: like `latency` and `coalescer`,
        // every field is always present (zeroed when the feature is off).
        let tracer = self.tracer.as_ref();
        let stages = match tracer {
            Some(tracer) => tracer
                .stage_snapshots()
                .iter()
                .map(|snap| {
                    Value::Map(vec![
                        (
                            "stage".to_string(),
                            Value::Str(snap.stage.as_str().to_string()),
                        ),
                        ("count".to_string(), Value::Uint(snap.count)),
                        ("p50_us".to_string(), Value::Uint(snap.p50_us)),
                        ("p99_us".to_string(), Value::Uint(snap.p99_us)),
                    ])
                })
                .collect(),
            None => Stage::ALL
                .iter()
                .map(|stage| {
                    Value::Map(vec![
                        ("stage".to_string(), Value::Str(stage.as_str().to_string())),
                        ("count".to_string(), Value::Uint(0)),
                        ("p50_us".to_string(), Value::Uint(0)),
                        ("p99_us".to_string(), Value::Uint(0)),
                    ])
                })
                .collect(),
        };
        let tracing = vec![
            (
                "enabled".to_string(),
                Value::Bool(tracer.is_some_and(Tracer::enabled)),
            ),
            (
                "sample_every".to_string(),
                Value::Uint(tracer.map(Tracer::sample_every).unwrap_or(0)),
            ),
            (
                "traced".to_string(),
                Value::Uint(tracer.map(Tracer::traced).unwrap_or(0)),
            ),
            ("stages".to_string(), Value::Seq(stages)),
        ];
        let walk = walk_metrics();
        let walk_snapshot = walk.snapshot();
        let walks = vec![
            ("enabled".to_string(), Value::Bool(walk.enabled())),
            ("walks".to_string(), Value::Uint(walk_snapshot.walks)),
            (
                "steps_legacy".to_string(),
                Value::Uint(walk_snapshot.steps_legacy),
            ),
            (
                "steps_alias".to_string(),
                Value::Uint(walk_snapshot.steps_alias),
            ),
            ("deaths".to_string(), Value::Uint(walk_snapshot.deaths)),
            ("meetings".to_string(), Value::Uint(walk_snapshot.meetings)),
            (
                "rows_patched".to_string(),
                Value::Uint(walk_snapshot.rows_patched),
            ),
            (
                "rows_base".to_string(),
                Value::Uint(walk_snapshot.rows_base),
            ),
            (
                "rows_instantiated".to_string(),
                Value::Uint(walk_snapshot.rows_instantiated),
            ),
            (
                "arena_invalidations".to_string(),
                Value::Uint(walk_snapshot.arena_invalidations),
            ),
            (
                "compactions".to_string(),
                Value::Uint(walk_snapshot.compactions),
            ),
        ];
        Ok(ok_value(
            "stats",
            epoch,
            vec![
                ("vertices".into(), Value::Uint(vertices as u64)),
                ("arcs".into(), Value::Uint(arcs as u64)),
                ("sampler".into(), Value::Str(sampler.as_str().to_string())),
                ("max_batch".into(), Value::Uint(self.max_batch as u64)),
                (
                    "shard_count".into(),
                    Value::Uint(self.engine.num_shards() as u64),
                ),
                ("shards".into(), Value::Seq(shards)),
                ("cache".into(), Value::Map(cache)),
                ("latency".into(), Value::Map(latency)),
                ("coalescer".into(), Value::Map(coalescer)),
                ("tracing".into(), Value::Map(tracing)),
                ("walks".into(), Value::Map(walks)),
                ("config".into(), config),
            ],
        ))
    }

    /// Serves the `metrics` frame: the Prometheus exposition body wrapped
    /// in a JSON envelope (scrapers preferring plain HTTP use
    /// `usim serve --metrics-port`, which serves the identical body).
    fn metrics_frame(&self, entries: &Entries) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "metrics", &[])?;
        let epoch = self.engine.update_epoch();
        Ok(ok_value(
            "metrics",
            epoch,
            vec![("body".into(), Value::Str(self.prometheus_exposition()))],
        ))
    }

    /// Serves the `slow_queries` frame: the tracer's ring of slowest traced
    /// requests, slowest first (empty when tracing is off).
    fn slow_queries(&self, entries: &Entries) -> Result<Value, Reject> {
        reject_unknown_fields(entries, "slow_queries", &[])?;
        let epoch = self.engine.update_epoch();
        let slow = match &self.tracer {
            Some(tracer) => tracer
                .slow_log()
                .snapshot()
                .into_iter()
                .map(|entry| {
                    let stages = Stage::ALL
                        .iter()
                        .zip(entry.stages_us.iter())
                        .map(|(stage, &us)| (stage.as_str().to_string(), Value::Uint(us)))
                        .collect();
                    Value::Map(vec![
                        ("trace_id".to_string(), Value::Uint(entry.trace_id)),
                        ("kind".to_string(), Value::Str(entry.kind.to_string())),
                        ("total_us".to_string(), Value::Uint(entry.total_us)),
                        ("stages_us".to_string(), Value::Map(stages)),
                    ])
                })
                .collect(),
            None => Vec::new(),
        };
        Ok(ok_value(
            "slow_queries",
            epoch,
            vec![
                (
                    "tracing".into(),
                    Value::Bool(self.tracer.as_ref().is_some_and(|t| t.enabled())),
                ),
                ("entries".into(), Value::Seq(slow)),
            ],
        ))
    }

    /// Renders every serving counter as a Prometheus text exposition
    /// (format 0.0.4): request counters, the end-to-end latency histogram,
    /// coalescer and result-cache counters, the walk/engine counters, and —
    /// when tracing is enabled — one histogram series per pipeline stage.
    /// Served by the `metrics` frame and `usim serve --metrics-port`.
    pub fn prometheus_exposition(&self) -> String {
        let mut w = PromWriter::new();
        w.gauge(
            "usim_epoch",
            "Update epoch the engine is serving at.",
            self.engine.update_epoch() as f64,
        );
        w.gauge(
            "usim_vertices",
            "Vertices in the served graph.",
            self.engine.num_vertices() as f64,
        );
        w.gauge(
            "usim_arcs",
            "Arcs in the served graph.",
            self.engine.num_arcs() as f64,
        );
        w.gauge(
            "usim_shards",
            "Shards behind the scatter-gather router.",
            self.engine.num_shards() as f64,
        );
        let kinds: Vec<(&str, u64)> = RequestKind::ALL
            .iter()
            .map(|&kind| (kind.as_str(), self.metrics.requests_of(kind)))
            .collect();
        w.counter_family(
            "usim_requests_total",
            "Requests handled, by wire request type.",
            "kind",
            &kinds,
        );
        w.latency_histogram(
            "usim_request_duration_seconds",
            "End-to-end request latency (read to flush; sum approximated from bucket bounds).",
            None,
            self.metrics.latency(),
        );
        let coalescer = self.metrics.coalescer_snapshot();
        w.counter(
            "usim_coalescer_requests_total",
            "Requests served through the coalescer.",
            coalescer.requests,
        );
        w.counter_family(
            "usim_coalescer_batches_total",
            "Coalesced engine batches, by flush reason.",
            "reason",
            &[
                ("window", coalescer.window_flushes),
                ("cap", coalescer.cap_flushes),
            ],
        );
        if let Some(stats) = self.engine.cache_stats() {
            w.gauge(
                "usim_cache_entries",
                "Live result-cache entries across shards.",
                stats.entries as f64,
            );
            w.counter_family(
                "usim_cache_events_total",
                "Result-cache events across shards.",
                "event",
                &[
                    ("hit", stats.hits),
                    ("miss", stats.misses),
                    ("stale", stats.stale),
                    ("eviction", stats.evictions),
                    ("insertion", stats.insertions),
                    ("survived", stats.survived),
                    ("killed", stats.killed),
                ],
            );
        }
        let walk = walk_metrics().snapshot();
        w.counter(
            "usim_walks_total",
            "Random walks simulated (two per sampled pair).",
            walk.walks,
        );
        w.counter_family(
            "usim_walk_steps_total",
            "Walk steps taken, by sampler backend.",
            "backend",
            &[("legacy", walk.steps_legacy), ("alias", walk.steps_alias)],
        );
        w.counter(
            "usim_walk_deaths_total",
            "Walks that died before the horizon.",
            walk.deaths,
        );
        w.counter(
            "usim_walk_meetings_total",
            "First-meeting events between paired walks.",
            walk.meetings,
        );
        w.counter_family(
            "usim_walk_row_reads_total",
            "Adjacency-row reads, by which layer served them.",
            "source",
            &[("patched", walk.rows_patched), ("base", walk.rows_base)],
        );
        w.counter(
            "usim_rows_instantiated_total",
            "Possible-world rows lazily instantiated by the legacy sampler.",
            walk.rows_instantiated,
        );
        w.counter(
            "usim_arena_invalidations_total",
            "Walk-arena invalidations after update epochs.",
            walk.arena_invalidations,
        );
        w.counter(
            "usim_compactions_total",
            "Delta-overlay compactions into a fresh CSR base.",
            walk.compactions,
        );
        if let Some(tracer) = &self.tracer {
            w.counter(
                "usim_traced_requests_total",
                "Requests that carried a stage trace.",
                tracer.traced(),
            );
            w.histogram_family(
                "usim_stage_duration_seconds",
                "Per-stage time of traced requests (sum approximated from bucket bounds).",
            );
            for stage in Stage::ALL {
                w.latency_histogram_series(
                    "usim_stage_duration_seconds",
                    Some(("stage", stage.as_str())),
                    tracer.stage_histogram(stage),
                );
            }
        }
        w.finish()
    }

    /// Routes one query through the coalescer (the caller checked it is
    /// enabled) and narrows the answer back to the expected variant.
    fn coalesced<T>(
        &self,
        query: CoalescedQuery,
        trace: Option<&StageTrace>,
        narrow: impl FnOnce(CoalescedAnswer) -> Option<T>,
    ) -> Result<(u64, T), Reject> {
        let coalescer = self
            .coalescer
            .as_ref()
            .expect("coalesced() is only called when coalescing is enabled");
        match coalescer.submit(&self.engine, query, trace) {
            // The engine pairs every slot with its own answer variant, so a
            // mismatch cannot happen; reject rather than panic regardless —
            // a server bug must never take the process down.
            Ok((epoch, answer)) => narrow(answer).map(|value| (epoch, value)).ok_or_else(|| {
                Reject::new(
                    ErrorCode::QueryRejected,
                    "internal error: coalesced answer kind mismatch",
                )
            }),
            Err(CoalesceError::Query(error)) => Err(query_rejected(error)),
            Err(delivery @ CoalesceError::Delivery) => {
                Err(Reject::new(ErrorCode::QueryRejected, delivery.to_string()))
            }
        }
    }

    // -- helpers -----------------------------------------------------------

    fn resolve(&self, label: u64) -> Result<VertexId, Reject> {
        self.index.get(&label).copied().ok_or_else(|| {
            Reject::new(
                ErrorCode::UnknownVertex,
                format!("vertex {label} does not appear in the graph"),
            )
        })
    }

    fn check_batch_len(&self, len: usize, what: &str) -> Result<(), Reject> {
        if len > self.max_batch {
            return Err(Reject::new(
                ErrorCode::OversizedBatch,
                format!(
                    "{what} carries {len} entries, above this server's \
                     maximum of {} (split the request)",
                    self.max_batch
                ),
            ));
        }
        Ok(())
    }

    /// Parses one element of an `update` request's `updates` array:
    /// `{"op": "insert"|"delete"|"set", "source": U, "target": V
    /// [, "probability": P]}`, labels as everywhere else.
    fn parse_update(&self, item: &Value, i: usize) -> Result<GraphUpdate, Reject> {
        let entries = item.as_map().ok_or_else(|| {
            Reject::new(
                ErrorCode::BadField,
                format!(
                    "field `updates[{i}]`: expected an update object, found {}",
                    item.kind()
                ),
            )
        })?;
        let at = |name: &str| format!("updates[{i}].{name}");
        let op = match field(entries, "op") {
            Some(Value::Str(s)) => s.as_str(),
            Some(other) => {
                return Err(Reject::new(
                    ErrorCode::BadField,
                    format!(
                        "field `{}`: expected a string, found {}",
                        at("op"),
                        other.kind()
                    ),
                ))
            }
            None => {
                return Err(Reject::new(
                    ErrorCode::BadField,
                    format!("missing field `{}`", at("op")),
                ))
            }
        };
        let label = |name: &str| -> Result<VertexId, Reject> {
            let value = field(entries, name).ok_or_else(|| {
                Reject::new(ErrorCode::BadField, format!("missing field `{}`", at(name)))
            })?;
            self.resolve(expect_label(value, &at(name))?)
        };
        let probability = |fields: &'static [&'static str]| -> Result<f64, Reject> {
            reject_unknown_fields_at(entries, &format!("updates[{i}]"), fields)?;
            match field(entries, "probability") {
                Some(Value::Float(p)) => Ok(*p),
                Some(Value::Uint(n)) => Ok(*n as f64),
                // Negative integers are numbers too; let them reach the
                // engine's invalid-probability rejection like -0.5 does.
                Some(Value::Int(n)) => Ok(*n as f64),
                Some(other) => Err(Reject::new(
                    ErrorCode::BadField,
                    format!(
                        "field `{}`: expected a number, found {}",
                        at("probability"),
                        other.kind()
                    ),
                )),
                None => Err(Reject::new(
                    ErrorCode::BadField,
                    format!("missing field `{}`", at("probability")),
                )),
            }
        };
        match op {
            "insert" => Ok(GraphUpdate::InsertArc {
                source: label("source")?,
                target: label("target")?,
                probability: probability(&["op", "source", "target", "probability"])?,
            }),
            "delete" => {
                reject_unknown_fields_at(
                    entries,
                    &format!("updates[{i}]"),
                    &["op", "source", "target"],
                )?;
                Ok(GraphUpdate::DeleteArc {
                    source: label("source")?,
                    target: label("target")?,
                })
            }
            "set" => Ok(GraphUpdate::SetProbability {
                source: label("source")?,
                target: label("target")?,
                probability: probability(&["op", "source", "target", "probability"])?,
            }),
            other => Err(Reject::new(
                ErrorCode::BadField,
                format!(
                    "field `{}`: unknown op {other:?}; expected one of \
                     \"insert\", \"delete\", \"set\"",
                    at("op")
                ),
            )),
        }
    }

    /// Renders a rejected update in wire labels — the overlay speaks
    /// compact ids, clients speak labels (mirrors the CLI's rendering).
    fn describe_update_error(&self, error: &UpdateError) -> String {
        let label = |v: VertexId| self.labels[v as usize];
        match *error {
            UpdateError::InvalidProbability {
                source,
                target,
                probability,
            } => format!(
                "update of arc ({}, {}) carries invalid probability {probability}; \
                 probabilities must lie in (0, 1]",
                label(source),
                label(target)
            ),
            UpdateError::ArcAlreadyExists { source, target } => format!(
                "cannot insert arc ({}, {}): it already exists \
                 (use op \"set\" to re-weight it)",
                label(source),
                label(target)
            ),
            UpdateError::ArcNotFound { source, target } => {
                format!("arc ({}, {}) does not exist", label(source), label(target))
            }
            // Ids arrive through label resolution, so this cannot name a
            // label; fall back to the overlay's own message.
            UpdateError::VertexOutOfRange { .. } => error.to_string(),
        }
    }
}

// -- frame construction ----------------------------------------------------
//
// Handlers build JSON *trees*; serialisation happens exactly once, in
// `handle_line` (to a fresh `String`) or `handle_line_into` (appended to a
// reusable buffer) — the two spellings share one serialiser, so they are
// byte-identical by construction.

fn ok_value(rtype: &str, epoch: u64, payload: Vec<(String, Value)>) -> Value {
    let mut entries = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("type".to_string(), Value::Str(rtype.to_string())),
        ("epoch".to_string(), Value::Uint(epoch)),
    ];
    entries.extend(payload);
    Value::Map(entries)
}

fn error_value(reject: &Reject) -> Value {
    Value::Map(vec![
        ("ok".to_string(), Value::Bool(false)),
        (
            "code".to_string(),
            Value::Str(reject.code.as_str().to_string()),
        ),
        ("message".to_string(), Value::Str(reject.message.clone())),
    ])
}

fn query_rejected(error: QueryError) -> Reject {
    Reject::new(ErrorCode::QueryRejected, error.to_string())
}

// -- field extraction ------------------------------------------------------

fn field<'a>(entries: &'a Entries, name: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
}

fn require_field<'a>(entries: &'a Entries, name: &str) -> Result<&'a Value, Reject> {
    field(entries, name)
        .ok_or_else(|| Reject::new(ErrorCode::BadField, format!("missing field `{name}`")))
}

/// A vertex label: any non-negative JSON integer.
fn expect_label(value: &Value, what: &str) -> Result<u64, Reject> {
    match value {
        Value::Uint(n) => Ok(*n),
        other => Err(Reject::new(
            ErrorCode::BadField,
            format!(
                "field `{what}`: expected a non-negative integer vertex label, found {}",
                other.kind()
            ),
        )),
    }
}

fn require_label(entries: &Entries, name: &str) -> Result<u64, Reject> {
    expect_label(require_field(entries, name)?, name)
}

fn require_usize(entries: &Entries, name: &str) -> Result<usize, Reject> {
    match require_field(entries, name)? {
        Value::Uint(n) => usize::try_from(*n).map_err(|_| {
            Reject::new(
                ErrorCode::BadField,
                format!("field `{name}`: {n} does not fit in usize"),
            )
        }),
        other => Err(Reject::new(
            ErrorCode::BadField,
            format!(
                "field `{name}`: expected a non-negative integer, found {}",
                other.kind()
            ),
        )),
    }
}

fn expect_seq<'a>(value: &'a Value, what: &str) -> Result<&'a [Value], Reject> {
    value.as_seq().ok_or_else(|| {
        Reject::new(
            ErrorCode::BadField,
            format!("field `{what}`: expected an array, found {}", value.kind()),
        )
    })
}

/// Rejects repeated keys: `field()` is first-occurrence-wins, so accepting
/// duplicates would silently ignore the later value — a confident wrong
/// answer instead of an error.
fn reject_duplicate_fields(
    entries: &Entries,
    describe: impl Fn(&str) -> String,
) -> Result<(), Reject> {
    for (i, (key, _)) in entries.iter().enumerate() {
        if entries[..i].iter().any(|(earlier, _)| earlier == key) {
            return Err(Reject::new(ErrorCode::BadField, describe(key)));
        }
    }
    Ok(())
}

fn reject_unknown_fields(entries: &Entries, rtype: &str, allowed: &[&str]) -> Result<(), Reject> {
    for (key, _) in entries {
        if key != "type" && !allowed.contains(&key.as_str()) {
            return Err(Reject::new(
                ErrorCode::BadField,
                format!("unknown field `{key}` for request type \"{rtype}\""),
            ));
        }
    }
    reject_duplicate_fields(entries, |key| {
        format!("duplicate field `{key}` for request type \"{rtype}\"")
    })
}

fn reject_unknown_fields_at(entries: &Entries, at: &str, allowed: &[&str]) -> Result<(), Reject> {
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(Reject::new(
                ErrorCode::BadField,
                format!("unknown field `{at}.{key}`"),
            ));
        }
    }
    reject_duplicate_fields(entries, |key| format!("duplicate field `{at}.{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;
    use usim_core::{QueryEngine, SimRankConfig};

    fn fig1_handler(max_batch: usize) -> (RequestHandler, QueryEngine) {
        // Fig. 1 graph under non-compact wire labels 10..=14: label
        // 10 + v maps to engine vertex v.
        let g = UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap();
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let handler = RequestHandler::new(
            SharedQueryEngine::new(&g, config),
            (10..15).collect(),
            max_batch,
        );
        (handler, QueryEngine::new(&g, config))
    }

    fn parse(frame: &Frame) -> Vec<(String, Value)> {
        let value: Value = serde_json::from_str(&frame.json).unwrap();
        value.as_map().unwrap().to_vec()
    }

    fn get<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
        field(entries, name).unwrap_or_else(|| panic!("missing {name} in {entries:?}"))
    }

    fn float(entries: &[(String, Value)], name: &str) -> f64 {
        match get(entries, name) {
            Value::Float(x) => *x,
            other => panic!("{name}: {other:?}"),
        }
    }

    #[test]
    fn similarity_round_trips_bit_identically() {
        let (handler, engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        assert!(!frame.is_error);
        let entries = parse(&frame);
        assert_eq!(get(&entries, "ok"), &Value::Bool(true));
        assert_eq!(get(&entries, "epoch"), &Value::Uint(0));
        // The float survives the wire exactly: shortest-round-trip printing
        // parses back to the identical f64.
        assert_eq!(float(&entries, "score"), engine.similarity(0, 1));
    }

    #[test]
    fn profile_carries_meeting_vector_and_score() {
        let (handler, engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler
            .handle_line(r#"{"type":"profile","source":12,"target":13}"#)
            .unwrap();
        let entries = parse(&frame);
        let expected = engine.profile(2, 3);
        let meeting: Vec<f64> = get(&entries, "meeting")
            .as_seq()
            .unwrap()
            .iter()
            .map(|v| match v {
                Value::Float(x) => *x,
                Value::Uint(n) => *n as f64,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(meeting, expected.meeting);
        assert_eq!(float(&entries, "decay"), expected.decay);
        assert_eq!(float(&entries, "score"), expected.score());
    }

    #[test]
    fn top_k_defaults_to_all_vertices_and_speaks_labels() {
        let (handler, engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler
            .handle_line(r#"{"type":"top_k","source":11,"k":3}"#)
            .unwrap();
        let entries = parse(&frame);
        let expected = engine
            .batch_top_k_similar_to(1, &[0, 1, 2, 3, 4], 3)
            .unwrap();
        let results = get(&entries, "results").as_seq().unwrap().to_vec();
        assert_eq!(results.len(), expected.len());
        for (value, scored) in results.iter().zip(&expected) {
            let result = value.as_map().unwrap();
            assert_eq!(
                get(result, "vertex"),
                &Value::Uint(10 + scored.vertex as u64)
            );
            assert_eq!(float(result, "score"), scored.score);
        }
        // Explicit candidate list, still in labels.
        let frame = handler
            .handle_line(r#"{"type":"top_k","source":11,"k":2,"candidates":[10,12,14]}"#)
            .unwrap();
        let entries = parse(&frame);
        let expected = engine.batch_top_k_similar_to(1, &[0, 2, 4], 2).unwrap();
        let results = get(&entries, "results").as_seq().unwrap();
        assert_eq!(results.len(), expected.len());
    }

    #[test]
    fn batch_matches_the_engine_in_input_order() {
        let (handler, engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler
            .handle_line(r#"{"type":"batch","pairs":[[10,11],[11,12],[12,13]]}"#)
            .unwrap();
        let entries = parse(&frame);
        let scores: Vec<f64> = get(&entries, "scores")
            .as_seq()
            .unwrap()
            .iter()
            .map(|v| match v {
                Value::Float(x) => *x,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(
            scores,
            engine
                .batch_similarities(&[(0, 1), (1, 2), (2, 3)])
                .unwrap()
        );
    }

    #[test]
    fn update_applies_atomically_and_bumps_the_epoch() {
        let (handler, mut engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler
            .handle_line(
                r#"{"type":"update","updates":[
                    {"op":"delete","source":11,"target":12},
                    {"op":"insert","source":14,"target":12,"probability":0.9},
                    {"op":"set","source":10,"target":12,"probability":0.05}]}"#,
            )
            .unwrap();
        assert!(!frame.is_error, "{}", frame.json);
        let entries = parse(&frame);
        assert_eq!(get(&entries, "epoch"), &Value::Uint(1));
        assert_eq!(get(&entries, "inserted"), &Value::Uint(1));
        assert_eq!(get(&entries, "deleted"), &Value::Uint(1));
        assert_eq!(get(&entries, "reweighted"), &Value::Uint(1));
        assert_eq!(get(&entries, "compacted"), &Value::Bool(false));

        // Post-update answers equal an engine that applied the same batch.
        engine
            .apply_updates(&[
                GraphUpdate::DeleteArc {
                    source: 1,
                    target: 2,
                },
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 2,
                    probability: 0.9,
                },
                GraphUpdate::SetProbability {
                    source: 0,
                    target: 2,
                    probability: 0.05,
                },
            ])
            .unwrap();
        let frame = handler
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        let entries = parse(&frame);
        assert_eq!(get(&entries, "epoch"), &Value::Uint(1));
        assert_eq!(float(&entries, "score"), engine.similarity(0, 1));
    }

    #[test]
    fn rejected_updates_leave_the_graph_untouched() {
        let (handler, engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let before = {
            let frame = handler
                .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
                .unwrap();
            float(&parse(&frame), "score")
        };
        // Second update of the batch names a missing arc -> whole batch out.
        let frame = handler
            .handle_line(
                r#"{"type":"update","updates":[
                    {"op":"set","source":10,"target":12,"probability":0.5},
                    {"op":"delete","source":10,"target":14}]}"#,
            )
            .unwrap();
        assert!(frame.is_error);
        let entries = parse(&frame);
        assert_eq!(get(&entries, "code"), &Value::Str("update_rejected".into()));
        assert!(
            get(&entries, "message")
                .as_str()
                .unwrap()
                .contains("arc (10, 14) does not exist"),
            "{}",
            frame.json
        );
        let frame = handler
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        let entries = parse(&frame);
        assert_eq!(get(&entries, "epoch"), &Value::Uint(0));
        assert_eq!(float(&entries, "score"), before);
        assert_eq!(engine.similarity(0, 1), before);
    }

    #[test]
    fn stats_reports_graph_and_config() {
        let (handler, engine) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler.handle_line(r#"{"type":"stats"}"#).unwrap();
        let entries = parse(&frame);
        assert_eq!(get(&entries, "vertices"), &Value::Uint(5));
        assert_eq!(get(&entries, "arcs"), &Value::Uint(8));
        // The sampler backend is a top-level field (dashboards and smoke
        // scripts read it without digging into the config object) *and*
        // appears inside the serialized config.
        assert_eq!(get(&entries, "sampler"), &Value::Str("legacy".to_string()));
        let config = get(&entries, "config").as_map().unwrap();
        assert_eq!(
            get(config, "num_samples"),
            &Value::Uint(engine.config().num_samples as u64)
        );
        assert_eq!(get(config, "seed"), &Value::Uint(7));
        assert_eq!(get(config, "sampler"), &Value::Str("Legacy".to_string()));
        // Cache off by default: the stats frame says so and carries no
        // counters.
        let cache = get(&entries, "cache").as_map().unwrap();
        assert_eq!(get(cache, "enabled"), &Value::Bool(false));
        assert_eq!(get(cache, "capacity"), &Value::Uint(0));
        assert!(field(cache, "hits").is_none());
    }

    #[test]
    fn cached_handler_serves_bit_identical_answers_and_reports_counters() {
        // Two handlers over the same graph/config: one cached, one not.
        // Every frame must be byte-identical between them, repeat-asks
        // must hit, and an update must invalidate by epoch.
        let (plain, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let g = UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap();
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let cached = RequestHandler::with_cache(
            SharedQueryEngine::new(&g, config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
            512,
        );
        let frames = [
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"profile","source":12,"target":13}"#,
            r#"{"type":"batch","pairs":[[10,11],[11,12],[10,11]]}"#,
            r#"{"type":"top_k","source":11,"k":3}"#,
            r#"{"type":"update","updates":[{"op":"set","source":10,"target":12,"probability":0.05}]}"#,
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"batch","pairs":[[10,11],[11,12],[10,11]]}"#,
        ];
        for frame in frames {
            // Ask the cached handler twice (fill, then hit); both answers
            // and the uncached answer must be byte-identical.  (Update
            // frames are only sent once — they mutate.)
            let expected = plain.handle_line(frame).unwrap();
            let first = cached.handle_line(frame).unwrap();
            assert_eq!(first, expected, "{frame}");
            if !frame.contains("update") {
                assert_eq!(cached.handle_line(frame).unwrap(), expected, "{frame}");
            }
        }
        let stats = cached.cached_engine().cache_stats().unwrap();
        assert!(stats.hits > 0, "{stats:?}");
        assert!(
            stats.stale > 0,
            "post-update re-asks find stale entries: {stats:?}"
        );
        // The wire stats frame carries the same counters.
        let frame = cached.handle_line(r#"{"type":"stats"}"#).unwrap();
        let entries = parse(&frame);
        let cache = get(&entries, "cache").as_map().unwrap();
        assert_eq!(get(cache, "enabled"), &Value::Bool(true));
        assert_eq!(get(cache, "capacity"), &Value::Uint(512));
        assert_eq!(get(cache, "hits"), &Value::Uint(stats.hits));
        assert_eq!(get(cache, "stale"), &Value::Uint(stats.stale));
        assert!(matches!(get(cache, "misses"), Value::Uint(_)));
        assert!(matches!(get(cache, "evictions"), Value::Uint(_)));
        assert_eq!(get(cache, "survived"), &Value::Uint(stats.survived));
        assert_eq!(get(cache, "killed"), &Value::Uint(stats.killed));
        assert!(
            stats.killed > 0,
            "the update touched cached footprints: {stats:?}"
        );
    }

    #[test]
    fn cached_entries_survive_disjoint_updates_on_the_wire() {
        // In fig1 vertex 4 (label 14) has no out-arcs, so reverse walks
        // never *reach* it — a self-loop insert there is disjoint from
        // every cached footprint that doesn't start at 14.
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let cached = RequestHandler::with_cache(
            SharedQueryEngine::new(&fig1_graph(), config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
            512,
        );
        let ask = r#"{"type":"batch","pairs":[[10,11],[11,12],[12,13]]}"#;
        let before = cached.handle_line(ask).unwrap();
        cached
            .handle_line(
                r#"{"type":"update","updates":[{"op":"insert","source":14,"target":14,"probability":0.5}]}"#,
            )
            .unwrap();
        let stats = cached.cached_engine().cache_stats().unwrap();
        assert_eq!(
            (stats.survived, stats.killed),
            (3, 0),
            "every entry is disjoint from vertex 4: {stats:?}"
        );
        // The repeat ask hits the survivors; the scores are unchanged (the
        // frame differs only in its epoch stamp).
        let misses_before = stats.misses;
        let after = cached.handle_line(ask).unwrap();
        let stats = cached.cached_engine().cache_stats().unwrap();
        assert_eq!(stats.misses, misses_before, "no recompute: {stats:?}");
        let scores_of = |frame: &Frame| {
            parse(frame)
                .iter()
                .find(|(k, _)| k == "scores")
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(scores_of(&after), scores_of(&before));
        // And the wire stats frame reports the survival.
        let frame = cached.handle_line(r#"{"type":"stats"}"#).unwrap();
        let entries = parse(&frame);
        let cache = get(&entries, "cache").as_map().unwrap();
        assert_eq!(get(cache, "survived"), &Value::Uint(3));
        assert_eq!(get(cache, "killed"), &Value::Uint(0));
    }

    fn fig1_graph() -> ugraph::UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_handler_is_byte_identical_on_the_wire() {
        use usim_core::ShardSpec;
        let (plain, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let sharded = RequestHandler::sharded(
            ShardedQueryEngine::new(&fig1_graph(), config, ShardSpec::with_shards(3)),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
        );
        let frames = [
            r#"{"type":"similarity","source":10,"target":14}"#,
            r#"{"type":"profile","source":12,"target":13}"#,
            r#"{"type":"batch","pairs":[[10,14],[11,12],[13,10]]}"#,
            r#"{"type":"top_k","source":11,"k":3}"#,
            r#"{"type":"update","updates":[{"op":"set","source":10,"target":12,"probability":0.05}]}"#,
            r#"{"type":"batch","pairs":[[10,14],[11,12],[13,10]]}"#,
        ];
        for frame in frames {
            assert_eq!(
                sharded.handle_line(frame).unwrap(),
                plain.handle_line(frame).unwrap(),
                "{frame}"
            );
        }
        // Only the stats frame differs — in its shard section.
        let entries = parse(&sharded.handle_line(r#"{"type":"stats"}"#).unwrap());
        assert_eq!(get(&entries, "shard_count"), &Value::Uint(3));
        let shards = get(&entries, "shards").as_seq().unwrap();
        assert_eq!(shards.len(), 3);
        let first = shards[0].as_map().unwrap();
        assert_eq!(get(first, "start"), &Value::Uint(0));
        let last = shards[2].as_map().unwrap();
        assert_eq!(get(last, "end"), &Value::Uint(5));
        // K=1 default reports a single full-range shard.
        let entries = parse(&plain.handle_line(r#"{"type":"stats"}"#).unwrap());
        assert_eq!(get(&entries, "shard_count"), &Value::Uint(1));
        let shards = get(&entries, "shards").as_seq().unwrap();
        let only = shards[0].as_map().unwrap();
        assert_eq!(get(only, "start"), &Value::Uint(0));
        assert_eq!(get(only, "end"), &Value::Uint(5));
    }

    #[test]
    fn update_log_replay_restores_the_exact_epoch_and_answers() {
        let path =
            std::env::temp_dir().join(format!("usim_server_ulog_{}.ulog", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let queries = [
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"batch","pairs":[[10,14],[11,12],[13,10]]}"#,
            r#"{"type":"top_k","source":11,"k":3}"#,
        ];

        // First life: serve with a log attached, apply two update rounds.
        let (log, rounds) = UpdateLog::open(&path).unwrap();
        assert!(rounds.is_empty());
        let live = RequestHandler::new(
            SharedQueryEngine::new(&fig1_graph(), config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
        )
        .with_update_log(log);
        for update in [
            r#"{"type":"update","updates":[{"op":"set","source":10,"target":12,"probability":0.05}]}"#,
            r#"{"type":"update","updates":[
                {"op":"delete","source":11,"target":12},
                {"op":"insert","source":14,"target":12,"probability":0.9}]}"#,
        ] {
            let frame = live.handle_line(update).unwrap();
            assert!(!frame.is_error, "{}", frame.json);
        }
        assert_eq!(live.cached_engine().update_epoch(), 2);
        let answers: Vec<Frame> = queries
            .iter()
            .map(|q| live.handle_line(q).unwrap())
            .collect();
        drop(live); // "kill" the server

        // Second life: reopen the log, replay every round, serve again.
        let (log, rounds) = UpdateLog::open(&path).unwrap();
        assert_eq!(rounds.len(), 2);
        let reborn = RequestHandler::new(
            SharedQueryEngine::new(&fig1_graph(), config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
        )
        .with_update_log(log);
        for round in &rounds {
            // Replayed rounds are already in the log; apply them directly
            // to the engine, exactly like the serve boot path does.
            reborn.sharded_engine().apply_updates(round).unwrap();
        }
        assert_eq!(reborn.cached_engine().update_epoch(), 2);
        for (query, expected) in queries.iter().zip(&answers) {
            assert_eq!(&reborn.handle_line(query).unwrap(), expected, "{query}");
        }
        // The reborn log still appends: a third round lands as round 3.
        let frame = reborn
            .handle_line(r#"{"type":"update","updates":[{"op":"delete","source":10,"target":13}]}"#)
            .unwrap();
        assert!(!frame.is_error, "{}", frame.json);
        drop(reborn);
        let (_, rounds) = UpdateLog::open(&path).unwrap();
        assert_eq!(rounds.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn blank_lines_are_free_keepalives() {
        let (handler, _) = fig1_handler(DEFAULT_MAX_BATCH);
        assert_eq!(handler.handle_line(""), None);
        assert_eq!(handler.handle_line("   \t "), None);
    }

    #[test]
    fn error_taxonomy_is_typed_and_field_precise() {
        let (handler, _) = fig1_handler(4);
        let code_of = |line: &str, needle: &str| -> String {
            let frame = handler.handle_line(line).unwrap();
            assert!(frame.is_error, "{line} should be rejected: {}", frame.json);
            let entries = parse(&frame);
            let message = get(&entries, "message").as_str().unwrap().to_string();
            assert!(
                message.contains(needle),
                "{line}: message {message:?} misses {needle:?}"
            );
            get(&entries, "code").as_str().unwrap().to_string()
        };
        // Malformed JSON, non-object frames, missing / mistyped type.
        assert_eq!(code_of("{oops", "invalid JSON"), "malformed_frame");
        assert_eq!(
            code_of("[1,2]", "expected a JSON object"),
            "malformed_frame"
        );
        assert_eq!(
            code_of(r#"{"source":10}"#, "missing field `type`"),
            "malformed_frame"
        );
        assert_eq!(
            code_of(r#"{"type":7}"#, "expected a string"),
            "malformed_frame"
        );
        // Unknown request type.
        assert_eq!(
            code_of(r#"{"type":"similarities"}"#, "\"similarities\""),
            "unknown_request_type"
        );
        // Field-level problems name the field.
        assert_eq!(
            code_of(
                r#"{"type":"similarity","source":10}"#,
                "missing field `target`"
            ),
            "bad_field"
        );
        assert_eq!(
            code_of(
                r#"{"type":"similarity","source":"x","target":11}"#,
                "field `source`"
            ),
            "bad_field"
        );
        assert_eq!(
            code_of(
                r#"{"type":"similarity","source":10,"target":11,"bogus":1}"#,
                "unknown field `bogus`"
            ),
            "bad_field"
        );
        assert_eq!(
            code_of(
                r#"{"type":"batch","pairs":[[10,11],[10]]}"#,
                "field `pairs[1]`"
            ),
            "bad_field"
        );
        assert_eq!(
            code_of(
                r#"{"type":"update","updates":[{"op":"warp","source":10,"target":11}]}"#,
                "unknown op \"warp\""
            ),
            "bad_field"
        );
        assert_eq!(
            code_of(
                r#"{"type":"update","updates":[{"op":"insert","source":10,"target":11}]}"#,
                "missing field `updates[0].probability`"
            ),
            "bad_field"
        );
        // Unknown labels.
        assert_eq!(
            code_of(
                r#"{"type":"similarity","source":10,"target":99}"#,
                "vertex 99 does not appear"
            ),
            "unknown_vertex"
        );
        // Oversized batch (handler built with max_batch = 4).
        assert_eq!(
            code_of(
                r#"{"type":"batch","pairs":[[10,11],[10,12],[10,13],[10,14],[11,12]]}"#,
                "maximum of 4"
            ),
            "oversized_batch"
        );
        // Duplicate keys would be silently first-wins (a confident wrong
        // answer for the client that meant the second value); reject them.
        assert_eq!(
            code_of(
                r#"{"type":"similarity","source":10,"source":12,"target":11}"#,
                "duplicate field `source`"
            ),
            "bad_field"
        );
        assert_eq!(
            code_of(
                r#"{"type":"update","updates":[{"op":"set","source":10,"target":12,"probability":0.5,"probability":0.9}]}"#,
                "duplicate field `updates[0].probability`"
            ),
            "bad_field"
        );
        // The implicit all-vertices top_k candidate set (5 vertices) is
        // subject to the same cap as an explicit list.
        assert_eq!(
            code_of(
                r#"{"type":"top_k","source":10,"k":1}"#,
                "implicit all-vertices candidate set"
            ),
            "oversized_batch"
        );
        // A negative integer probability is a number: it reaches the
        // engine's typed invalid-probability rejection, like -0.5 does.
        assert_eq!(
            code_of(
                r#"{"type":"update","updates":[{"op":"set","source":10,"target":12,"probability":-1}]}"#,
                "probabilities must lie in (0, 1]"
            ),
            "update_rejected"
        );
    }

    #[test]
    fn handle_line_into_writes_the_same_bytes_without_a_string() {
        // Two identically-built handlers (so metric counters — which the
        // stats frame serialises — advance in lockstep): the buffer writer
        // must produce exactly `handle_line(..).json + "\n"`.
        let (buffered, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let (stringly, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let mut out = BytesMut::with_capacity(64);
        for line in [
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"batch","pairs":[[10,11],[11,12]]}"#,
            r#"{"type":"top_k","source":11,"k":2}"#,
            "   ",
            "{oops",
            r#"{"type":"stats"}"#,
        ] {
            out.clear();
            let meta = buffered.handle_line_into(line, &mut out);
            match stringly.handle_line(line) {
                None => {
                    assert_eq!(meta, None, "{line}");
                    assert!(out.is_empty(), "{line}");
                }
                Some(frame) => {
                    assert_eq!(meta.unwrap().is_error, frame.is_error, "{line}");
                    let mut expected = frame.json.into_bytes();
                    expected.push(b'\n');
                    assert_eq!(&out[..], &expected[..], "{line}");
                }
            }
        }
        assert!(!out.is_empty(), "the last response stayed in the buffer");
    }

    #[test]
    fn coalesced_handler_is_byte_identical_on_the_wire() {
        let (plain, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        // cap = 1: every submission flushes immediately, so a
        // single-threaded test never waits out a window.
        let coalesced = RequestHandler::new(
            SharedQueryEngine::new(&fig1_graph(), config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
        )
        .with_coalescing(CoalesceOptions {
            window: std::time::Duration::from_millis(50),
            cap: 1,
        });
        let frames = [
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"profile","source":12,"target":13}"#,
            r#"{"type":"batch","pairs":[[10,14],[11,12],[10,14]]}"#,
            r#"{"type":"top_k","source":11,"k":3}"#,
            r#"{"type":"top_k","source":11,"k":0}"#,
            r#"{"type":"update","updates":[{"op":"set","source":10,"target":12,"probability":0.05}]}"#,
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"similarity","source":10,"target":99}"#,
        ];
        for frame in frames {
            assert_eq!(
                coalesced.handle_line(frame).unwrap(),
                plain.handle_line(frame).unwrap(),
                "{frame}"
            );
        }
        // The coalescer actually ran (updates and the unknown-vertex
        // rejection bypass it): 6 coalescable requests, every one its own
        // immediate cap-flush batch.
        let snapshot = coalesced.metrics().coalescer_snapshot();
        assert_eq!(snapshot.requests, 6);
        assert_eq!(snapshot.batches, 6);
        assert_eq!(snapshot.cap_flushes, 6);
        assert_eq!(snapshot.mean_occupancy, 1.0);
    }

    #[test]
    fn concurrent_coalesced_requests_share_batches_and_stay_identical() {
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let coalesced = RequestHandler::new(
            SharedQueryEngine::new(&fig1_graph(), config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
        )
        .with_coalescing(CoalesceOptions {
            window: std::time::Duration::from_millis(20),
            cap: 3,
        });
        let (plain, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let lines = [
            r#"{"type":"similarity","source":10,"target":11}"#,
            r#"{"type":"batch","pairs":[[10,11],[12,13]]}"#,
            r#"{"type":"similarity","source":12,"target":13}"#,
        ];
        // Three threads ask concurrently, several rounds: whichever thread
        // ends up leading whichever batch, every answer must equal the
        // uncoalesced handler's.
        std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .map(|line| {
                    let coalesced = &coalesced;
                    scope.spawn(move || {
                        (0..8)
                            .map(|_| coalesced.handle_line(line).unwrap())
                            .collect::<Vec<Frame>>()
                    })
                })
                .collect();
            for (line, handle) in lines.iter().zip(handles) {
                let expected = plain.handle_line(line).unwrap();
                for frame in handle.join().unwrap() {
                    assert_eq!(frame, expected, "{line}");
                }
            }
        });
        let snapshot = coalesced.metrics().coalescer_snapshot();
        assert_eq!(snapshot.requests, 24);
        assert!(snapshot.batches <= 24, "{snapshot:?}");
        assert_eq!(
            snapshot.window_flushes + snapshot.cap_flushes,
            snapshot.batches,
            "{snapshot:?}"
        );
    }

    #[test]
    fn stats_reports_latency_and_coalescer_sections() {
        let (handler, _) = fig1_handler(DEFAULT_MAX_BATCH);
        handler
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        let malformed = handler.handle_line("{oops").unwrap();
        assert!(malformed.is_error);
        // The transport records latencies; stand in for it here.
        handler
            .metrics()
            .latency()
            .record(std::time::Duration::from_micros(300));
        let entries = parse(&handler.handle_line(r#"{"type":"stats"}"#).unwrap());
        let latency = get(&entries, "latency").as_map().unwrap();
        assert_eq!(get(latency, "count"), &Value::Uint(1));
        // One 300µs sample: every percentile reports its bucket's upper
        // bound, 512µs.
        assert_eq!(get(latency, "p50_us"), &Value::Uint(512));
        assert_eq!(get(latency, "p99_us"), &Value::Uint(512));
        let requests = get(latency, "requests").as_map().unwrap();
        assert_eq!(get(requests, "similarity"), &Value::Uint(1));
        assert_eq!(get(requests, "invalid"), &Value::Uint(1));
        // The stats frame counts itself (dispatch-time counting).
        assert_eq!(get(requests, "stats"), &Value::Uint(1));
        assert_eq!(get(requests, "update"), &Value::Uint(0));
        let coalescer = get(&entries, "coalescer").as_map().unwrap();
        assert_eq!(get(coalescer, "enabled"), &Value::Bool(false));
        assert_eq!(get(coalescer, "window_us"), &Value::Uint(0));
        assert_eq!(get(coalescer, "batches"), &Value::Uint(0));

        // With coalescing on, the section reflects the configuration.
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let coalesced = RequestHandler::new(
            SharedQueryEngine::new(&fig1_graph(), config),
            (10..15).collect(),
            DEFAULT_MAX_BATCH,
        )
        .with_coalescing(CoalesceOptions {
            window: std::time::Duration::from_micros(800),
            cap: 4,
        });
        coalesced
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        let entries = parse(&coalesced.handle_line(r#"{"type":"stats"}"#).unwrap());
        let section = get(&entries, "coalescer").as_map().unwrap();
        assert_eq!(get(section, "enabled"), &Value::Bool(true));
        assert_eq!(get(section, "window_us"), &Value::Uint(800));
        assert_eq!(get(section, "cap"), &Value::Uint(4));
        assert_eq!(get(section, "requests"), &Value::Uint(1));
        assert_eq!(get(section, "batches"), &Value::Uint(1));
    }

    #[test]
    fn stats_reports_tracing_and_walk_sections_zeroed_without_a_tracer() {
        let (handler, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let entries = parse(&handler.handle_line(r#"{"type":"stats"}"#).unwrap());
        let tracing = get(&entries, "tracing").as_map().unwrap();
        assert_eq!(get(tracing, "enabled"), &Value::Bool(false));
        assert_eq!(get(tracing, "sample_every"), &Value::Uint(0));
        assert_eq!(get(tracing, "traced"), &Value::Uint(0));
        // The stage list is always present (zeroed) so dashboards need no
        // schema branching on whether tracing is on.
        let stages = get(tracing, "stages").as_seq().unwrap();
        assert_eq!(stages.len(), usim_obs::Stage::ALL.len());
        let first = stages[0].as_map().unwrap();
        assert_eq!(get(first, "stage"), &Value::Str("parse".to_string()));
        assert_eq!(get(first, "count"), &Value::Uint(0));
        let walks = get(&entries, "walks").as_map().unwrap();
        assert!(field(walks, "walks").is_some());
    }

    #[test]
    fn traced_stats_count_stages_and_slow_queries_report_them() {
        let (handler, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let handler = handler.with_tracing(1.0, 4);
        handler
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        handler
            .handle_line(r#"{"type":"batch","pairs":[[10,14],[11,12]]}"#)
            .unwrap();

        let entries = parse(&handler.handle_line(r#"{"type":"stats"}"#).unwrap());
        let tracing = get(&entries, "tracing").as_map().unwrap();
        assert_eq!(get(tracing, "enabled"), &Value::Bool(true));
        assert_eq!(get(tracing, "sample_every"), &Value::Uint(1));
        assert_eq!(get(tracing, "traced"), &Value::Uint(2));
        let stages = get(tracing, "stages").as_seq().unwrap();
        let walk_sample = stages
            .iter()
            .map(|s| s.as_map().unwrap())
            .find(|s| get(s, "stage") == &Value::Str("walk_sample".to_string()))
            .expect("walk_sample stage present");
        assert_eq!(get(walk_sample, "count"), &Value::Uint(2));

        let frame = handler.handle_line(r#"{"type":"slow_queries"}"#).unwrap();
        assert!(!frame.is_error, "{}", frame.json);
        let entries = parse(&frame);
        assert_eq!(get(&entries, "tracing"), &Value::Bool(true));
        let slow = get(&entries, "entries").as_seq().unwrap();
        // Both queries plus the stats frame itself were traced; the log
        // keeps them slowest-first.
        assert_eq!(slow.len(), 3);
        let mut previous = u64::MAX;
        for entry in slow {
            let entry = entry.as_map().unwrap();
            let total = match get(entry, "total_us") {
                Value::Uint(n) => *n,
                other => panic!("total_us: {other:?}"),
            };
            assert!(total <= previous, "slow log must be slowest-first");
            previous = total;
            let stages = get(entry, "stages_us").as_map().unwrap();
            assert_eq!(stages.len(), usim_obs::Stage::ALL.len());
            let stage_sum: u64 = stages
                .iter()
                .map(|(_, v)| match v {
                    Value::Uint(n) => *n,
                    other => panic!("stage value: {other:?}"),
                })
                .sum();
            assert!(
                stage_sum <= total,
                "stage sum {stage_sum}us > total {total}us"
            );
        }
    }

    #[test]
    fn slow_queries_without_tracing_is_empty_not_an_error() {
        let (handler, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let frame = handler.handle_line(r#"{"type":"slow_queries"}"#).unwrap();
        assert!(!frame.is_error, "{}", frame.json);
        let entries = parse(&frame);
        assert_eq!(get(&entries, "tracing"), &Value::Bool(false));
        assert!(get(&entries, "entries").as_seq().unwrap().is_empty());
    }

    #[test]
    fn metrics_frame_wraps_the_prometheus_exposition() {
        let (handler, _) = fig1_handler(DEFAULT_MAX_BATCH);
        let handler = handler.with_tracing(1.0, 4);
        handler
            .handle_line(r#"{"type":"similarity","source":10,"target":11}"#)
            .unwrap();
        let frame = handler.handle_line(r#"{"type":"metrics"}"#).unwrap();
        assert!(!frame.is_error, "{}", frame.json);
        let entries = parse(&frame);
        let body = get(&entries, "body").as_str().unwrap();
        for needle in [
            "# TYPE usim_requests_total counter",
            "usim_requests_total{kind=\"similarity\"} 1",
            "# TYPE usim_request_duration_seconds histogram",
            "usim_request_duration_seconds_bucket{le=\"+Inf\"}",
            "usim_epoch 0",
            "usim_traced_requests_total",
            "usim_stage_duration_seconds_bucket{stage=\"walk_sample\"",
        ] {
            assert!(body.contains(needle), "missing {needle} in:\n{body}");
        }
        // Rejects stray fields like every other frame.
        let frame = handler
            .handle_line(r#"{"type":"metrics","verbose":true}"#)
            .unwrap();
        assert!(frame.is_error, "{}", frame.json);
        let frame = handler
            .handle_line(r#"{"type":"slow_queries","limit":5}"#)
            .unwrap();
        assert!(frame.is_error, "{}", frame.json);
    }

    #[test]
    fn implicit_top_k_candidates_fit_under_a_large_enough_cap() {
        // max_batch = 5 == num_vertices: the implicit set is exactly at the
        // cap and must be accepted.
        let (handler, engine) = fig1_handler(5);
        let frame = handler
            .handle_line(r#"{"type":"top_k","source":11,"k":2}"#)
            .unwrap();
        assert!(!frame.is_error, "{}", frame.json);
        let entries = parse(&frame);
        let expected = engine
            .batch_top_k_similar_to(1, &[0, 1, 2, 3, 4], 2)
            .unwrap();
        assert_eq!(
            get(&entries, "results").as_seq().unwrap().len(),
            expected.len()
        );
    }
}
