//! The request coalescer: leader–follower batching of concurrent queries.
//!
//! Concurrent connections asking queries within a short window are served
//! as **one** engine batch through
//! [`usim_core::ShardedQueryEngine::serve_batch`] — the first submitter
//! becomes the *leader* and waits until either the collection window
//! expires or the batch reaches its size cap; every request arriving in
//! the meantime joins as a *follower* and blocks on its own one-shot
//! channel.  The leader then takes the whole batch, runs it on the engine
//! (one read-gate acquisition, one scatter, intra-batch dedup across
//! clients), and scatters the per-slot answers back.
//!
//! Why this is safe: batch answers are pinned bit-identical to sequential
//! per-request answers at any thread and shard count (the pair-keyed RNG
//! contract), and one flush runs under one engine read-gate acquisition, so
//! all answers of a batch share one epoch — exactly what each request would
//! have observed had it been served alone at that instant.  Coalescing
//! changes *when* work happens, never *what* comes back.
//!
//! There is no background thread: the coalescer borrows the leader's
//! connection-worker thread for the flush, so an idle server has zero
//! coalescer threads parked, and backpressure composes naturally with the
//! transport's bounded worker pool.

use crate::metrics::ServeMetrics;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use usim_core::{CoalescedAnswer, CoalescedQuery, QueryError, ShardedQueryEngine};
use usim_obs::{Stage, StageTrace};

/// Tuning of one [`Coalescer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceOptions {
    /// How long the leader waits for followers before flushing.
    pub window: Duration,
    /// Flush as soon as this many requests are pending (the cap also
    /// bounds engine-batch memory).
    pub cap: usize,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        CoalesceOptions {
            window: Duration::from_micros(500),
            cap: 16,
        }
    }
}

/// Why a request could not be answered through the coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceError {
    /// The engine rejected this slot (per-slot: other requests in the same
    /// batch are unaffected).
    Query(QueryError),
    /// The leader never delivered an answer (its thread died mid-flush).
    /// The submitting connection gets a typed error frame and lives on.
    Delivery,
}

impl std::fmt::Display for CoalesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalesceError::Query(e) => e.fmt(f),
            CoalesceError::Delivery => {
                f.write_str("the coalesced batch serving this request failed to deliver")
            }
        }
    }
}

/// One parked request: its query and the channel its answer comes back on.
struct Pending {
    query: CoalescedQuery,
    reply: mpsc::SyncSender<Result<(u64, CoalescedAnswer), QueryError>>,
}

/// The batch being collected right now.
#[derive(Default)]
struct State {
    pending: Vec<Pending>,
    /// Whether some submitter is currently leading a collection round.
    leader_present: bool,
}

/// The leader–follower request coalescer (see the module docs).
#[derive(Debug)]
pub struct Coalescer {
    state: Mutex<State>,
    wake_leader: Condvar,
    options: CoalesceOptions,
    metrics: Arc<ServeMetrics>,
}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("pending", &self.pending.len())
            .field("leader_present", &self.leader_present)
            .finish()
    }
}

impl Coalescer {
    /// Builds a coalescer recording its counters into `metrics`.
    pub fn new(options: CoalesceOptions, metrics: Arc<ServeMetrics>) -> Self {
        Coalescer {
            state: Mutex::new(State::default()),
            wake_leader: Condvar::new(),
            options: CoalesceOptions {
                window: options.window,
                cap: options.cap.max(1),
            },
            metrics,
        }
    }

    /// The effective options (cap clamped to at least 1).
    pub fn options(&self) -> CoalesceOptions {
        self.options
    }

    /// Submits one query and blocks until its answer arrives — either
    /// because this thread became the leader and ran the batch itself, or
    /// because another leader flushed a batch containing it.
    ///
    /// Stage attribution when `trace` is attached: a follower's whole
    /// blocked wait counts as `coalesce_wait`; a leader counts only its
    /// collection wait there, and the batch's engine stages land on the
    /// *leader's* trace (the thread that actually ran them) — followers see
    /// that work inside their wait.
    pub fn submit(
        &self,
        engine: &ShardedQueryEngine,
        query: CoalescedQuery,
        trace: Option<&StageTrace>,
    ) -> Result<(u64, CoalescedAnswer), CoalesceError> {
        // Answers are delivered through a one-shot rendezvous; capacity 1
        // means the leader's send never blocks on a slow receiver.
        let (reply, answer) = mpsc::sync_channel(1);
        let am_leader = {
            let mut state = self.state.lock().expect("coalescer state poisoned");
            state.pending.push(Pending { query, reply });
            if state.leader_present {
                // A leader is collecting: wake it if this submission filled
                // the batch, then just wait for the answer.
                if state.pending.len() >= self.options.cap {
                    self.wake_leader.notify_one();
                }
                false
            } else {
                state.leader_present = true;
                true
            }
        };
        let wait_start = trace.filter(|_| !am_leader).map(|_| Instant::now());
        if am_leader {
            self.lead(engine, trace);
        }
        let received = answer.recv();
        if let (Some(trace), Some(start)) = (trace, wait_start) {
            trace.add(Stage::CoalesceWait, start.elapsed());
        }
        match received {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(error)) => Err(CoalesceError::Query(error)),
            Err(mpsc::RecvError) => Err(CoalesceError::Delivery),
        }
    }

    /// Leader duty: wait out the window (or the cap), take the batch, run
    /// it, deliver every answer.  The collection lock is *not* held during
    /// the engine call, so the next arrival starts a new round while this
    /// one computes — rounds pipeline.
    fn lead(&self, engine: &ShardedQueryEngine, trace: Option<&StageTrace>) {
        let wait_start = trace.map(|_| Instant::now());
        let deadline = Instant::now() + self.options.window;
        let mut state = self.state.lock().expect("coalescer state poisoned");
        let mut filled = state.pending.len() >= self.options.cap;
        while !filled {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _timeout) = self
                .wake_leader
                .wait_timeout(state, deadline - now)
                .expect("coalescer state poisoned");
            state = next;
            filled = state.pending.len() >= self.options.cap;
        }
        let batch = std::mem::take(&mut state.pending);
        state.leader_present = false;
        drop(state);
        if let (Some(trace), Some(start)) = (trace, wait_start) {
            trace.add(Stage::CoalesceWait, start.elapsed());
        }

        let counters = self.metrics.coalescer();
        counters
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        if filled {
            counters.cap_flushes.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.window_flushes.fetch_add(1, Ordering::Relaxed);
        }

        let queries: Vec<CoalescedQuery> = batch.iter().map(|p| p.query.clone()).collect();
        let (epoch, answers) = engine.serve_batch_with_trace(&queries, trace);
        for (pending, answer) in batch.into_iter().zip(answers) {
            // A send can only fail if the submitter died; nothing to do.
            let _ = pending.reply.send(answer.map(|a| (epoch, a)));
        }
    }
}
