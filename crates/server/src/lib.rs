//! `usim_server` — a threaded query server over the dynamic SimRank engine.
//!
//! This crate turns the batch engine ([`usim_core::QueryEngine`] behind the
//! reader/writer [`usim_core::SharedQueryEngine`] handle) into a long-lived
//! network service: the graph is loaded and compiled to CSR **once**, then
//! any number of clients issue queries and live graph updates over plain
//! TCP, speaking a line-delimited JSON protocol (one request per line, one
//! response per line).
//!
//! Two layers, separately testable:
//!
//! * [`protocol`] — the wire format and the transport-free
//!   [`RequestHandler`] (`&str` line in → JSON [`Frame`] out).  Request
//!   types mirror the engine API (`similarity`, `profile`, `top_k`,
//!   `batch`, `update`, `stats`); every response carries the update epoch
//!   it was computed under, and every failure is a typed error frame —
//!   malformed input never panics or drops a connection.
//! * [`server`] — `std::net` + `std::thread` transport: one accept loop
//!   feeding N workers through a bounded job queue.
//!
//! Two hot-path subsystems ride on top: the [`coalesce`] module batches
//! concurrent requests from different connections into single engine calls
//! (answers stay bit-identical — see its docs for why), and the [`metrics`]
//! module keeps a lock-free latency histogram plus per-request-type and
//! coalescer counters, surfaced through the `stats` frame.
//!
//! Observability rides on `usim_obs`: sampled per-request stage tracing
//! ([`RequestHandler::with_tracing`] — stage timings, a slow-query log
//! behind the `slow_queries` frame, per-stage histograms in `stats`),
//! process-wide walk metrics ([`RequestHandler::with_walk_metrics`]), and
//! Prometheus text exposition through the `metrics` frame or the
//! plaintext HTTP [`exporter`].  Tracing is off by default and never
//! changes answers: instrumentation only reads clocks and bumps relaxed
//! counters, so responses stay byte-identical traced or not.
//!
//! The frame-by-frame protocol reference lives in `docs/PROTOCOL.md`; the
//! CLI front-end is `usim serve` (crate `usim_cli`).  Answers are
//! bit-identical to the same entry points called on a local engine with the
//! same config and seed — the wire serialises floats in shortest
//! round-trip form, so nothing is lost in transit.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod coalesce;
pub mod exporter;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use coalesce::{CoalesceError, CoalesceOptions, Coalescer};
pub use exporter::{ExporterHandle, MetricsExporter};
pub use metrics::{
    CoalescerCounters, CoalescerSnapshot, LatencyHistogram, RequestKind, ServeMetrics,
};
pub use protocol::{ErrorCode, Frame, RequestHandler, ResponseMeta, DEFAULT_MAX_BATCH};
pub use server::{Server, ServerHandle, ServerOptions, ServerStats};
