//! The threaded TCP transport: accept loop, bounded job queue, workers.
//!
//! The topology is deliberately boring `std::net` + `std::thread`:
//!
//! ```text
//! accept loop ──sync_channel(queue_depth)──▶ worker 0 ─┐
//!   (listener)                              worker 1 ──┼──▶ RequestHandler
//!                                           …          │    (SharedQueryEngine)
//!                                           worker N-1 ┘
//! ```
//!
//! The accept loop pushes whole connections into a **bounded** queue
//! ([`std::sync::mpsc::sync_channel`]); when every worker is busy and the
//! queue is full, `send` blocks the accept loop — backpressure lands on the
//! TCP accept backlog instead of growing an unbounded buffer.  Each worker
//! serves its connection line by line until the client disconnects:
//! queries take the engine's read lock (any number run concurrently, across
//! workers), `update` frames take the write lock and bump the epoch, so a
//! client interleaving updates and queries on one connection observes its
//! own writes, and other connections observe the epoch change.
//!
//! Nothing here panics on client input: every malformed frame becomes a
//! typed error line (see [`crate::protocol`]) and the connection stays up.

use crate::protocol::RequestHandler;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Transport tuning of one [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded job-queue depth between the accept loop and the workers.
    pub queue_depth: usize,
    /// Stop after accepting this many connections (`None`: serve forever;
    /// `Some(0)`: accept nothing and return immediately).  This is how
    /// tests and smoke scripts get a clean, joinable shutdown.
    pub max_connections: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 4,
            queue_depth: 64,
            max_connections: None,
        }
    }
}

/// Counters reported when a server run ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub connections: usize,
    /// Response frames written (one per non-blank request line).
    pub frames: u64,
    /// How many of those frames were `"ok": false` errors.
    pub errors: u64,
}

/// A bound, not-yet-running query server.
///
/// [`Server::run`] serves on the calling thread until the connection budget
/// is exhausted; [`Server::spawn`] serves on a background thread and returns
/// a [`ServerHandle`] for shutdown — which is what the tests and the bench
/// harness use:
///
/// ```
/// use std::io::{BufRead, BufReader, Write};
/// use ugraph::UncertainGraphBuilder;
/// use usim_core::{SharedQueryEngine, SimRankConfig};
/// use usim_server::{RequestHandler, Server, ServerOptions};
///
/// let g = UncertainGraphBuilder::new(3)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .build()
///     .unwrap();
/// let handler = RequestHandler::new(
///     SharedQueryEngine::new(&g, SimRankConfig::default().with_samples(50)),
///     (0..3).collect(),
///     1024,
/// );
/// let server = Server::bind("127.0.0.1:0", handler, ServerOptions::default()).unwrap();
/// let addr = server.local_addr();
/// let handle = server.spawn();
///
/// let mut conn = std::net::TcpStream::connect(addr).unwrap();
/// writeln!(conn, r#"{{"type":"similarity","source":0,"target":1}}"#).unwrap();
/// let mut line = String::new();
/// BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
/// assert!(line.contains("\"ok\":true"));
/// drop(conn);
///
/// let stats = handle.shutdown().unwrap();
/// assert_eq!(stats.connections, 1);
/// assert_eq!(stats.frames, 1);
/// ```
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    handler: Arc<RequestHandler>,
    options: ServerOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks a free port)
    /// without accepting anything yet.
    pub fn bind(
        addr: &str,
        handler: RequestHandler,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            handler: Arc::new(handler),
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// A shared handle to the request handler — what the Prometheus
    /// exporter ([`crate::exporter`]) scrapes while the server runs.
    pub fn handler(&self) -> Arc<RequestHandler> {
        Arc::clone(&self.handler)
    }

    /// Serves on the calling thread: spawns the workers, runs the accept
    /// loop, and returns the final counters once the connection budget is
    /// exhausted (or a [`ServerHandle::shutdown`] woke the loop).  Workers
    /// finish serving their in-flight connections before this returns.
    pub fn run(self) -> std::io::Result<ServerStats> {
        // A zero connection budget means "serve nothing", not "serve
        // forever" (the loop below checks the budget only after accepting).
        if self.options.max_connections == Some(0) {
            return Ok(ServerStats::default());
        }
        let workers = self.options.workers.max(1);
        let queue_depth = self.options.queue_depth.max(1);
        // Connections are stamped at accept so the worker that picks one up
        // can credit the queue wait to the first frame's stage trace.
        let (sender, receiver) = mpsc::sync_channel::<(TcpStream, Instant)>(queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let frames = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));

        let mut joins = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = Arc::clone(&receiver);
            let handler = Arc::clone(&self.handler);
            let frames = Arc::clone(&frames);
            let errors = Arc::clone(&errors);
            joins.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only for the pop, not while
                // serving: other workers keep draining the queue.
                let next = receiver.lock().recv();
                match next {
                    Ok((stream, accepted)) => {
                        serve_connection(stream, accepted, &handler, &frames, &errors)
                    }
                    Err(_) => break, // accept loop dropped the sender
                }
            }));
        }

        let mut connections = 0usize;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break; // the waker connection is dropped unserved
            }
            let Ok(stream) = stream else {
                // Accept errors (EMFILE under fd exhaustion, ECONNABORTED)
                // can persist; back off briefly instead of spinning hot.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            };
            connections += 1;
            if sender.send((stream, Instant::now())).is_err() {
                break;
            }
            if Some(connections) == self.options.max_connections {
                break;
            }
        }
        drop(sender);
        for join in joins {
            let _ = join.join();
        }
        Ok(ServerStats {
            connections,
            frames: frames.load(Ordering::SeqCst),
            errors: errors.load(Ordering::SeqCst),
        })
    }

    /// Runs the accept loop on a background thread; shut it down (and
    /// collect the counters) through the returned [`ServerHandle`].
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// A running background server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<std::io::Result<ServerStats>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections to drain, and
    /// returns the final counters.  Connections still open keep being
    /// served until their clients disconnect, so close clients first.
    pub fn shutdown(self) -> std::io::Result<ServerStats> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; if that
        // fails the listener is already gone and the loop has exited.
        let _ = TcpStream::connect(self.addr);
        self.thread
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
    }
}

/// Serves one connection line by line until EOF or an I/O error.  Client
/// input can only produce error *frames*; it never tears the worker down.
///
/// Responses are serialised straight into a per-connection scratch buffer
/// ([`RequestHandler::handle_line_into`]) that is cleared — not freed —
/// between frames, so steady-state serving performs no per-request
/// allocation; and every served frame's read→flush latency lands in the
/// handler's histogram, surfaced by the `stats` frame.
fn serve_connection(
    stream: TcpStream,
    accepted: Instant,
    handler: &RequestHandler,
    frames: &AtomicU64,
    errors: &AtomicU64,
) {
    // Request/response framing interacts badly with Nagle + delayed ACK
    // (a response spanning two segments stalls ~40ms waiting for the ACK
    // of the first); every response here is one complete frame, so send
    // segments as soon as they are written.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Accept-to-pickup queueing is charged to the connection's *first*
    // frame — both its latency sample and (when sampled) its stage trace —
    // so a saturated worker pool shows up in the histograms rather than
    // vanishing between clocks.
    let mut queue_wait = Some(accepted.elapsed());
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut out = bytes::BytesMut::with_capacity(512);
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF or a torn connection
            Ok(_) => {}
        }
        // The latency clock starts when the request line is in hand and
        // stops after the response flush — transport queueing on *this*
        // request counts, idle time between requests does not.
        let started = Instant::now();
        out.clear();
        let Some(meta) = handler.handle_line_into_traced(&line, &mut out, queue_wait) else {
            continue; // a blank keep-alive; the queue wait stays pending
        };
        let waited = queue_wait.take().unwrap_or_default();
        frames.fetch_add(1, Ordering::Relaxed);
        if meta.is_error {
            errors.fetch_add(1, Ordering::Relaxed);
        }
        // One write per response: payload + newline are already a single
        // buffer (TcpStream is unbuffered, so separate writes would be
        // separate syscalls and potentially separate segments).
        let delivered = writer.write_all(&out).and_then(|()| writer.flush()).is_ok();
        handler
            .metrics()
            .latency()
            .record(started.elapsed() + waited);
        if !delivered {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;
    use usim_core::{SharedQueryEngine, SimRankConfig};

    fn handler() -> RequestHandler {
        let g = UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap();
        let config = SimRankConfig::default().with_samples(100).with_seed(5);
        RequestHandler::new(SharedQueryEngine::new(&g, config), (0..5).collect(), 1024)
    }

    fn ask(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, frame: &str) -> String {
        writeln!(conn, "{frame}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let conn = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        (conn, reader)
    }

    #[test]
    fn serves_concurrent_connections_and_counts_frames() {
        let server = Server::bind(
            "127.0.0.1:0",
            handler(),
            ServerOptions {
                workers: 3,
                queue_depth: 2,
                max_connections: None,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = server.spawn();

        let mut clients: Vec<_> = (0..3).map(|_| connect(addr)).collect();
        let mut answers = Vec::new();
        for (conn, reader) in &mut clients {
            answers.push(ask(
                conn,
                reader,
                r#"{"type":"similarity","source":0,"target":1}"#,
            ));
        }
        // All connections are served the identical deterministic answer.
        assert!(answers[0].contains("\"ok\":true"), "{}", answers[0]);
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
        drop(clients);

        let stats = handle.shutdown().unwrap();
        // `shutdown` wakes the accept loop with a throwaway connection that
        // may or may not be counted before the flag is observed; the three
        // real clients are always there.
        assert!(stats.connections >= 3, "{stats:?}");
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn max_connections_gives_a_clean_exit() {
        let server = Server::bind(
            "127.0.0.1:0",
            handler(),
            ServerOptions {
                workers: 1,
                queue_depth: 1,
                max_connections: Some(2),
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        for _ in 0..2 {
            let (mut conn, mut reader) = connect(addr);
            let line = ask(&mut conn, &mut reader, r#"{"type":"stats"}"#);
            assert!(line.contains("\"vertices\":5"), "{line}");
        }
        let stats = runner.join().unwrap();
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.frames, 2);
    }

    #[test]
    fn zero_connection_budget_serves_nothing() {
        let server = Server::bind(
            "127.0.0.1:0",
            handler(),
            ServerOptions {
                workers: 1,
                queue_depth: 1,
                max_connections: Some(0),
            },
        )
        .unwrap();
        let stats = server.run().unwrap();
        assert_eq!(stats, ServerStats::default());
    }

    #[test]
    fn latency_histogram_counts_every_served_frame() {
        let handler = handler();
        let metrics = Arc::clone(handler.metrics());
        let server = Server::bind(
            "127.0.0.1:0",
            handler,
            ServerOptions {
                workers: 1,
                queue_depth: 1,
                max_connections: Some(1),
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let (mut conn, mut reader) = connect(addr);
        ask(
            &mut conn,
            &mut reader,
            r#"{"type":"similarity","source":0,"target":1}"#,
        );
        writeln!(conn).unwrap(); // blank keep-alive: no frame, no sample
        ask(&mut conn, &mut reader, "{oops");
        ask(&mut conn, &mut reader, r#"{"type":"stats"}"#);
        drop((conn, reader));

        let stats = runner.join().unwrap();
        assert_eq!(stats.frames, 3);
        // Every served frame recorded exactly one latency sample — the
        // coherence the proptest suite pins down at scale.
        assert_eq!(metrics.latency().count(), stats.frames);
        assert_eq!(metrics.requests_of(crate::metrics::RequestKind::Invalid), 1);
    }

    #[test]
    fn malformed_frames_do_not_drop_the_connection() {
        let server = Server::bind(
            "127.0.0.1:0",
            handler(),
            ServerOptions {
                workers: 1,
                queue_depth: 1,
                max_connections: Some(1),
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let (mut conn, mut reader) = connect(addr);
        let bad = ask(&mut conn, &mut reader, "{not json");
        assert!(bad.contains("malformed_frame"), "{bad}");
        // The same connection still answers real queries afterwards.
        let good = ask(
            &mut conn,
            &mut reader,
            r#"{"type":"similarity","source":2,"target":3}"#,
        );
        assert!(good.contains("\"ok\":true"), "{good}");
        drop((conn, reader));

        let stats = runner.join().unwrap();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.errors, 1);
    }
}
