//! Lock-free serving metrics: the shared latency histogram, per
//! request-type counters, and the coalescer's batching counters.
//!
//! Everything here is plain relaxed atomics — recording sits on the serving
//! hot path (one histogram increment per response frame), so there are no
//! locks, no allocation, and no synchronisation beyond the counter itself.
//! Snapshots read the counters without stopping writers: the `stats` frame
//! is an observability view, not a linearisable read (exactly like the
//! cache counters it sits next to).
//!
//! The histogram itself lives in `usim_obs` (re-exported here for
//! compatibility): log-spaced power-of-two buckets, percentile read-back as
//! the bucket's upper bound — exact enough to alarm on, two orders of
//! magnitude cheaper than recording every sample.

use std::sync::atomic::{AtomicU64, Ordering};

pub use usim_obs::LatencyHistogram;

/// The request types the server counts — the eight wire request types plus
/// a bucket for lines that never resolved to one (malformed JSON, unknown
/// types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A `similarity` frame.
    Similarity,
    /// A `profile` frame.
    Profile,
    /// A `top_k` frame.
    TopK,
    /// A `batch` frame.
    Batch,
    /// An `update` frame.
    Update,
    /// A `stats` frame.
    Stats,
    /// A `metrics` (Prometheus exposition) frame.
    Metrics,
    /// A `slow_queries` frame.
    SlowQueries,
    /// A line that parsed to no known request type.
    Invalid,
}

impl RequestKind {
    /// All kinds, in stats-frame order.
    pub const ALL: [RequestKind; 9] = [
        RequestKind::Similarity,
        RequestKind::Profile,
        RequestKind::TopK,
        RequestKind::Batch,
        RequestKind::Update,
        RequestKind::Stats,
        RequestKind::Metrics,
        RequestKind::SlowQueries,
        RequestKind::Invalid,
    ];

    /// The stats-frame field name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Similarity => "similarity",
            RequestKind::Profile => "profile",
            RequestKind::TopK => "top_k",
            RequestKind::Batch => "batch",
            RequestKind::Update => "update",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::SlowQueries => "slow_queries",
            RequestKind::Invalid => "invalid",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestKind::Similarity => 0,
            RequestKind::Profile => 1,
            RequestKind::TopK => 2,
            RequestKind::Batch => 3,
            RequestKind::Update => 4,
            RequestKind::Stats => 5,
            RequestKind::Metrics => 6,
            RequestKind::SlowQueries => 7,
            RequestKind::Invalid => 8,
        }
    }
}

/// Counters the request coalescer maintains (all zero when coalescing is
/// off).
#[derive(Debug, Default)]
pub struct CoalescerCounters {
    /// Requests that went through the coalescer.
    pub requests: AtomicU64,
    /// Engine batches formed (each serves one or more requests).
    pub batches: AtomicU64,
    /// Batches flushed because the collection window expired.
    pub window_flushes: AtomicU64,
    /// Batches flushed because the size cap was reached.
    pub cap_flushes: AtomicU64,
}

/// A point-in-time view of [`CoalescerCounters`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescerSnapshot {
    /// Requests that went through the coalescer.
    pub requests: u64,
    /// Engine batches formed.
    pub batches: u64,
    /// Window-expiry flushes.
    pub window_flushes: u64,
    /// Size-cap flushes.
    pub cap_flushes: u64,
    /// `requests / batches` (0 when no batch has formed yet).
    pub mean_occupancy: f64,
}

/// The serving metrics one server (transport + handler) shares: the latency
/// histogram fed by the transport at read→flush boundaries, the per
/// request-type counters fed by the protocol layer, and the coalescer's
/// batching counters.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    latency: LatencyHistogram,
    kinds: [AtomicU64; 9],
    coalescer: CoalescerCounters,
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram (record at request-read → response-flush
    /// boundaries).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Counts one request of `kind`.
    pub fn count_request(&self, kind: RequestKind) {
        self.kinds[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// How many requests of `kind` have been counted.
    pub fn requests_of(&self, kind: RequestKind) -> u64 {
        self.kinds[kind.index()].load(Ordering::Relaxed)
    }

    /// The coalescer's counters (written by [`crate::coalesce::Coalescer`]).
    pub fn coalescer(&self) -> &CoalescerCounters {
        &self.coalescer
    }

    /// A consistent-enough snapshot of the coalescer counters.
    pub fn coalescer_snapshot(&self) -> CoalescerSnapshot {
        let requests = self.coalescer.requests.load(Ordering::Relaxed);
        let batches = self.coalescer.batches.load(Ordering::Relaxed);
        CoalescerSnapshot {
            requests,
            batches,
            window_flushes: self.coalescer.window_flushes.load(Ordering::Relaxed),
            cap_flushes: self.coalescer.cap_flushes.load(Ordering::Relaxed),
            mean_occupancy: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound_us(0.5), 0);
        for micros in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 7);
        // All samples fit under 2^17 µs = 131072 µs.
        assert!(h.quantile_upper_bound_us(1.0) <= 1 << 17);
        // The median of {0,1,2,3,100,1000,100000} is 3 -> bucket [2,4).
        assert_eq!(h.quantile_upper_bound_us(0.5), 4);
        // Monotone in q.
        let p50 = h.quantile_upper_bound_us(0.5);
        let p90 = h.quantile_upper_bound_us(0.9);
        let p99 = h.quantile_upper_bound_us(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
    }

    #[test]
    fn histogram_survives_extreme_samples() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(60 * 60 * 24)); // a day -> top bucket
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_upper_bound_us(0.0), 1); // the 0µs sample
        assert_eq!(h.quantile_upper_bound_us(1.0), 1u64 << 31);
    }

    #[test]
    fn request_kinds_count_independently() {
        let m = ServeMetrics::new();
        m.count_request(RequestKind::Batch);
        m.count_request(RequestKind::Batch);
        m.count_request(RequestKind::Stats);
        assert_eq!(m.requests_of(RequestKind::Batch), 2);
        assert_eq!(m.requests_of(RequestKind::Stats), 1);
        assert_eq!(m.requests_of(RequestKind::Invalid), 0);
    }

    #[test]
    fn coalescer_snapshot_computes_mean_occupancy() {
        let m = ServeMetrics::new();
        assert_eq!(m.coalescer_snapshot().mean_occupancy, 0.0);
        m.coalescer().requests.fetch_add(6, Ordering::Relaxed);
        m.coalescer().batches.fetch_add(2, Ordering::Relaxed);
        m.coalescer().window_flushes.fetch_add(1, Ordering::Relaxed);
        m.coalescer().cap_flushes.fetch_add(1, Ordering::Relaxed);
        let snap = m.coalescer_snapshot();
        assert_eq!(snap.mean_occupancy, 3.0);
        assert_eq!(snap.window_flushes + snap.cap_flushes, snap.batches);
    }
}
