//! A minimal plaintext Prometheus exporter sidecar.
//!
//! `usim serve --metrics-port P` binds a second listener that answers every
//! connection with one `HTTP/1.0` response carrying
//! [`crate::RequestHandler::prometheus_exposition`] — the identical body the
//! `metrics` wire frame wraps in JSON.  HTTP/1.0 with `Connection: close`
//! keeps the implementation to a single write: no keep-alive, no request
//! parsing beyond draining the header block, which is all a Prometheus
//! scrape (or `curl`) needs.
//!
//! The exporter runs one thread and shares the [`RequestHandler`] through
//! an `Arc`; every snapshot it renders is the same lock-free counter read
//! the `stats` frame performs, so scrapes never contend with serving.

use crate::protocol::RequestHandler;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running metrics exporter (see [`MetricsExporter::bind`]).
#[derive(Debug)]
pub struct MetricsExporter {
    listener: TcpListener,
    handler: Arc<RequestHandler>,
}

impl MetricsExporter {
    /// Binds `addr` (port `0` picks a free port) without serving yet.
    pub fn bind(addr: &str, handler: Arc<RequestHandler>) -> std::io::Result<MetricsExporter> {
        let listener = TcpListener::bind(addr)?;
        Ok(MetricsExporter { listener, handler })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// Serves scrapes on a background thread; stop it through the returned
    /// handle.
    pub fn spawn(self) -> ExporterHandle {
        let addr = self.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            for stream in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // A scrape failing (torn connection, slow client) must never
                // affect the query server; drop it and accept the next.
                let _ = serve_scrape(stream, &self.handler);
            }
        });
        ExporterHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// A running background exporter (see [`MetricsExporter::spawn`]).
#[derive(Debug)]
pub struct ExporterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ExporterHandle {
    /// The address scrapes are served on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting scrapes and joins the exporter thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; if that
        // fails the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// Answers one scrape: drain the request head, write one full response.
fn serve_scrape(stream: TcpStream, handler: &RequestHandler) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // Drain header lines until the blank separator (or EOF) so the client
    // never sees a reset while still sending; the request itself (path,
    // method) is irrelevant — every scrape gets the full exposition.
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
        }
    }
    let body = handler.prometheus_exposition();
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestHandler;
    use ugraph::UncertainGraphBuilder;
    use usim_core::{SharedQueryEngine, SimRankConfig};

    fn handler() -> Arc<RequestHandler> {
        let g = UncertainGraphBuilder::new(3)
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.8)
            .build()
            .unwrap();
        let engine = SharedQueryEngine::new(&g, SimRankConfig::default().with_samples(60));
        Arc::new(RequestHandler::new(engine, (0..3).collect(), 1024).with_tracing(1.0, 8))
    }

    #[test]
    fn scrapes_return_the_exposition_over_http() {
        let handler = handler();
        // Warm a counter so the body is non-trivial.
        handler
            .handle_line(r#"{"type":"similarity","source":0,"target":1}"#)
            .unwrap();
        let exporter = MetricsExporter::bind("127.0.0.1:0", Arc::clone(&handler)).unwrap();
        let addr = exporter.local_addr();
        let running = exporter.spawn();

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
        drop(conn);
        running.shutdown();

        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(
            body.contains("usim_requests_total{kind=\"similarity\"} 1"),
            "{body}"
        );
        assert!(body.contains("# TYPE usim_request_duration_seconds histogram"));
        assert!(body.contains("usim_traced_requests_total 1"), "{body}");
        // The advertised length matches the body exactly.
        let length: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(length, body.len());
    }
}
