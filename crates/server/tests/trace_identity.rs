//! Property test: tracing never changes a single response byte.
//!
//! Two [`RequestHandler`]s over the same graph, config and deployment shape
//! — one bare, one with stage tracing at sample rate 1.0 (every request
//! traced, the strongest case) plus walk metrics — must answer every frame
//! sequence byte-identically, across samplers (legacy/alias), shard counts,
//! result caching and request coalescing.  This is the contract that lets
//! operators flip tracing on in production without re-validating answers:
//! instrumentation reads clocks and bumps relaxed counters, and must never
//! consume an RNG draw or branch on a sampled value.
//!
//! The same run also pins the stage-sum invariant on everything the slow
//! log kept: per-stage timings are disjoint slices of a request's wall
//! time, so their sum can never exceed the request's end-to-end total.

use proptest::prelude::*;
use std::time::Duration;
use ugraph::UncertainGraphBuilder;
use usim_core::{SamplerKind, ShardSpec, ShardedQueryEngine, SimRankConfig};
use usim_server::{CoalesceOptions, RequestHandler, DEFAULT_MAX_BATCH};

fn fig1_graph() -> ugraph::UncertainGraph {
    UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .unwrap()
}

/// One deployment shape + frame sequence drawn per case.
#[derive(Debug)]
struct Case {
    shards: usize,
    alias: bool,
    cached: bool,
    coalesced: bool,
    frames: Vec<String>,
}

fn cases() -> impl Strategy<Value = Case> {
    (
        1usize..4,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec((0u32..5, 10u64..15, 10u64..15, 1u64..5), 4..16),
    )
        .prop_map(|(shards, alias, cached, coalesced, picks)| {
            let frames = picks
                .into_iter()
                .map(|(kind, u, v, k)| match kind {
                    0 => format!(r#"{{"type":"similarity","source":{u},"target":{v}}}"#),
                    1 => format!(r#"{{"type":"profile","source":{u},"target":{v}}}"#),
                    2 => format!(r#"{{"type":"top_k","source":{u},"k":{k}}}"#),
                    3 => format!(r#"{{"type":"batch","pairs":[[{u},{v}],[{v},{u}],[10,14]]}}"#),
                    // An accepted update moves the epoch mid-sequence, so
                    // identity also covers overlay-patched answers.
                    _ => format!(
                        r#"{{"type":"update","updates":[{{"op":"set","source":{u},"target":{v},"probability":0.35}}]}}"#
                    ),
                })
                .collect();
            Case {
                shards,
                alias,
                cached,
                coalesced,
                frames,
            }
        })
}

fn build_handler(case: &Case, traced: bool) -> RequestHandler {
    let mut config = SimRankConfig::default().with_samples(80).with_seed(7);
    if case.alias {
        config = config.with_sampler(SamplerKind::Alias);
    }
    let spec = ShardSpec {
        shards: case.shards,
        threads_per_shard: 0,
        cache_capacity: if case.cached { 64 } else { 0 },
    };
    let mut handler = RequestHandler::sharded(
        ShardedQueryEngine::new(&fig1_graph(), config, spec),
        (10..15).collect(),
        DEFAULT_MAX_BATCH,
    );
    if case.coalesced {
        handler = handler.with_coalescing(CoalesceOptions {
            window: Duration::from_micros(50),
            cap: 4,
        });
    }
    if traced {
        handler = handler.with_tracing(1.0, 16).with_walk_metrics();
    }
    handler
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tracing_is_byte_invisible_on_the_wire(case in cases()) {
        let bare = build_handler(&case, false);
        let traced = build_handler(&case, true);
        for frame in &case.frames {
            let expected = bare.handle_line(frame).unwrap();
            let observed = traced.handle_line(frame).unwrap();
            prop_assert_eq!(
                &observed.json,
                &expected.json,
                "tracing changed bytes for {} (shards {}, alias {}, cached {}, coalesced {})",
                frame,
                case.shards,
                case.alias,
                case.cached,
                case.coalesced
            );
            prop_assert_eq!(observed.is_error, expected.is_error);
        }

        // Every traced request the slow log kept obeys the stage-sum
        // invariant: disjoint stage slices never sum past the total.
        let tracer = traced.tracer().expect("traced handler has a tracer");
        let slow = tracer.slow_log().snapshot();
        prop_assert!(!slow.is_empty(), "rate-1.0 tracing must feed the slow log");
        for entry in &slow {
            let stage_sum: u64 = entry.stages_us.iter().sum();
            prop_assert!(
                stage_sum <= entry.total_us,
                "stage sum {}us > total {}us (trace {}, kind {})",
                stage_sum,
                entry.total_us,
                entry.trace_id,
                entry.kind
            );
        }
    }
}
