//! Protocol robustness over a real socket: every class of malformed or
//! hostile input must come back as a typed error *frame* on a connection
//! that stays up — no panic, no disconnect — while interleaved updates and
//! queries on the same connection stay consistent.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use ugraph::{GraphUpdate, UncertainGraph, UncertainGraphBuilder};
use usim_core::{QueryEngine, SharedQueryEngine, SimRankConfig};
use usim_server::{RequestHandler, Server, ServerOptions};

fn fig1_graph() -> UncertainGraph {
    UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .unwrap()
}

fn config() -> SimRankConfig {
    SimRankConfig::default().with_samples(120).with_seed(13)
}

/// Spawns a server with a small batch cap and `workers` worker threads.
fn spawn(workers: usize) -> usim_server::ServerHandle {
    let handler = RequestHandler::new(
        SharedQueryEngine::new(&fig1_graph(), config()),
        (0..5).collect(),
        8, // small cap so the oversized-batch path is reachable
    );
    Server::bind(
        "127.0.0.1:0",
        handler,
        ServerOptions {
            workers,
            queue_depth: 4,
            max_connections: None,
        },
    )
    .unwrap()
    .spawn()
}

fn ask(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, frame: &str) -> String {
    writeln!(conn, "{frame}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "response is one full line: {line:?}");
    line.trim_end().to_string()
}

#[test]
fn every_malformed_frame_is_a_typed_error_on_a_live_connection() {
    let handle = spawn(2);
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // (frame, expected code, expected message fragment) — one connection
    // survives the whole gauntlet.
    let cases = [
        ("{", "malformed_frame", "invalid JSON"),
        ("nonsense", "malformed_frame", "invalid JSON"),
        ("[]", "malformed_frame", "expected a JSON object"),
        ("true", "malformed_frame", "expected a JSON object"),
        (r#"{"source":1}"#, "malformed_frame", "missing field `type`"),
        (r#"{"type":[]}"#, "malformed_frame", "field `type`"),
        (
            r#"{"type":"topk"}"#,
            "unknown_request_type",
            "unknown request type",
        ),
        (
            r#"{"type":"similarity","target":1}"#,
            "bad_field",
            "missing field `source`",
        ),
        (
            r#"{"type":"similarity","source":-1,"target":1}"#,
            "bad_field",
            "field `source`",
        ),
        (
            r#"{"type":"similarity","source":0.5,"target":1}"#,
            "bad_field",
            "field `source`",
        ),
        (
            r#"{"type":"similarity","source":0,"target":1,"extra":true}"#,
            "bad_field",
            "unknown field `extra`",
        ),
        // Out-of-range / unknown vertex ids never reach the CSR arrays.
        (
            r#"{"type":"similarity","source":0,"target":4294967295}"#,
            "unknown_vertex",
            "vertex 4294967295 does not appear",
        ),
        (
            r#"{"type":"top_k","source":99,"k":3}"#,
            "unknown_vertex",
            "vertex 99 does not appear",
        ),
        (
            r#"{"type":"batch","pairs":[[0,1],[2,77]]}"#,
            "unknown_vertex",
            "vertex 77 does not appear",
        ),
        (
            r#"{"type":"top_k","source":0,"k":"three"}"#,
            "bad_field",
            "field `k`",
        ),
        (
            r#"{"type":"batch","pairs":7}"#,
            "bad_field",
            "field `pairs`",
        ),
        (
            r#"{"type":"batch","pairs":[[0,1,2]]}"#,
            "bad_field",
            "field `pairs[0]`",
        ),
        // Oversized batch (server cap is 8).
        (
            r#"{"type":"batch","pairs":[[0,1],[0,2],[0,3],[0,4],[1,2],[1,3],[1,4],[2,3],[2,4]]}"#,
            "oversized_batch",
            "maximum of 8",
        ),
        (
            r#"{"type":"update","updates":[[0,1,0.5]]}"#,
            "bad_field",
            "updates[0]",
        ),
        (
            r#"{"type":"update","updates":[{"op":"insert","source":0,"target":1,"probability":"p"}]}"#,
            "bad_field",
            "updates[0].probability",
        ),
        (
            r#"{"type":"update","updates":[{"op":"delete","source":0,"target":4}]}"#,
            "update_rejected",
            "arc (0, 4) does not exist",
        ),
        (
            r#"{"type":"update","updates":[{"op":"insert","source":0,"target":1,"probability":1.5}]}"#,
            "update_rejected",
            "probabilities must lie in (0, 1]",
        ),
        (
            r#"{"type":"stats","verbose":true}"#,
            "bad_field",
            "unknown field `verbose`",
        ),
    ];
    for (frame, code, fragment) in cases {
        let response = ask(&mut conn, &mut reader, frame);
        assert!(
            response.contains("\"ok\":false"),
            "{frame} should fail, got {response}"
        );
        assert!(
            response.contains(&format!("\"code\":\"{code}\"")),
            "{frame}: expected code {code}, got {response}"
        );
        assert!(
            response.contains(fragment),
            "{frame}: expected message fragment {fragment:?}, got {response}"
        );
    }

    // After the whole gauntlet the connection still answers — and, because
    // every hostile update above was rejected atomically, at epoch 0 with
    // pristine scores.
    let response = ask(
        &mut conn,
        &mut reader,
        r#"{"type":"similarity","source":0,"target":1}"#,
    );
    let expected = QueryEngine::new(&fig1_graph(), config()).similarity(0, 1);
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"epoch\":0"), "{response}");
    assert!(
        response.contains(&format!("\"score\":{expected}")),
        "{response} vs {expected}"
    );
    drop((conn, reader));
    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.errors, cases.len() as u64);
    assert_eq!(stats.frames, cases.len() as u64 + 1);
}

#[test]
fn interleaved_updates_and_queries_stay_epoch_consistent() {
    let handle = spawn(3);
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    // A second observer connection sees the same epochs and scores.
    let mut observer = TcpStream::connect(handle.addr()).unwrap();
    let mut observer_reader = BufReader::new(observer.try_clone().unwrap());

    // Reference: a local engine applying the same rounds.
    let mut reference = QueryEngine::new(&fig1_graph(), config());
    let rounds: Vec<Vec<GraphUpdate>> = vec![
        vec![GraphUpdate::SetProbability {
            source: 0,
            target: 2,
            probability: 0.2,
        }],
        vec![
            GraphUpdate::DeleteArc {
                source: 3,
                target: 4,
            },
            GraphUpdate::InsertArc {
                source: 4,
                target: 0,
                probability: 0.7,
            },
        ],
        vec![GraphUpdate::SetProbability {
            source: 1,
            target: 0,
            probability: 0.95,
        }],
    ];
    let wire_rounds = [
        r#"{"type":"update","updates":[{"op":"set","source":0,"target":2,"probability":0.2}]}"#,
        r#"{"type":"update","updates":[{"op":"delete","source":3,"target":4},{"op":"insert","source":4,"target":0,"probability":0.7}]}"#,
        r#"{"type":"update","updates":[{"op":"set","source":1,"target":0,"probability":0.95}]}"#,
    ];

    for (round, (updates, frame)) in rounds.iter().zip(&wire_rounds).enumerate() {
        let epoch = round as u64 + 1;
        let response = ask(&mut conn, &mut reader, frame);
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(
            response.contains(&format!("\"epoch\":{epoch}")),
            "round {round}: {response}"
        );
        reference.apply_updates(updates).unwrap();

        // The updating connection and the observer both see the new epoch
        // and scores bit-identical to the reference engine.
        let expected = reference.similarity(0, 1);
        for (c, r) in [
            (&mut conn, &mut reader),
            (&mut observer, &mut observer_reader),
        ] {
            let response = ask(c, r, r#"{"type":"similarity","source":0,"target":1}"#);
            assert!(
                response.contains(&format!("\"epoch\":{epoch}")),
                "round {round}: {response}"
            );
            assert!(
                response.contains(&format!("\"score\":{expected}")),
                "round {round}: {response} vs {expected}"
            );
        }
    }

    // A stats frame agrees on the final shape.
    let response = ask(&mut conn, &mut reader, r#"{"type":"stats"}"#);
    assert!(response.contains("\"epoch\":3"), "{response}");
    assert!(
        response.contains(&format!("\"arcs\":{}", reference.num_arcs())),
        "{response}"
    );
    drop((conn, reader, observer, observer_reader));
    handle.shutdown().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let handle = spawn(2);
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // Write a burst of frames before reading anything; the line protocol
    // guarantees responses come back in request order.
    let frames = [
        r#"{"type":"similarity","source":0,"target":1}"#,
        r#"{"type":"similarity","source":1,"target":2}"#,
        "garbage",
        r#"{"type":"similarity","source":2,"target":3}"#,
    ];
    for frame in frames {
        writeln!(conn, "{frame}").unwrap();
    }
    let engine = QueryEngine::new(&fig1_graph(), config());
    let expected = [
        Some(engine.similarity(0, 1)),
        Some(engine.similarity(1, 2)),
        None,
        Some(engine.similarity(2, 3)),
    ];
    for (frame, want) in frames.iter().zip(expected) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match want {
            Some(score) => assert!(
                line.contains(&format!("\"score\":{score}")),
                "{frame}: {line}"
            ),
            None => assert!(line.contains("malformed_frame"), "{frame}: {line}"),
        }
    }
    drop((conn, reader));
    handle.shutdown().unwrap();
}
