//! Neighborhood-based similarity measures for deterministic and uncertain
//! graphs.
//!
//! The paper's measure-comparison experiment (Fig. 7 / Table III) contrasts
//! its uncertain SimRank with
//!
//! * **Jaccard-I** — the *expected* Jaccard similarity over possible worlds
//!   (the structural-context similarity of Zou & Li \[44\]), and
//! * **Jaccard-II** — plain Jaccard similarity on the deterministic skeleton,
//!
//! and the related work section mentions the expected Dice and cosine
//! variants from the same prior work.  This crate implements all of them:
//! the deterministic measures in [`deterministic`], their expectations under
//! the possible-world model in [`expected`] (exact dynamic programming over
//! the independent incident arcs, with a Monte-Carlo fallback for
//! high-degree vertices).
//!
//! Unlike SimRank, all of these measures are local: they are zero whenever
//! the two vertices share no (possible) common neighbor — which is exactly
//! the limitation that motivates SimRank in the paper's introduction.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod deterministic;
pub mod expected;

pub use deterministic::{cosine, dice, jaccard, NeighborhoodMode};
pub use expected::{
    expected_cosine, expected_dice, expected_jaccard, monte_carlo_expected_jaccard,
};
