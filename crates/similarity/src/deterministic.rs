//! Jaccard, Dice and cosine similarity on deterministic graphs.

use ugraph::{DiGraph, VertexId};

/// Which neighborhood the common-neighbor measures are computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborhoodMode {
    /// In-neighbors (the direction SimRank recurses over); the default.
    #[default]
    In,
    /// Out-neighbors.
    Out,
}

pub(crate) fn neighborhood(g: &DiGraph, v: VertexId, mode: NeighborhoodMode) -> &[VertexId] {
    match mode {
        NeighborhoodMode::In => g.in_neighbors(v),
        NeighborhoodMode::Out => g.out_neighbors(v),
    }
}

/// Size of the intersection of two sorted, duplicate-free slices.
pub(crate) fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard similarity `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|` (0 when both
/// neighborhoods are empty).
pub fn jaccard(g: &DiGraph, u: VertexId, v: VertexId, mode: NeighborhoodMode) -> f64 {
    let (a, b) = (neighborhood(g, u, mode), neighborhood(g, v, mode));
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice similarity `2·|N(u) ∩ N(v)| / (|N(u)| + |N(v)|)` (0 when both
/// neighborhoods are empty).
pub fn dice(g: &DiGraph, u: VertexId, v: VertexId, mode: NeighborhoodMode) -> f64 {
    let (a, b) = (neighborhood(g, u, mode), neighborhood(g, v, mode));
    let inter = intersection_size(a, b);
    let total = a.len() + b.len();
    if total == 0 {
        0.0
    } else {
        2.0 * inter as f64 / total as f64
    }
}

/// Cosine similarity `|N(u) ∩ N(v)| / √(|N(u)|·|N(v)|)` (0 when either
/// neighborhood is empty).
pub fn cosine(g: &DiGraph, u: VertexId, v: VertexId, mode: NeighborhoodMode) -> f64 {
    let (a, b) = (neighborhood(g, u, mode), neighborhood(g, v, mode));
    let inter = intersection_size(a, b);
    if a.is_empty() || b.is_empty() {
        0.0
    } else {
        inter as f64 / ((a.len() * b.len()) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::DiGraphBuilder;

    /// 0 and 1 share in-neighbors {2, 3}; 0 additionally has in-neighbor 4.
    fn g() -> DiGraph {
        DiGraphBuilder::new(6)
            .arc(2, 0)
            .arc(3, 0)
            .arc(4, 0)
            .arc(2, 1)
            .arc(3, 1)
            .arc(0, 5)
            .build()
            .unwrap()
    }

    #[test]
    fn jaccard_dice_cosine_hand_checked() {
        let g = g();
        // |N(0)| = 3, |N(1)| = 2, intersection = 2, union = 3.
        assert!((jaccard(&g, 0, 1, NeighborhoodMode::In) - 2.0 / 3.0).abs() < 1e-12);
        assert!((dice(&g, 0, 1, NeighborhoodMode::In) - 4.0 / 5.0).abs() < 1e-12);
        assert!((cosine(&g, 0, 1, NeighborhoodMode::In) - 2.0 / 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn measures_are_symmetric_and_bounded() {
        let g = g();
        for mode in [NeighborhoodMode::In, NeighborhoodMode::Out] {
            for u in 0..6u32 {
                for v in 0..6u32 {
                    for f in [jaccard, dice, cosine] {
                        let s = f(&g, u, v, mode);
                        assert!((0.0..=1.0 + 1e-12).contains(&s));
                        assert!((s - f(&g, v, u, mode)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn identical_nonempty_neighborhoods_give_one() {
        let g = DiGraphBuilder::new(4)
            .arc(2, 0)
            .arc(2, 1)
            .arc(3, 0)
            .arc(3, 1)
            .build()
            .unwrap();
        assert_eq!(jaccard(&g, 0, 1, NeighborhoodMode::In), 1.0);
        assert_eq!(dice(&g, 0, 1, NeighborhoodMode::In), 1.0);
        assert_eq!(cosine(&g, 0, 1, NeighborhoodMode::In), 1.0);
    }

    #[test]
    fn no_common_neighbors_gives_zero() {
        let g = DiGraphBuilder::new(4).arc(2, 0).arc(3, 1).build().unwrap();
        assert_eq!(jaccard(&g, 0, 1, NeighborhoodMode::In), 0.0);
        assert_eq!(dice(&g, 0, 1, NeighborhoodMode::In), 0.0);
        assert_eq!(cosine(&g, 0, 1, NeighborhoodMode::In), 0.0);
    }

    #[test]
    fn empty_neighborhoods_give_zero_not_nan() {
        let g = DiGraphBuilder::new(3).arc(0, 1).build().unwrap();
        // Vertices 0 and 2 have no in-neighbors at all.
        assert_eq!(jaccard(&g, 0, 2, NeighborhoodMode::In), 0.0);
        assert_eq!(dice(&g, 0, 2, NeighborhoodMode::In), 0.0);
        assert_eq!(cosine(&g, 0, 2, NeighborhoodMode::In), 0.0);
    }

    #[test]
    fn in_and_out_modes_differ() {
        let g = g();
        assert!(jaccard(&g, 0, 1, NeighborhoodMode::In) > 0.0);
        assert_eq!(jaccard(&g, 0, 1, NeighborhoodMode::Out), 0.0);
    }

    #[test]
    fn intersection_size_edge_cases() {
        assert_eq!(intersection_size(&[], &[]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size(&[1, 5, 9], &[2, 6, 10]), 0);
    }
}
