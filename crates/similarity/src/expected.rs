//! Expected Jaccard / Dice / cosine similarity over the possible worlds of an
//! uncertain graph (the structural-context similarities of Zou & Li \[44\],
//! used as the Jaccard-I baseline in the paper's experiments).
//!
//! For two query vertices `u` and `v`, each candidate common neighbor `w`
//! contributes two independent Bernoulli arcs (`w → u` and `w → v` for the
//! in-neighborhood mode), so the joint distribution of
//! (`|N(u) ∩ N(v)|`, `|N(u) ∪ N(v)|`) — and hence the expectation of any
//! ratio of them — can be computed exactly by a dynamic program over the
//! candidates in `O(m³)` time for `m` incident arcs.  For high-degree
//! vertices a Monte-Carlo estimator is provided.

use crate::deterministic::NeighborhoodMode;
use rand::Rng;
use ugraph::{Probability, UncertainGraph, VertexId};

/// Per-candidate presence probabilities of the arcs towards `u` and `v`.
fn candidate_probabilities(
    g: &UncertainGraph,
    u: VertexId,
    v: VertexId,
    mode: NeighborhoodMode,
) -> Vec<(Probability, Probability)> {
    let (u_neighbors, u_probs) = match mode {
        NeighborhoodMode::In => g.in_arcs(u),
        NeighborhoodMode::Out => g.out_arcs(u),
    };
    let (v_neighbors, v_probs) = match mode {
        NeighborhoodMode::In => g.in_arcs(v),
        NeighborhoodMode::Out => g.out_arcs(v),
    };
    // Merge the two sorted candidate lists.
    let mut result = Vec::with_capacity(u_neighbors.len() + v_neighbors.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < u_neighbors.len() || j < v_neighbors.len() {
        let next_u = u_neighbors.get(i).copied();
        let next_v = v_neighbors.get(j).copied();
        match (next_u, next_v) {
            (Some(a), Some(b)) if a == b => {
                result.push((u_probs[i], v_probs[j]));
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                result.push((u_probs[i], 0.0));
                i += 1;
            }
            (Some(_), Some(_)) => {
                result.push((0.0, v_probs[j]));
                j += 1;
            }
            (Some(_), None) => {
                result.push((u_probs[i], 0.0));
                i += 1;
            }
            (None, Some(_)) => {
                result.push((0.0, v_probs[j]));
                j += 1;
            }
            (None, None) => unreachable!("loop condition guarantees one side remains"),
        }
    }
    result
}

/// Joint distribution of (`|N(u) ∩ N(v)|`, `|N(u)|`, `|N(v)|`) as a dense
/// 3-dimensional table `dist[i][a][b]`.
fn joint_distribution(candidates: &[(Probability, Probability)]) -> Vec<Vec<Vec<f64>>> {
    let m = candidates.len();
    let mut dist = vec![vec![vec![0.0; m + 1]; m + 1]; m + 1];
    dist[0][0][0] = 1.0;
    for (step, &(pu, pv)) in candidates.iter().enumerate() {
        let limit = step + 1;
        // Iterate backwards so each candidate is applied once.
        for i in (0..limit).rev() {
            for a in (0..limit).rev() {
                for b in (0..limit).rev() {
                    let mass = dist[i][a][b];
                    if mass == 0.0 {
                        continue;
                    }
                    dist[i][a][b] = 0.0;
                    let both = pu * pv;
                    let only_u = pu * (1.0 - pv);
                    let only_v = (1.0 - pu) * pv;
                    let neither = (1.0 - pu) * (1.0 - pv);
                    if both > 0.0 {
                        dist[i + 1][a + 1][b + 1] += mass * both;
                    }
                    if only_u > 0.0 {
                        dist[i][a + 1][b] += mass * only_u;
                    }
                    if only_v > 0.0 {
                        dist[i][a][b + 1] += mass * only_v;
                    }
                    if neither > 0.0 {
                        dist[i][a][b] += mass * neither;
                    }
                }
            }
        }
    }
    dist
}

fn expectation_over_joint(
    g: &UncertainGraph,
    u: VertexId,
    v: VertexId,
    mode: NeighborhoodMode,
    f: impl Fn(usize, usize, usize) -> f64,
) -> f64 {
    let candidates = candidate_probabilities(g, u, v, mode);
    let dist = joint_distribution(&candidates);
    let m = candidates.len();
    let mut total = 0.0;
    debug_assert_eq!(dist.len(), m + 1);
    for (i, plane) in dist.iter().enumerate() {
        for (a, row) in plane.iter().enumerate() {
            for (b, &mass) in row.iter().enumerate() {
                if mass > 0.0 {
                    total += mass * f(i, a, b);
                }
            }
        }
    }
    total
}

/// Exact expected Jaccard similarity
/// `E[ |N(u) ∩ N(v)| / |N(u) ∪ N(v)| ]` (0/0 counted as 0).
pub fn expected_jaccard(
    g: &UncertainGraph,
    u: VertexId,
    v: VertexId,
    mode: NeighborhoodMode,
) -> f64 {
    expectation_over_joint(g, u, v, mode, |i, a, b| {
        let union = a + b - i;
        if union == 0 {
            0.0
        } else {
            i as f64 / union as f64
        }
    })
}

/// Exact expected Dice similarity `E[ 2|N(u) ∩ N(v)| / (|N(u)| + |N(v)|) ]`.
pub fn expected_dice(g: &UncertainGraph, u: VertexId, v: VertexId, mode: NeighborhoodMode) -> f64 {
    expectation_over_joint(g, u, v, mode, |i, a, b| {
        if a + b == 0 {
            0.0
        } else {
            2.0 * i as f64 / (a + b) as f64
        }
    })
}

/// Exact expected cosine similarity `E[ |N(u) ∩ N(v)| / √(|N(u)|·|N(v)|) ]`.
pub fn expected_cosine(
    g: &UncertainGraph,
    u: VertexId,
    v: VertexId,
    mode: NeighborhoodMode,
) -> f64 {
    expectation_over_joint(g, u, v, mode, |i, a, b| {
        if a == 0 || b == 0 {
            0.0
        } else {
            i as f64 / ((a * b) as f64).sqrt()
        }
    })
}

/// Monte-Carlo estimate of the expected Jaccard similarity, for vertex pairs
/// whose combined degree makes the exact dynamic program too expensive.
pub fn monte_carlo_expected_jaccard<R: Rng + ?Sized>(
    g: &UncertainGraph,
    u: VertexId,
    v: VertexId,
    mode: NeighborhoodMode,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "at least one sample is required");
    let candidates = candidate_probabilities(g, u, v, mode);
    let mut total = 0.0;
    for _ in 0..samples {
        let mut intersection = 0usize;
        let mut union = 0usize;
        for &(pu, pv) in &candidates {
            let in_u = pu > 0.0 && rng.gen::<f64>() < pu;
            let in_v = pv > 0.0 && rng.gen::<f64>() < pv;
            if in_u && in_v {
                intersection += 1;
            }
            if in_u || in_v {
                union += 1;
            }
        }
        if union > 0 {
            total += intersection as f64 / union as f64;
        }
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deterministic::{cosine, dice, jaccard};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ugraph::possible_world::expectation_over_worlds;
    use ugraph::UncertainGraphBuilder;

    /// 0 and 1 have possible in-neighbors {2, 3, 4} with various overlaps.
    fn toy() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(2, 0, 0.8)
            .arc(3, 0, 0.5)
            .arc(4, 0, 0.3)
            .arc(2, 1, 0.9)
            .arc(3, 1, 0.4)
            .build()
            .unwrap()
    }

    #[test]
    fn expected_measures_match_possible_world_enumeration() {
        let g = toy();
        let mode = NeighborhoodMode::In;
        let brute_jaccard = expectation_over_worlds(&g, |world| jaccard(world, 0, 1, mode));
        let brute_dice = expectation_over_worlds(&g, |world| dice(world, 0, 1, mode));
        let brute_cosine = expectation_over_worlds(&g, |world| cosine(world, 0, 1, mode));
        assert!((expected_jaccard(&g, 0, 1, mode) - brute_jaccard).abs() < 1e-10);
        assert!((expected_dice(&g, 0, 1, mode) - brute_dice).abs() < 1e-10);
        assert!((expected_cosine(&g, 0, 1, mode) - brute_cosine).abs() < 1e-10);
    }

    #[test]
    fn certain_graph_recovers_deterministic_measures() {
        let g = toy().certain();
        let mode = NeighborhoodMode::In;
        assert!(
            (expected_jaccard(&g, 0, 1, mode) - jaccard(g.skeleton(), 0, 1, mode)).abs() < 1e-12
        );
        assert!((expected_dice(&g, 0, 1, mode) - dice(g.skeleton(), 0, 1, mode)).abs() < 1e-12);
        assert!((expected_cosine(&g, 0, 1, mode) - cosine(g.skeleton(), 0, 1, mode)).abs() < 1e-12);
    }

    #[test]
    fn no_possible_common_neighbors_gives_zero() {
        let g = UncertainGraphBuilder::new(4)
            .arc(2, 0, 0.9)
            .arc(3, 1, 0.9)
            .build()
            .unwrap();
        assert_eq!(expected_jaccard(&g, 0, 1, NeighborhoodMode::In), 0.0);
        assert_eq!(expected_dice(&g, 0, 1, NeighborhoodMode::In), 0.0);
        assert_eq!(expected_cosine(&g, 0, 1, NeighborhoodMode::In), 0.0);
    }

    #[test]
    fn expected_values_are_bounded_and_symmetric() {
        let g = toy();
        for mode in [NeighborhoodMode::In, NeighborhoodMode::Out] {
            for u in 0..5u32 {
                for v in 0..5u32 {
                    for f in [expected_jaccard, expected_dice, expected_cosine] {
                        let s = f(&g, u, v, mode);
                        assert!((0.0..=1.0 + 1e-12).contains(&s), "({u},{v}) = {s}");
                        assert!((s - f(&g, v, u, mode)).abs() < 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn uncertainty_lowers_the_jaccard_of_fully_overlapping_neighborhoods() {
        // Same topology, different probabilities: the deterministic Jaccard
        // is 1, the expected Jaccard is strictly smaller.
        let g = UncertainGraphBuilder::new(4)
            .arc(2, 0, 0.5)
            .arc(3, 0, 0.5)
            .arc(2, 1, 0.5)
            .arc(3, 1, 0.5)
            .build()
            .unwrap();
        let deterministic = jaccard(g.skeleton(), 0, 1, NeighborhoodMode::In);
        let expected = expected_jaccard(&g, 0, 1, NeighborhoodMode::In);
        assert_eq!(deterministic, 1.0);
        assert!(
            expected < 0.7,
            "expected Jaccard {expected} should drop well below 1"
        );
        assert!(expected > 0.0);
    }

    #[test]
    fn monte_carlo_matches_exact() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(19);
        let exact = expected_jaccard(&g, 0, 1, NeighborhoodMode::In);
        let estimate =
            monte_carlo_expected_jaccard(&g, 0, 1, NeighborhoodMode::In, 40_000, &mut rng);
        assert!(
            (exact - estimate).abs() < 0.01,
            "exact {exact}, MC {estimate}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn monte_carlo_rejects_zero_samples() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = monte_carlo_expected_jaccard(&g, 0, 1, NeighborhoodMode::In, 0, &mut rng);
    }
}
