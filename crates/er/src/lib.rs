//! Graph-based entity resolution on uncertain record-similarity graphs.
//!
//! This crate reproduces the entity-resolution case study of *"SimRank
//! Computation on Uncertain Graphs"* (Section VII-C, Table V, Fig. 15).  Data
//! records are vertices of a graph whose edge weights are record-pair
//! similarities in `[0, 1]`; such a graph "is typically an uncertain graph
//! since the weights are often normalized into [0, 1] and regarded as
//! probabilities".  Following the EIF framework, each algorithm scores every
//! record pair of an ambiguous name group with some similarity measure and
//! aggregates records whose score exceeds a threshold into entities
//! (connected components of the thresholded similarity graph).  The four
//! algorithms compared in the paper are:
//!
//! * **SimER** — uncertain SimRank on the uncertain record graph (the paper's
//!   proposal);
//! * **SimDER** — deterministic SimRank on the skeleton of the record graph;
//! * **EIF** — Jaccard similarity on the thresholded deterministic graph
//!   (Li et al. \[22\]);
//! * **DISTINCT** — a common-neighborhood baseline standing in for Yin, Han &
//!   Yu's DISTINCT \[35\] (cosine similarity on the thresholded graph).
//!
//! Clustering quality is measured by pairwise precision / recall / F1 against
//! the ground-truth record→author assignment ([`metrics`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algorithms;
pub mod cluster;
pub mod metrics;

pub use algorithms::{ErAlgorithm, ErAlgorithmKind};
pub use cluster::{cluster_records, Clustering};
pub use metrics::{evaluate_clustering, QualityMetrics};
