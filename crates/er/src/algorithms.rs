//! The four entity-resolution algorithms compared in the paper's case study.

use crate::cluster::{cluster_records, Clustering};
use ugraph::{DiGraph, UncertainGraph, VertexId};
use usim_core::{DeterministicSimRank, SimRankConfig, SimRankEstimator, SpeedupEstimator};
use usim_similarity::{cosine, jaccard, NeighborhoodMode};

/// Which ER algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErAlgorithmKind {
    /// Uncertain SimRank on the uncertain record graph (the paper's SimER).
    SimEr,
    /// Deterministic SimRank on the record graph's skeleton (SimDER).
    SimDer,
    /// Jaccard similarity on the weight-thresholded deterministic graph
    /// (the EIF framework of Li et al. \[22\]).
    Eif,
    /// Cosine common-neighborhood similarity on the weight-thresholded
    /// deterministic graph (standing in for DISTINCT \[35\]).
    Distinct,
}

/// A configured ER algorithm.
#[derive(Debug, Clone)]
pub struct ErAlgorithm {
    /// The algorithm family.
    pub kind: ErAlgorithmKind,
    /// Records whose pairwise similarity reaches this value are aggregated
    /// into the same entity (the paper uses 0.1 for the SimRank-based
    /// algorithms).
    pub aggregation_threshold: f64,
    /// Edges below this weight are discarded by the deterministic baselines
    /// (EIF / DISTINCT).
    pub edge_threshold: f64,
    /// SimRank configuration used by SimER / SimDER.
    pub simrank: SimRankConfig,
}

impl ErAlgorithm {
    /// Creates an algorithm with default thresholds.
    ///
    /// The paper aggregates records whose SimRank reaches 0.1; on the
    /// synthetic record graphs generated here the unbiased SimRank scores of
    /// same-author records typically land between 0.05 and 0.15, so the
    /// SimRank-based algorithms default to 0.05 (the neighbor-overlap
    /// baselines keep 0.1).  Override with
    /// [`with_aggregation_threshold`](Self::with_aggregation_threshold) to
    /// reproduce the paper's exact setting.
    pub fn new(kind: ErAlgorithmKind) -> Self {
        let aggregation_threshold = match kind {
            ErAlgorithmKind::SimEr | ErAlgorithmKind::SimDer => 0.05,
            ErAlgorithmKind::Eif | ErAlgorithmKind::Distinct => 0.1,
        };
        ErAlgorithm {
            kind,
            aggregation_threshold,
            edge_threshold: 0.3,
            simrank: SimRankConfig::default(),
        }
    }

    /// Overrides the aggregation threshold.
    pub fn with_aggregation_threshold(mut self, threshold: f64) -> Self {
        self.aggregation_threshold = threshold;
        self
    }

    /// Overrides the edge-weight threshold of the deterministic baselines.
    pub fn with_edge_threshold(mut self, threshold: f64) -> Self {
        self.edge_threshold = threshold;
        self
    }

    /// Overrides the SimRank configuration of SimER / SimDER.
    pub fn with_simrank_config(mut self, config: SimRankConfig) -> Self {
        self.simrank = config;
        self
    }

    /// The display name used in the experiment tables.
    pub fn name(&self) -> &'static str {
        match self.kind {
            ErAlgorithmKind::SimEr => "SimER",
            ErAlgorithmKind::SimDer => "SimDER",
            ErAlgorithmKind::Eif => "EIF",
            ErAlgorithmKind::Distinct => "DISTINCT",
        }
    }

    /// Clusters the given records (one ambiguous-name group) of the record
    /// similarity graph into predicted entities.
    pub fn cluster_group(&self, graph: &UncertainGraph, records: &[VertexId]) -> Clustering {
        let (subgraph, _) = induced_subgraph(graph, records);
        let local_ids: Vec<VertexId> = (0..records.len() as VertexId).collect();
        let local_clustering = match self.kind {
            ErAlgorithmKind::SimEr => {
                let mut estimator = SpeedupEstimator::new(&subgraph, self.simrank);
                cluster_records(&local_ids, self.aggregation_threshold, |a, b| {
                    estimator.similarity(a, b)
                })
            }
            ErAlgorithmKind::SimDer => {
                let simrank = DeterministicSimRank::new(
                    subgraph.skeleton(),
                    self.simrank.decay,
                    self.simrank.horizon,
                );
                cluster_records(&local_ids, self.aggregation_threshold, |a, b| {
                    simrank.similarity(a, b)
                })
            }
            ErAlgorithmKind::Eif => {
                let thresholded = threshold_graph(&subgraph, self.edge_threshold);
                cluster_records(&local_ids, self.aggregation_threshold, |a, b| {
                    // EIF links records that are directly connected by a
                    // retained edge or that share retained neighbors.
                    if thresholded.has_arc(a, b) {
                        1.0
                    } else {
                        jaccard(&thresholded, a, b, NeighborhoodMode::In)
                    }
                })
            }
            ErAlgorithmKind::Distinct => {
                let thresholded = threshold_graph(&subgraph, self.edge_threshold);
                cluster_records(&local_ids, self.aggregation_threshold, |a, b| {
                    if thresholded.has_arc(a, b) {
                        1.0
                    } else {
                        cosine(&thresholded, a, b, NeighborhoodMode::In)
                    }
                })
            }
        };
        // Map the local record positions back to the caller's record ids.
        Clustering {
            records: records.to_vec(),
            cluster_of: local_clustering.cluster_of,
        }
    }
}

/// Extracts the induced subgraph on `records` (remapping vertex ids to
/// `0..records.len()` in the given order) and returns it together with the
/// id mapping `new -> old`.
pub fn induced_subgraph(
    graph: &UncertainGraph,
    records: &[VertexId],
) -> (UncertainGraph, Vec<VertexId>) {
    let mut old_to_new = std::collections::HashMap::with_capacity(records.len());
    for (new, &old) in records.iter().enumerate() {
        old_to_new.insert(old, new as VertexId);
    }
    let mut arcs = Vec::new();
    for &old in records {
        let (neighbors, probabilities) = graph.out_arcs(old);
        for (&target, &p) in neighbors.iter().zip(probabilities) {
            if let Some(&new_target) = old_to_new.get(&target) {
                arcs.push((old_to_new[&old], new_target, p));
            }
        }
    }
    let subgraph =
        UncertainGraph::from_arcs(records.len(), arcs).expect("induced subgraph arcs are valid");
    (subgraph, records.to_vec())
}

/// Discards every arc whose probability (similarity weight) is below
/// `threshold` and returns the remaining deterministic graph.
pub fn threshold_graph(graph: &UncertainGraph, threshold: f64) -> DiGraph {
    let arcs = graph
        .arcs()
        .filter(|arc| arc.probability >= threshold)
        .map(|arc| (arc.source, arc.target));
    DiGraph::from_arcs(graph.num_vertices(), arcs).expect("thresholded arcs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_clustering;
    use usim_datasets::ErGenerator;

    fn algorithms() -> Vec<ErAlgorithm> {
        vec![
            ErAlgorithm::new(ErAlgorithmKind::SimEr)
                .with_simrank_config(SimRankConfig::default().with_samples(300).with_seed(1)),
            ErAlgorithm::new(ErAlgorithmKind::SimDer),
            ErAlgorithm::new(ErAlgorithmKind::Eif),
            ErAlgorithm::new(ErAlgorithmKind::Distinct),
        ]
    }

    #[test]
    fn induced_subgraph_keeps_internal_arcs_only() {
        let dataset = ErGenerator::small(5).generate();
        let records = dataset.records_of_group(0);
        let (subgraph, mapping) = induced_subgraph(&dataset.graph, &records);
        assert_eq!(subgraph.num_vertices(), records.len());
        assert_eq!(mapping, records);
        for arc in subgraph.arcs() {
            let old_source = records[arc.source as usize];
            let old_target = records[arc.target as usize];
            let original = dataset
                .graph
                .arc_probability(old_source, old_target)
                .unwrap();
            assert!((original - arc.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_graph_drops_weak_edges() {
        let dataset = ErGenerator::small(5).generate();
        let thresholded = threshold_graph(&dataset.graph, 0.5);
        assert!(thresholded.num_arcs() < dataset.graph.num_arcs());
        for (u, v) in thresholded.arcs() {
            assert!(dataset.graph.arc_probability(u, v).unwrap() >= 0.5);
        }
    }

    #[test]
    fn all_algorithms_produce_valid_clusterings() {
        let dataset = ErGenerator::small(9).generate();
        for algorithm in algorithms() {
            for group in 0..dataset.groups.len() {
                let records = dataset.records_of_group(group);
                let clustering = algorithm.cluster_group(&dataset.graph, &records);
                assert_eq!(clustering.records, records);
                assert!(clustering.num_clusters() >= 1);
                assert!(clustering.num_clusters() <= records.len());
                let quality = evaluate_clustering(&clustering, |a, b| dataset.same_author(a, b));
                assert!(quality.precision >= 0.0 && quality.precision <= 1.0);
                assert!(quality.recall >= 0.0 && quality.recall <= 1.0);
                assert!(quality.f1 >= 0.0 && quality.f1 <= 1.0);
            }
        }
    }

    #[test]
    fn simer_recovers_planted_entities_well() {
        let dataset = ErGenerator::small(21).generate();
        let algorithm = ErAlgorithm::new(ErAlgorithmKind::SimEr)
            .with_simrank_config(SimRankConfig::default().with_samples(400).with_seed(3));
        let mut f1_values = Vec::new();
        for group in 0..dataset.groups.len() {
            let records = dataset.records_of_group(group);
            let clustering = algorithm.cluster_group(&dataset.graph, &records);
            let quality = evaluate_clustering(&clustering, |a, b| dataset.same_author(a, b));
            f1_values.push(quality.f1);
        }
        let average = f1_values.iter().sum::<f64>() / f1_values.len() as f64;
        assert!(
            average > 0.5,
            "SimER should recover most planted entities, average F1 = {average}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ErAlgorithm::new(ErAlgorithmKind::SimEr).name(), "SimER");
        assert_eq!(ErAlgorithm::new(ErAlgorithmKind::SimDer).name(), "SimDER");
        assert_eq!(ErAlgorithm::new(ErAlgorithmKind::Eif).name(), "EIF");
        assert_eq!(
            ErAlgorithm::new(ErAlgorithmKind::Distinct).name(),
            "DISTINCT"
        );
    }

    #[test]
    fn builder_overrides_apply() {
        let algorithm = ErAlgorithm::new(ErAlgorithmKind::Eif)
            .with_aggregation_threshold(0.25)
            .with_edge_threshold(0.6)
            .with_simrank_config(SimRankConfig::default().with_horizon(3));
        assert_eq!(algorithm.aggregation_threshold, 0.25);
        assert_eq!(algorithm.edge_threshold, 0.6);
        assert_eq!(algorithm.simrank.horizon, 3);
    }
}
