//! Threshold-based record aggregation (the clustering step of the EIF
//! framework shared by all four ER algorithms).

use ugraph::VertexId;

/// A clustering of a set of records: records sharing a cluster id are
/// predicted to refer to the same real-world entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// The records that were clustered, in the order they were given.
    pub records: Vec<VertexId>,
    /// `cluster_of[i]` is the cluster id of `records[i]`; ids are compact
    /// (`0..num_clusters`).
    pub cluster_of: Vec<usize>,
}

impl Clustering {
    /// Number of predicted entities.
    pub fn num_clusters(&self) -> usize {
        self.cluster_of.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Whether two records (given by their *position* in `records`) are in
    /// the same predicted cluster.
    pub fn same_cluster(&self, i: usize, j: usize) -> bool {
        self.cluster_of[i] == self.cluster_of[j]
    }

    /// The clusters as lists of record ids.
    pub fn clusters(&self) -> Vec<Vec<VertexId>> {
        let mut clusters = vec![Vec::new(); self.num_clusters()];
        for (i, &cluster) in self.cluster_of.iter().enumerate() {
            clusters[cluster].push(self.records[i]);
        }
        clusters
    }
}

/// Disjoint-set forest with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut current = x;
        while self.parent[current] != root {
            let next = self.parent[current];
            self.parent[current] = root;
            current = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Clusters `records` by linking every pair whose similarity (as reported by
/// `similarity`) is at least `threshold` and taking connected components.
///
/// The `similarity` closure is called once per unordered record pair.
pub fn cluster_records(
    records: &[VertexId],
    threshold: f64,
    mut similarity: impl FnMut(VertexId, VertexId) -> f64,
) -> Clustering {
    let n = records.len();
    let mut union_find = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if similarity(records[i], records[j]) >= threshold {
                union_find.union(i, j);
            }
        }
    }
    // Compact the component roots into cluster ids 0..k.
    let mut root_to_cluster = std::collections::HashMap::new();
    let mut cluster_of = Vec::with_capacity(n);
    for i in 0..n {
        let root = union_find.find(i);
        let next_id = root_to_cluster.len();
        let id = *root_to_cluster.entry(root).or_insert(next_id);
        cluster_of.push(id);
    }
    Clustering {
        records: records.to_vec(),
        cluster_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_by_threshold() {
        // Records 10, 11 are similar; 12, 13 are similar; 14 is isolated.
        let records: Vec<VertexId> = vec![10, 11, 12, 13, 14];
        let similarity = |a: VertexId, b: VertexId| -> f64 {
            match (a.min(b), a.max(b)) {
                (10, 11) => 0.9,
                (12, 13) => 0.8,
                _ => 0.1,
            }
        };
        let clustering = cluster_records(&records, 0.5, similarity);
        assert_eq!(clustering.num_clusters(), 3);
        assert!(clustering.same_cluster(0, 1));
        assert!(clustering.same_cluster(2, 3));
        assert!(!clustering.same_cluster(0, 2));
        assert!(!clustering.same_cluster(1, 4));
        let clusters = clustering.clusters();
        assert_eq!(clusters.iter().map(|c| c.len()).sum::<usize>(), 5);
    }

    #[test]
    fn transitive_linking_merges_chains() {
        let records: Vec<VertexId> = vec![0, 1, 2];
        // 0-1 and 1-2 are similar, 0-2 is not; single-link clustering still
        // merges all three.
        let similarity = |a: VertexId, b: VertexId| -> f64 {
            if (a, b) == (0, 2) || (a, b) == (2, 0) {
                0.0
            } else {
                1.0
            }
        };
        let clustering = cluster_records(&records, 0.5, similarity);
        assert_eq!(clustering.num_clusters(), 1);
    }

    #[test]
    fn threshold_above_everything_gives_singletons() {
        let records: Vec<VertexId> = vec![0, 1, 2, 3];
        let clustering = cluster_records(&records, 0.9, |_, _| 0.5);
        assert_eq!(clustering.num_clusters(), 4);
    }

    #[test]
    fn empty_record_set() {
        let clustering = cluster_records(&[], 0.5, |_, _| 1.0);
        assert_eq!(clustering.num_clusters(), 0);
        assert!(clustering.clusters().is_empty());
    }
}
