//! Pairwise precision / recall / F1 of a clustering against ground truth.

use crate::cluster::Clustering;

/// Pairwise clustering quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// Fraction of predicted same-entity pairs that are truly the same
    /// entity (1.0 when nothing is predicted).
    pub precision: f64,
    /// Fraction of true same-entity pairs that are predicted (1.0 when no
    /// true pair exists).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
}

impl QualityMetrics {
    fn from_counts(true_positive: usize, predicted: usize, actual: usize) -> Self {
        let precision = if predicted == 0 {
            1.0
        } else {
            true_positive as f64 / predicted as f64
        };
        let recall = if actual == 0 {
            1.0
        } else {
            true_positive as f64 / actual as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        QualityMetrics {
            precision,
            recall,
            f1,
        }
    }
}

/// Evaluates a clustering against a ground-truth equivalence given as a
/// closure over record ids (`true` when the two records refer to the same
/// real-world entity).
pub fn evaluate_clustering(
    clustering: &Clustering,
    mut same_entity: impl FnMut(ugraph::VertexId, ugraph::VertexId) -> bool,
) -> QualityMetrics {
    let n = clustering.records.len();
    let mut true_positive = 0usize;
    let mut predicted = 0usize;
    let mut actual = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let predicted_same = clustering.same_cluster(i, j);
            let truly_same = same_entity(clustering.records[i], clustering.records[j]);
            if predicted_same {
                predicted += 1;
            }
            if truly_same {
                actual += 1;
            }
            if predicted_same && truly_same {
                true_positive += 1;
            }
        }
    }
    QualityMetrics::from_counts(true_positive, predicted, actual)
}

/// Averages a set of quality metrics (used for the "Average" row of Table V).
pub fn average_metrics(metrics: &[QualityMetrics]) -> QualityMetrics {
    assert!(
        !metrics.is_empty(),
        "cannot average an empty set of metrics"
    );
    let n = metrics.len() as f64;
    QualityMetrics {
        precision: metrics.iter().map(|m| m.precision).sum::<f64>() / n,
        recall: metrics.iter().map(|m| m.recall).sum::<f64>() / n,
        f1: metrics.iter().map(|m| m.f1).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;

    fn clustering(records: Vec<u32>, cluster_of: Vec<usize>) -> Clustering {
        Clustering {
            records,
            cluster_of,
        }
    }

    #[test]
    fn perfect_clustering_scores_one() {
        // Records 0,1 -> entity A; 2,3 -> entity B; predicted identically.
        let c = clustering(vec![0, 1, 2, 3], vec![0, 0, 1, 1]);
        let q = evaluate_clustering(&c, |a, b| (a < 2) == (b < 2));
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
    }

    #[test]
    fn over_merging_hurts_precision_only() {
        // Everything merged into one cluster.
        let c = clustering(vec![0, 1, 2, 3], vec![0, 0, 0, 0]);
        let q = evaluate_clustering(&c, |a, b| (a < 2) == (b < 2));
        assert!(q.precision < 1.0);
        assert_eq!(q.recall, 1.0);
        // 2 true pairs out of 6 predicted pairs.
        assert!((q.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn over_splitting_hurts_recall_only() {
        let c = clustering(vec![0, 1, 2, 3], vec![0, 1, 2, 3]);
        let q = evaluate_clustering(&c, |a, b| (a < 2) == (b < 2));
        assert_eq!(q.precision, 1.0, "no predicted pairs counts as precision 1");
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn partial_overlap_hand_checked() {
        // Truth: {0,1,2} same entity, {3} alone.  Prediction: {0,1}, {2,3}.
        let c = clustering(vec![0, 1, 2, 3], vec![0, 0, 1, 1]);
        let q = evaluate_clustering(&c, |a, b| a < 3 && b < 3);
        // Predicted pairs: (0,1) true, (2,3) false -> precision 1/2.
        assert!((q.precision - 0.5).abs() < 1e-12);
        // True pairs: (0,1), (0,2), (1,2) -> recall 1/3.
        assert!((q.recall - 1.0 / 3.0).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0);
        assert!((q.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn averaging() {
        let a = QualityMetrics {
            precision: 1.0,
            recall: 0.5,
            f1: 2.0 / 3.0,
        };
        let b = QualityMetrics {
            precision: 0.5,
            recall: 1.0,
            f1: 2.0 / 3.0,
        };
        let avg = average_metrics(&[a, b]);
        assert!((avg.precision - 0.75).abs() < 1e-12);
        assert!((avg.recall - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn averaging_empty_panics() {
        let _ = average_metrics(&[]);
    }
}
