//! Lazily-instantiated random-walk sampling on uncertain graphs
//! (Fig. 4, lines 1–18 of the paper).
//!
//! A sampled walk must be drawn with its *walk probability*, which couples
//! all transitions of the walk through the shared possible world.  Sampling a
//! whole possible world first would cost `O(|E|)` per walk; the paper instead
//! instantiates the out-arcs of a vertex the first time the walk visits it
//! and **reuses that instantiation** when the walk revisits the vertex —
//! exactly reproducing the correlation that makes `W(k) ≠ (W(1))^k`.
//!
//! Dead ends: the paper does not say what happens when none of the out-arcs
//! of the current vertex were instantiated (or the vertex has no possible
//! out-arcs).  We terminate the walk (it can never meet another walk at later
//! steps), which matches the semantics of the exact transition probabilities,
//! whose rows sum to less than 1 by exactly the probability of dying.  The
//! alternative (staying in place) is available behind
//! [`DeadEndPolicy::StayInPlace`] for the ablation documented in DESIGN.md.

use rand::Rng;
use std::collections::HashMap;
use ugraph::{UncertainGraph, VertexId};

/// What a sampled walk does when it reaches a vertex with no instantiated
/// out-arcs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadEndPolicy {
    /// Terminate the walk; later positions are `None` (the default, matching
    /// the exact sub-stochastic transition probabilities).
    #[default]
    Terminate,
    /// Stay at the current vertex for the remaining steps.
    StayInPlace,
}

/// A sampled walk of fixed horizon `n`: `position(k)` is the vertex the walk
/// occupies at step `k` (`0 ≤ k ≤ n`), or `None` if the walk died earlier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledWalk {
    positions: Vec<Option<VertexId>>,
}

impl SampledWalk {
    /// The vertex occupied at step `k`, or `None` if the walk terminated
    /// before step `k`.
    pub fn position(&self, k: usize) -> Option<VertexId> {
        self.positions.get(k).copied().flatten()
    }

    /// The horizon `n` the walk was sampled for.
    pub fn horizon(&self) -> usize {
        self.positions.len() - 1
    }

    /// Number of steps the walk actually survived.
    pub fn survived_steps(&self) -> usize {
        self.positions.iter().take_while(|p| p.is_some()).count() - 1
    }

    /// All positions, index = step.
    pub fn positions(&self) -> &[Option<VertexId>] {
        &self.positions
    }
}

/// A reusable sampler of lazily-instantiated random walks.
///
/// Each walk gets its own arc instantiation (shared *within* the walk across
/// revisits, independent *across* walks), reproducing Fig. 4 of the paper.
#[derive(Debug)]
pub struct WalkSampler<'g> {
    graph: &'g UncertainGraph,
    dead_end_policy: DeadEndPolicy,
    /// Per-walk memo: vertex -> instantiated out-neighbors.  Cleared between
    /// walks; kept as a field to reuse its allocation.
    instantiated: HashMap<VertexId, Vec<VertexId>>,
}

impl<'g> WalkSampler<'g> {
    /// Creates a sampler over `graph` with the default dead-end policy.
    pub fn new(graph: &'g UncertainGraph) -> Self {
        Self::with_policy(graph, DeadEndPolicy::default())
    }

    /// Creates a sampler with an explicit dead-end policy.
    pub fn with_policy(graph: &'g UncertainGraph, dead_end_policy: DeadEndPolicy) -> Self {
        WalkSampler {
            graph,
            dead_end_policy,
            instantiated: HashMap::new(),
        }
    }

    /// The dead-end policy in use.
    pub fn dead_end_policy(&self) -> DeadEndPolicy {
        self.dead_end_policy
    }

    /// Samples one walk of horizon `length` starting at `start`.
    pub fn sample_walk<R: Rng + ?Sized>(
        &mut self,
        start: VertexId,
        length: usize,
        rng: &mut R,
    ) -> SampledWalk {
        self.instantiated.clear();
        let mut positions = Vec::with_capacity(length + 1);
        positions.push(Some(start));
        let mut current = Some(start);
        for _ in 0..length {
            current = match current {
                None => None,
                Some(v) => {
                    let choices = self.instantiate(v, rng);
                    if choices.is_empty() {
                        match self.dead_end_policy {
                            DeadEndPolicy::Terminate => None,
                            DeadEndPolicy::StayInPlace => Some(v),
                        }
                    } else {
                        Some(choices[rng.gen_range(0..choices.len())])
                    }
                }
            };
            positions.push(current);
        }
        SampledWalk { positions }
    }

    /// Samples `count` independent walks of horizon `length` from `start`.
    pub fn sample_walks<R: Rng + ?Sized>(
        &mut self,
        start: VertexId,
        length: usize,
        count: usize,
        rng: &mut R,
    ) -> Vec<SampledWalk> {
        (0..count)
            .map(|_| self.sample_walk(start, length, rng))
            .collect()
    }

    /// Returns the instantiated out-neighbors of `v` for the current walk,
    /// instantiating them on first visit.
    fn instantiate<R: Rng + ?Sized>(&mut self, v: VertexId, rng: &mut R) -> &[VertexId] {
        if !self.instantiated.contains_key(&v) {
            let (neighbors, probabilities) = self.graph.out_arcs(v);
            let mut present = Vec::new();
            for (&w, &p) in neighbors.iter().zip(probabilities) {
                if rng.gen::<f64>() < p {
                    present.push(w);
                }
            }
            self.instantiated.insert(v, present);
        }
        self.instantiated.get(&v).expect("inserted above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpr::{transition_matrices, TransPrOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn sampled_walks_respect_the_graph() {
        let g = fig1_graph();
        let mut sampler = WalkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let walk = sampler.sample_walk(0, 5, &mut rng);
            assert_eq!(walk.horizon(), 5);
            assert_eq!(walk.position(0), Some(0));
            for k in 0..5 {
                match (walk.position(k), walk.position(k + 1)) {
                    (Some(u), Some(v)) => assert!(g.has_arc(u, v), "sampled non-arc {u}->{v}"),
                    (None, Some(_)) => panic!("walk resurrected after dying"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn one_step_frequencies_match_expected_probabilities() {
        let g = fig1_graph();
        let tm = transition_matrices(&g, 1, &TransPrOptions::default()).unwrap();
        let mut sampler = WalkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = vec![0usize; g.num_vertices()];
        let mut died = 0usize;
        for _ in 0..trials {
            match sampler.sample_walk(0, 1, &mut rng).position(1) {
                Some(v) => counts[v as usize] += 1,
                None => died += 1,
            }
        }
        for v in g.vertices() {
            let frequency = counts[v as usize] as f64 / trials as f64;
            let expected = tm.probability(1, 0, v);
            assert!(
                (frequency - expected).abs() < 0.01,
                "vertex {v}: frequency {frequency}, expected {expected}"
            );
        }
        // The death probability is 1 minus the row sum: (1-0.8)(1-0.5) = 0.1.
        let death_rate = died as f64 / trials as f64;
        assert!((death_rate - 0.1).abs() < 0.01, "death rate {death_rate}");
    }

    #[test]
    fn two_step_frequencies_match_exact_transition_probabilities() {
        // This is the statistically meaningful check that the lazy
        // instantiation reproduces the possible-world correlation: the
        // frequency of being at v after 2 steps must match W(2), which is NOT
        // (W(1))^2.
        let g = fig1_graph();
        let tm = transition_matrices(&g, 2, &TransPrOptions::default()).unwrap();
        let mut sampler = WalkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 80_000;
        let mut counts = vec![0usize; g.num_vertices()];
        for _ in 0..trials {
            if let Some(v) = sampler.sample_walk(0, 2, &mut rng).position(2) {
                counts[v as usize] += 1;
            }
        }
        for v in g.vertices() {
            let frequency = counts[v as usize] as f64 / trials as f64;
            let expected = tm.probability(2, 0, v);
            assert!(
                (frequency - expected).abs() < 0.01,
                "vertex {v}: frequency {frequency}, exact {expected}"
            );
        }
    }

    #[test]
    fn dead_end_policies() {
        // Vertex 4 has no out-arcs at all.
        let g = fig1_graph();
        let mut rng = StdRng::seed_from_u64(3);

        let mut terminating = WalkSampler::new(&g);
        let walk = terminating.sample_walk(4, 3, &mut rng);
        assert_eq!(walk.position(0), Some(4));
        assert_eq!(walk.position(1), None);
        assert_eq!(walk.position(3), None);
        assert_eq!(walk.survived_steps(), 0);

        let mut staying = WalkSampler::with_policy(&g, DeadEndPolicy::StayInPlace);
        let walk = staying.sample_walk(4, 3, &mut rng);
        assert_eq!(walk.position(3), Some(4));
        assert_eq!(staying.dead_end_policy(), DeadEndPolicy::StayInPlace);
    }

    #[test]
    fn instantiation_is_shared_within_a_walk() {
        // On a graph with a single probabilistic arc forming a loop, a walk
        // that uses the arc once must be able to use it every time: the walk
        // either survives the whole horizon or dies at step 1.
        let g = UncertainGraphBuilder::new(2)
            .arc(0, 1, 0.5)
            .arc(1, 0, 0.5)
            .build()
            .unwrap();
        let mut sampler = WalkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let mut survived = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let walk = sampler.sample_walk(0, 6, &mut rng);
            let steps = walk.survived_steps();
            assert!(
                steps == 0 || steps == 1 || steps == 6,
                "with shared instantiation a walk can only die at its first visit \
                 to each of the two vertices; survived {steps}"
            );
            if steps == 6 {
                survived += 1;
            }
        }
        // Survival requires both arcs instantiated: probability 0.25.
        let rate = survived as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "survival rate {rate}");
    }

    #[test]
    fn sample_walks_returns_requested_count() {
        let g = fig1_graph();
        let mut sampler = WalkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let walks = sampler.sample_walks(1, 4, 37, &mut rng);
        assert_eq!(walks.len(), 37);
        assert!(walks.iter().all(|w| w.horizon() == 4));
    }

    #[test]
    fn zero_length_walk_is_just_the_start() {
        let g = fig1_graph();
        let mut sampler = WalkSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let walk = sampler.sample_walk(2, 0, &mut rng);
        assert_eq!(walk.horizon(), 0);
        assert_eq!(walk.position(0), Some(2));
        assert_eq!(walk.position(1), None);
    }
}
