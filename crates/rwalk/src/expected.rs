//! The expected one-step transition matrix `W(1)` of an uncertain graph.
//!
//! For an arc `(u, v)` of the uncertain graph, the one-step transition
//! probability on a randomly selected possible world is
//!
//! ```text
//! Pr_G(u →₁ v) = P(u, v) · E[ 1 / (1 + X_{-v}) ],
//! ```
//!
//! where `X_{-v}` is the number of *other* arcs leaving `u` that are present
//! (a Poisson-binomial variable).  `W(1)` has exactly `|E|` non-zero entries,
//! so it is returned as a [`SparseMatrix`].
//!
//! `W(1)` plays two roles in the paper:
//!
//! * it seeds the `TransPr` walk extension (and is the Lemma 3 shortcut for
//!   walks that have not yet revisited a vertex);
//! * raised to the k-th power it is exactly the (incorrect) k-step matrix
//!   assumed by Du et al. \[7\], which the paper uses as the SimRank-III
//!   comparison baseline.

use crate::walkpr::{inv, presence_count_distribution};
use ugraph::{Probability, UncertainGraph, VertexId};
use umatrix::SparseMatrix;

/// Removes one Bernoulli variable with success probability `p` from a
/// Poisson-binomial presence-count distribution `r` (the deconvolution step
/// used to compute all `E[1/(1+X_{-v})]` of a vertex in `O(d²)` instead of
/// `O(d³)`).
///
/// The recurrence is run from whichever end is numerically stable: from the
/// bottom when `p ≤ 0.5` (divide by `1 − p`), from the top when `p > 0.5`
/// (divide by `p`).
fn remove_bernoulli(r: &[f64], p: Probability) -> Vec<f64> {
    let n = r.len() - 1; // number of variables in r
    debug_assert!(n >= 1);
    let mut out = vec![0.0; n];
    if p <= 0.5 {
        // r(x) = (1-p) * out(x) + p * out(x-1)
        out[0] = r[0] / (1.0 - p);
        for x in 1..n {
            out[x] = (r[x] - p * out[x - 1]) / (1.0 - p);
        }
    } else {
        // r(x) = (1-p) * out(x) + p * out(x-1)  =>  out(x-1) = (r(x) - (1-p) out(x)) / p
        out[n - 1] = r[n] / p;
        for x in (1..n).rev() {
            out[x - 1] = (r[x] - (1.0 - p) * out[x]) / p;
        }
    }
    // Clamp tiny negative values produced by floating-point cancellation.
    for v in &mut out {
        if *v < 0.0 && *v > -1e-12 {
            *v = 0.0;
        }
    }
    out
}

/// Expected one-step transition probabilities out of a single vertex `u`,
/// aligned with `g.out_arcs(u)`.
pub fn expected_one_step_row(g: &UncertainGraph, u: VertexId) -> Vec<f64> {
    let (_, probs) = g.out_arcs(u);
    if probs.is_empty() {
        return Vec::new();
    }
    let full = presence_count_distribution(probs);
    probs
        .iter()
        .map(|&p| {
            let others = remove_bernoulli(&full, p);
            let expectation: f64 = others
                .iter()
                .enumerate()
                .map(|(x, &rx)| rx * inv(x + 1))
                .sum();
            p * expectation
        })
        .collect()
}

/// Expected one-step transition probabilities out of `u` computed directly
/// (one `O(d²)` dynamic program per out-arc).  Slower than
/// [`expected_one_step_row`] but free of the deconvolution step; used as a
/// cross-check in tests and available for callers that prefer it.
pub fn expected_one_step_row_direct(g: &UncertainGraph, u: VertexId) -> Vec<f64> {
    let (_, probs) = g.out_arcs(u);
    (0..probs.len())
        .map(|j| {
            let others: Vec<Probability> = probs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, &p)| p)
                .collect();
            let r = presence_count_distribution(&others);
            let expectation: f64 = r.iter().enumerate().map(|(x, &rx)| rx * inv(x + 1)).sum();
            probs[j] * expectation
        })
        .collect()
}

/// Computes the expected one-step transition matrix `W(1)` of `g` as a sparse
/// matrix with one non-zero per possible arc.
pub fn expected_one_step_matrix(g: &UncertainGraph) -> SparseMatrix {
    let n = g.num_vertices();
    let mut triplets = Vec::with_capacity(g.num_arcs());
    for u in g.vertices() {
        let (neighbors, _) = g.out_arcs(u);
        let row = expected_one_step_row(g, u);
        for (&v, p) in neighbors.iter().zip(row) {
            triplets.push((u, v, p));
        }
    }
    SparseMatrix::from_triplets(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::possible_world::expectation_over_worlds;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn brute_force_one_step(g: &UncertainGraph, u: VertexId, v: VertexId) -> f64 {
        expectation_over_worlds(g, |world| world.transition_probability(u, v))
    }

    #[test]
    fn expected_matrix_matches_brute_force() {
        let g = fig1_graph();
        let w1 = expected_one_step_matrix(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                let exact = w1.get(u as usize, v as usize);
                let brute = brute_force_one_step(&g, u, v);
                assert!(
                    (exact - brute).abs() < 1e-10,
                    "W(1)[{u}][{v}] = {exact}, brute force = {brute}"
                );
            }
        }
    }

    #[test]
    fn fast_row_matches_direct_row() {
        let g = fig1_graph();
        for u in g.vertices() {
            let fast = expected_one_step_row(&g, u);
            let direct = expected_one_step_row_direct(&g, u);
            assert_eq!(fast.len(), direct.len());
            for (a, b) in fast.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-10, "vertex {u}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_row_is_stable_for_extreme_probabilities() {
        let g = UncertainGraphBuilder::new(5)
            .arc(0, 1, 1.0)
            .arc(0, 2, 0.999_999)
            .arc(0, 3, 1e-9)
            .arc(0, 4, 0.5)
            .build()
            .unwrap();
        let fast = expected_one_step_row(&g, 0);
        let direct = expected_one_step_row_direct(&g, 0);
        for (a, b) in fast.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn row_sums_are_at_most_one() {
        // Row u sums to the probability that u has at least one out-arc,
        // which is at most 1 (walks can die at a vertex with no arcs).
        let g = fig1_graph();
        let w1 = expected_one_step_matrix(&g);
        for u in 0..g.num_vertices() {
            let sum: f64 = w1.row_iter(u).map(|(_, p)| p).sum();
            assert!(sum <= 1.0 + 1e-12, "row {u} sums to {sum}");
        }
        // Vertex 0 has arcs with probabilities 0.8 and 0.5, so the row sums
        // to 1 - 0.2*0.5 = 0.9.
        let sum0: f64 = w1.row_iter(0).map(|(_, p)| p).sum();
        assert!((sum0 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn certain_graph_recovers_uniform_transition_probabilities() {
        let g = fig1_graph().certain();
        let w1 = expected_one_step_matrix(&g);
        for u in g.vertices() {
            let degree = g.out_degree(u);
            for (v, p) in w1.row_iter(u as usize) {
                assert!(g.has_arc(u, v));
                assert!((p - 1.0 / degree as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn vertex_with_no_out_arcs_has_empty_row() {
        let g = fig1_graph();
        assert!(expected_one_step_row(&g, 4).is_empty());
        let w1 = expected_one_step_matrix(&g);
        assert_eq!(w1.row_iter(4).count(), 0);
    }

    #[test]
    fn remove_bernoulli_roundtrip() {
        let probs = [0.3, 0.7, 0.95, 0.05];
        let full = presence_count_distribution(&probs);
        for (j, &p) in probs.iter().enumerate() {
            let others: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, &q)| q)
                .collect();
            let expected = presence_count_distribution(&others);
            let removed = remove_bernoulli(&full, p);
            for (a, b) in removed.iter().zip(&expected) {
                assert!(
                    (a - b).abs() < 1e-10,
                    "removing p={p}: {removed:?} vs {expected:?}"
                );
            }
        }
    }
}
