//! The `TransPr` algorithm (Fig. 3 of the paper): k-step transition
//! probability matrices of an uncertain graph.
//!
//! `Pr_G(u →ₖ v)` is the sum of the walk probabilities of all walks of length
//! `k` from `u` to `v` (Eq. 7).  Because walk probabilities on an uncertain
//! graph do not factor into one-step probabilities, the matrices cannot be
//! obtained by matrix powers; instead `TransPr` extends every walk of length
//! `k` by one arc to enumerate the walks of length `k + 1`, updating each
//! walk's probability with the `α`-ratio of Lemma 2 (or, for walks that have
//! not yet revisited their current end vertex — which Lemma 3's girth
//! condition guarantees for short walks — directly with the expected one-step
//! probability).
//!
//! The number of walks grows like `d^k` (`d` = average out-degree), which is
//! why the paper keeps the walk files on disk and why its Baseline algorithm
//! is only competitive on small graphs.  This implementation keeps the
//! frontier in memory, enforces a configurable walk budget
//! ([`TransPrOptions::max_walks`]), and offers the single-source restriction
//! [`transition_rows_from`] that the Baseline SimRank estimator actually
//! needs (walks out of one query vertex only).

use crate::expected::expected_one_step_row;
use crate::walkpr::alpha;
use std::collections::BTreeMap;
use ugraph::{UncertainGraph, VertexId};
use umatrix::{DenseMatrix, SparseVector};

/// Options for the `TransPr` computation.
#[derive(Debug, Clone)]
pub struct TransPrOptions {
    /// Upper bound on the number of in-flight walks; the computation fails
    /// with [`TransPrError::WalkBudgetExceeded`] instead of exhausting
    /// memory.  The default (5,000,000) is enough for the paper's `n = 5`
    /// horizon on graphs with average degree around 20 when starting from a
    /// single source.
    pub max_walks: usize,
    /// Use the Lemma 2/3 shortcut: when the current end vertex of a walk has
    /// not been left before, the extension factor is just the expected
    /// one-step probability, so no `α` recomputation is needed.  Disabling
    /// this recomputes `α` ratios for every extension; results are identical
    /// (the flag exists for the ablation benchmark).
    pub use_shortcut: bool,
    /// Drop in-flight walks whose probability has fallen below this
    /// threshold.  `0.0` (the default) keeps everything and is exact; a small
    /// positive value trades a bounded absolute error for speed on denser
    /// graphs.
    pub prune_threshold: f64,
}

impl Default for TransPrOptions {
    fn default() -> Self {
        TransPrOptions {
            max_walks: 5_000_000,
            use_shortcut: true,
            prune_threshold: 0.0,
        }
    }
}

/// Errors produced by the `TransPr` computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransPrError {
    /// The number of in-flight walks exceeded [`TransPrOptions::max_walks`].
    WalkBudgetExceeded {
        /// The step at which the budget was exceeded.
        step: usize,
        /// The number of walks that would have been needed.
        walks: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for TransPrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransPrError::WalkBudgetExceeded { step, walks, budget } => write!(
                f,
                "TransPr walk budget exceeded at step {step}: {walks} walks needed, budget is {budget}; \
                 raise TransPrOptions::max_walks or use the sampling estimator"
            ),
        }
    }
}

impl std::error::Error for TransPrError {}

/// The k-step transition probability matrices `W(1), …, W(K)` of an uncertain
/// graph (dense; `W(0)` is the identity and is represented implicitly).
#[derive(Debug, Clone)]
pub struct TransitionMatrices {
    num_vertices: usize,
    matrices: Vec<DenseMatrix>,
}

impl TransitionMatrices {
    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The largest step `K` for which `W(K)` is available.
    pub fn max_step(&self) -> usize {
        self.matrices.len()
    }

    /// The matrix `W(k)` for `1 ≤ k ≤ max_step`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`TransitionMatrices::max_step`].
    pub fn step(&self, k: usize) -> &DenseMatrix {
        assert!(k >= 1 && k <= self.matrices.len(), "step {k} not computed");
        &self.matrices[k - 1]
    }

    /// `Pr_G(u →ₖ v)`; `k = 0` returns the identity-matrix entry.
    pub fn probability(&self, k: usize, u: VertexId, v: VertexId) -> f64 {
        if k == 0 {
            return if u == v { 1.0 } else { 0.0 };
        }
        self.step(k)[(u as usize, v as usize)]
    }

    /// The meeting probability `m(k)(u, v) = Σ_w Pr(u →ₖ w) Pr(v →ₖ w)`
    /// (`k = 0` gives 1 if `u == v` and 0 otherwise).
    pub fn meeting_probability(&self, k: usize, u: VertexId, v: VertexId) -> f64 {
        if k == 0 {
            return if u == v { 1.0 } else { 0.0 };
        }
        self.step(k).row_dot(u as usize, v as usize)
    }
}

/// One in-flight walk of the frontier: its start, its end, its probability,
/// and the per-vertex `(O_W(v), c_W(v))` bookkeeping needed to compute
/// `α`-ratios for future extensions.
#[derive(Debug, Clone)]
struct ActiveWalk {
    start: VertexId,
    end: VertexId,
    probability: f64,
    stats: BTreeMap<VertexId, (Vec<VertexId>, usize)>,
}

impl ActiveWalk {
    fn new(start: VertexId) -> Self {
        ActiveWalk {
            start,
            end: start,
            probability: 1.0,
            stats: BTreeMap::new(),
        }
    }

    /// `(O_W(end), c_W(end))` of the current end vertex.
    fn end_stats(&self) -> (&[VertexId], usize) {
        match self.stats.get(&self.end) {
            Some((out, count)) => (out.as_slice(), *count),
            None => (&[], 0),
        }
    }
}

/// Extends every walk of the frontier by one arc and returns the new
/// frontier.  `one_step_rows[u]` caches the expected one-step probabilities
/// aligned with `g.out_arcs(u)`.
fn extend_frontier(
    g: &UncertainGraph,
    frontier: Vec<ActiveWalk>,
    one_step_rows: &[Vec<f64>],
    options: &TransPrOptions,
    step: usize,
) -> Result<Vec<ActiveWalk>, TransPrError> {
    // Estimate the size of the next frontier to enforce the budget up front.
    let projected: usize = frontier.iter().map(|w| g.out_degree(w.end)).sum();
    if projected > options.max_walks {
        return Err(TransPrError::WalkBudgetExceeded {
            step,
            walks: projected,
            budget: options.max_walks,
        });
    }
    let mut next = Vec::with_capacity(projected);
    for walk in frontier {
        let (neighbors, _) = g.out_arcs(walk.end);
        if neighbors.is_empty() {
            // The walk dies at a vertex with no possible out-arcs.
            continue;
        }
        let (end_out, end_count) = walk.end_stats();
        let fresh_end = end_count == 0;
        // A vertex that has never been left has no accumulated α yet, so the
        // Lemma 2 ratio degenerates to the new α alone.
        let old_alpha = if fresh_end {
            1.0
        } else {
            alpha(g, walk.end, end_out, end_count)
        };
        for (idx, &w) in neighbors.iter().enumerate() {
            let factor = if fresh_end && options.use_shortcut {
                // Lemma 3 style shortcut: the end vertex has never been left
                // before, so the update factor is the expected one-step
                // probability of this arc.
                one_step_rows[walk.end as usize][idx]
            } else {
                // Lemma 2: ratio of the new and old alpha of the end vertex.
                let mut new_out = end_out.to_vec();
                if let Err(pos) = new_out.binary_search(&w) {
                    new_out.insert(pos, w);
                }
                let new_alpha = alpha(g, walk.end, &new_out, end_count + 1);
                if old_alpha == 0.0 {
                    0.0
                } else {
                    new_alpha / old_alpha
                }
            };
            let probability = walk.probability * factor;
            if probability == 0.0 || probability < options.prune_threshold {
                continue;
            }
            let mut stats = walk.stats.clone();
            let entry = stats.entry(walk.end).or_insert_with(|| (Vec::new(), 0));
            if let Err(pos) = entry.0.binary_search(&w) {
                entry.0.insert(pos, w);
            }
            entry.1 += 1;
            next.push(ActiveWalk {
                start: walk.start,
                end: w,
                probability,
                stats,
            });
        }
    }
    Ok(next)
}

/// Runs `TransPr` and returns all matrices `W(1), …, W(k_max)`.
///
/// This enumerates every walk of length up to `k_max` from every vertex, so
/// it is only feasible for small graphs (it is the all-pairs ground truth the
/// tests and the measure-comparison experiment use).  For single-pair SimRank
/// queries use [`transition_rows_from`] instead.
pub fn transition_matrices(
    g: &UncertainGraph,
    k_max: usize,
    options: &TransPrOptions,
) -> Result<TransitionMatrices, TransPrError> {
    let n = g.num_vertices();
    let one_step_rows: Vec<Vec<f64>> = g.vertices().map(|u| expected_one_step_row(g, u)).collect();
    let mut frontier: Vec<ActiveWalk> = g.vertices().map(ActiveWalk::new).collect();
    let mut matrices = Vec::with_capacity(k_max);
    for step in 1..=k_max {
        frontier = extend_frontier(g, frontier, &one_step_rows, options, step)?;
        let mut matrix = DenseMatrix::zeros(n, n);
        for walk in &frontier {
            matrix[(walk.start as usize, walk.end as usize)] += walk.probability;
        }
        matrices.push(matrix);
    }
    Ok(TransitionMatrices {
        num_vertices: n,
        matrices,
    })
}

/// Runs `TransPr` restricted to walks starting at `source` and returns the
/// rows `Pr_G(source →ₖ ·)` for `k = 0, 1, …, k_max` (index `k` of the
/// returned vector; index 0 is the one-hot row at `source`).
///
/// This is what the Baseline SimRank estimator needs for a single-pair query
/// (Section VI-A): `m(k)(u, v)` is the dot product of the two source rows.
pub fn transition_rows_from(
    g: &UncertainGraph,
    source: VertexId,
    k_max: usize,
    options: &TransPrOptions,
) -> Result<Vec<SparseVector>, TransPrError> {
    let one_step_rows: Vec<Vec<f64>> = g.vertices().map(|u| expected_one_step_row(g, u)).collect();
    let mut rows = Vec::with_capacity(k_max + 1);
    rows.push(SparseVector::unit(source, 1.0));
    let mut frontier = vec![ActiveWalk::new(source)];
    for step in 1..=k_max {
        frontier = extend_frontier(g, frontier, &one_step_rows, options, step)?;
        let row = SparseVector::from_pairs(frontier.iter().map(|w| (w.end, w.probability)));
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::Walk;
    use crate::walkpr::walk_probability;
    use ugraph::possible_world::expectation_over_worlds;
    use ugraph::{DiGraph, UncertainGraphBuilder};

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    /// `Pr(u →ₖ v)` on a deterministic graph, by dense matrix powers.
    fn deterministic_k_step(world: &DiGraph, k: usize) -> DenseMatrix {
        let n = world.num_vertices();
        let one = DenseMatrix::from_fn(n, n, |i, j| {
            world.transition_probability(i as VertexId, j as VertexId)
        });
        let mut acc = DenseMatrix::identity(n);
        for _ in 0..k {
            acc = acc.matmul(&one);
        }
        acc
    }

    fn brute_force_k_step(g: &UncertainGraph, k: usize) -> DenseMatrix {
        let n = g.num_vertices();
        let mut acc = DenseMatrix::zeros(n, n);
        for world in ugraph::possible_world::enumerate_worlds(g) {
            let wk = deterministic_k_step(&world.graph, k);
            acc.add_scaled(&wk, world.probability);
        }
        acc
    }

    #[test]
    fn one_step_matrix_matches_brute_force() {
        let g = fig1_graph();
        let tm = transition_matrices(&g, 1, &TransPrOptions::default()).unwrap();
        let brute = brute_force_k_step(&g, 1);
        assert!(tm.step(1).max_abs_diff(&brute) < 1e-10);
    }

    #[test]
    fn multi_step_matrices_match_brute_force() {
        let g = fig1_graph();
        let k_max = 4;
        let tm = transition_matrices(&g, k_max, &TransPrOptions::default()).unwrap();
        for k in 1..=k_max {
            let brute = brute_force_k_step(&g, k);
            let diff = tm.step(k).max_abs_diff(&brute);
            assert!(diff < 1e-9, "W({k}) differs from brute force by {diff}");
        }
    }

    #[test]
    fn k_step_matrix_is_not_a_matrix_power() {
        // The headline observation of the paper: W(k) != (W(1))^k.  The first
        // difference appears at k = 3: a 2-step walk never leaves the same
        // vertex twice, so W(2) still equals (W(1))^2; a 3-step walk can
        // (e.g. u -> v -> u -> w), and from then on the matrices diverge.
        let g = fig1_graph();
        let tm = transition_matrices(&g, 3, &TransPrOptions::default()).unwrap();
        let w1 = tm.step(1).clone();
        let w2_power = w1.matmul(&w1);
        let w3_power = w2_power.matmul(&w1);
        assert!(
            tm.step(2).max_abs_diff(&w2_power) < 1e-12,
            "W(2) must equal (W(1))^2: no vertex can be departed twice in 2 steps"
        );
        assert!(
            tm.step(3).max_abs_diff(&w3_power) > 1e-3,
            "W(3) unexpectedly equals (W(1))^3"
        );
    }

    #[test]
    fn certain_graph_matrices_are_matrix_powers() {
        // Theorem 3 direction: with all probabilities 1 the uncertain-graph
        // machinery degenerates to the deterministic one.
        let g = fig1_graph().certain();
        let tm = transition_matrices(&g, 3, &TransPrOptions::default()).unwrap();
        let det = deterministic_k_step(g.skeleton(), 2);
        assert!(tm.step(2).max_abs_diff(&det) < 1e-12);
        let det3 = deterministic_k_step(g.skeleton(), 3);
        assert!(tm.step(3).max_abs_diff(&det3) < 1e-12);
    }

    #[test]
    fn rows_from_source_match_full_matrices() {
        let g = fig1_graph();
        let k_max = 4;
        let tm = transition_matrices(&g, k_max, &TransPrOptions::default()).unwrap();
        for source in g.vertices() {
            let rows = transition_rows_from(&g, source, k_max, &TransPrOptions::default()).unwrap();
            assert_eq!(rows.len(), k_max + 1);
            assert_eq!(rows[0].get(source), 1.0);
            for (k, row) in rows.iter().enumerate().skip(1) {
                for v in g.vertices() {
                    let from_rows = row.get(v);
                    let from_matrix = tm.probability(k, source, v);
                    assert!(
                        (from_rows - from_matrix).abs() < 1e-12,
                        "k={k}, source={source}, v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn shortcut_and_no_shortcut_agree() {
        let g = fig1_graph();
        let with = transition_matrices(
            &g,
            4,
            &TransPrOptions {
                use_shortcut: true,
                ..Default::default()
            },
        )
        .unwrap();
        let without = transition_matrices(
            &g,
            4,
            &TransPrOptions {
                use_shortcut: false,
                ..Default::default()
            },
        )
        .unwrap();
        for k in 1..=4 {
            assert!(with.step(k).max_abs_diff(without.step(k)) < 1e-12);
        }
    }

    #[test]
    fn row_sums_are_sub_stochastic_and_monotone() {
        // Each row of W(k) sums to the probability that a walk from u
        // survives k steps, which is at most 1 and non-increasing in k.
        let g = fig1_graph();
        let tm = transition_matrices(&g, 4, &TransPrOptions::default()).unwrap();
        let mut previous = vec![1.0; g.num_vertices()];
        for k in 1..=4 {
            let sums = tm.step(k).row_sums();
            for (u, (&s, &prev)) in sums.iter().zip(&previous).enumerate() {
                assert!(s <= 1.0 + 1e-12, "row {u} of W({k}) sums to {s}");
                assert!(
                    s <= prev + 1e-12,
                    "survival must not increase (row {u}, k={k})"
                );
            }
            previous = sums;
        }
    }

    #[test]
    fn entries_match_summed_walk_probabilities() {
        // Pr(u ->_k v) is the sum of walk probabilities over all length-k
        // walks from u to v (Eq. 7); check by explicit enumeration for k = 3.
        let g = fig1_graph();
        let tm = transition_matrices(&g, 3, &TransPrOptions::default()).unwrap();
        let n = g.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                let mut total = 0.0;
                for a in 0..n {
                    for b in 0..n {
                        let walk = Walk::from_vertices(vec![u, a, b, v]);
                        if walk.is_walk_on(&g) {
                            total += walk_probability(&g, &walk);
                        }
                    }
                }
                let entry = tm.probability(3, u, v);
                assert!(
                    (entry - total).abs() < 1e-10,
                    "Pr({u} ->3 {v}) = {entry}, walk sum = {total}"
                );
            }
        }
    }

    #[test]
    fn meeting_probability_matches_brute_force() {
        let g = fig1_graph();
        let tm = transition_matrices(&g, 3, &TransPrOptions::default()).unwrap();
        // Brute force: expectation over worlds of the meeting probability of
        // two *independent* walks — careful, that is NOT the same thing as
        // the product of marginals in general; the paper's definition
        // multiplies the marginal k-step probabilities, so compare to that.
        for k in 1..=3 {
            for u in g.vertices() {
                for v in g.vertices() {
                    let direct: f64 = g
                        .vertices()
                        .map(|w| tm.probability(k, u, w) * tm.probability(k, v, w))
                        .sum();
                    let fast = tm.meeting_probability(k, u, v);
                    assert!((direct - fast).abs() < 1e-12);
                }
            }
        }
        let _ = expectation_over_worlds(&g, |_| 0.0); // silence unused import lint path
    }

    #[test]
    fn walk_budget_is_enforced() {
        let g = fig1_graph();
        let options = TransPrOptions {
            max_walks: 3,
            ..Default::default()
        };
        let err = transition_matrices(&g, 3, &options).unwrap_err();
        assert!(matches!(err, TransPrError::WalkBudgetExceeded { .. }));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn pruning_threshold_only_loses_low_probability_mass() {
        let g = fig1_graph();
        let exact = transition_matrices(&g, 3, &TransPrOptions::default()).unwrap();
        let pruned = transition_matrices(
            &g,
            3,
            &TransPrOptions {
                prune_threshold: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        for k in 1..=3 {
            let diff = exact.step(k).max_abs_diff(pruned.step(k));
            assert!(diff < 0.05, "pruning changed W({k}) by {diff}");
            // Pruning can only remove probability mass.
            for u in 0..g.num_vertices() {
                for v in 0..g.num_vertices() {
                    assert!(pruned.step(k)[(u, v)] <= exact.step(k)[(u, v)] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn step_zero_probabilities() {
        let g = fig1_graph();
        let tm = transition_matrices(&g, 1, &TransPrOptions::default()).unwrap();
        assert_eq!(tm.probability(0, 2, 2), 1.0);
        assert_eq!(tm.probability(0, 2, 3), 0.0);
        assert_eq!(tm.meeting_probability(0, 1, 1), 1.0);
        assert_eq!(tm.meeting_probability(0, 1, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "not computed")]
    fn step_out_of_range_panics() {
        let g = fig1_graph();
        let tm = transition_matrices(&g, 2, &TransPrOptions::default()).unwrap();
        let _ = tm.step(3);
    }
}
