//! The `WalkPr` algorithm (Fig. 2 of the paper): exact walk probabilities on
//! uncertain graphs.
//!
//! For a walk `W = v₀, v₁, …, v_k` on an uncertain graph `G`, the walk
//! probability `Pr_G(X₁ = v₁, …, X_k = v_k | X₀ = v₀)` is, by Lemma 1,
//!
//! ```text
//! Pr_G(W) = Π_{v ∈ V(W)} α_W(v),
//! α_W(v)  = Π_{w ∈ O_W(v)} P(v, w) · Σ_x r(n, x) · inv(x + |O_W(v)|)^{c_W(v)},
//! ```
//!
//! where `r(n, x)` is the probability that exactly `x` of the arcs leaving
//! `v` that the walk does *not* use are present in a random possible world
//! (Eq. 11), and `inv(x) = 1/x` for `x ≠ 0`, `inv(0) = 1`.
//!
//! The crucial point (end of Section IV's introduction) is that `Pr_G(W)` is
//! **not** the product of one-step transition probabilities whenever the walk
//! revisits a vertex: transitions out of a revisited vertex share the same
//! possible world and are therefore positively correlated.  The tests below
//! check both the exact values against brute-force possible-world enumeration
//! and the non-factorisation on the paper's running example.

use crate::walk::Walk;
use ugraph::{Probability, UncertainGraph, VertexId};

/// `inv(x)` of the paper: `1/x` for `x ≠ 0` and `1` for `x = 0`.
#[inline]
pub fn inv(x: usize) -> f64 {
    if x == 0 {
        1.0
    } else {
        1.0 / x as f64
    }
}

/// Distribution of the number of *present* arcs among independent arcs with
/// the given existence probabilities: returns `r` where `r[x]` is the
/// probability that exactly `x` arcs exist (the `r(n, ·)` table of Fig. 2,
/// lines 3–9).
pub fn presence_count_distribution(probabilities: &[Probability]) -> Vec<f64> {
    let mut r = vec![0.0; probabilities.len() + 1];
    r[0] = 1.0;
    for (i, &p) in probabilities.iter().enumerate() {
        // Process arcs one at a time, updating counts high-to-low so each
        // arc is counted once.
        let upper = i + 1;
        r[upper] = r[upper - 1] * p;
        for j in (1..upper).rev() {
            r[j] = r[j - 1] * p + r[j] * (1.0 - p);
        }
        r[0] *= 1.0 - p;
    }
    r
}

/// Computes `α_W(v)` (Eq. 11) for a vertex `v` given `O_W(v)` (`walk_out`,
/// sorted, duplicate-free) and `c_W(v)` (`walk_out_count`).
///
/// Returns 0 when some arc `(v, w)` with `w ∈ O_W(v)` does not exist in the
/// uncertain graph (then `W` is not a walk on `G`).
pub fn alpha(g: &UncertainGraph, v: VertexId, walk_out: &[VertexId], walk_out_count: usize) -> f64 {
    debug_assert!(
        walk_out.windows(2).all(|w| w[0] < w[1]),
        "walk_out must be sorted"
    );
    if walk_out_count == 0 {
        // A vertex that the walk never leaves contributes a factor of 1.
        return 1.0;
    }
    let (neighbors, probabilities) = g.out_arcs(v);
    let mut used_product = 1.0;
    let mut other_probs: Vec<Probability> = Vec::with_capacity(neighbors.len());
    let mut used_found = 0usize;
    for (idx, &w) in neighbors.iter().enumerate() {
        if walk_out.binary_search(&w).is_ok() {
            used_product *= probabilities[idx];
            used_found += 1;
        } else {
            other_probs.push(probabilities[idx]);
        }
    }
    if used_found != walk_out.len() {
        // The walk uses an arc that is not even a possible arc of G.
        return 0.0;
    }
    let r = presence_count_distribution(&other_probs);
    let base_degree = walk_out.len();
    let mut expectation = 0.0;
    for (x, &rx) in r.iter().enumerate() {
        expectation += rx * inv(x + base_degree).powi(walk_out_count as i32);
    }
    used_product * expectation
}

/// The `WalkPr` algorithm (Fig. 2): the exact probability
/// `Pr_G(X₁ = v₁, …, X_k = v_k | X₀ = v₀)` of the walk on the uncertain
/// graph `g`, i.e. the probability that a random walk started at `v₀` on a
/// randomly selected possible world follows exactly this vertex sequence.
///
/// Returns 0 if the sequence is not a walk of `g`.
pub fn walk_probability(g: &UncertainGraph, walk: &Walk) -> f64 {
    if !walk.is_walk_on(g) {
        return 0.0;
    }
    let mut probability = 1.0;
    for (v, stats) in walk.vertex_stats() {
        probability *= alpha(g, v, &stats.out_neighbors, stats.out_count);
        if probability == 0.0 {
            return 0.0;
        }
    }
    probability
}

/// The walk-probability ratio of Lemma 2: when a walk `W` ending at vertex
/// `v_k` is extended by one arc `(v_k, v_{k+1})`, only `α_W(v_k)` changes, so
///
/// ```text
/// Pr(W') / Pr(W) = α_{W'}(v_k) / α_W(v_k).
/// ```
///
/// `old_out` / `old_count` are `O_W(v_k)` / `c_W(v_k)` *before* the
/// extension; the function returns the multiplicative update factor, or 0 if
/// `(v_k, v_{k+1})` is not an arc of `g`.
pub fn extension_factor(
    g: &UncertainGraph,
    last_vertex: VertexId,
    old_out: &[VertexId],
    old_count: usize,
    next_vertex: VertexId,
) -> f64 {
    if !g.has_arc(last_vertex, next_vertex) {
        return 0.0;
    }
    let old_alpha = alpha(g, last_vertex, old_out, old_count);
    if old_alpha == 0.0 {
        return 0.0;
    }
    let mut new_out = old_out.to_vec();
    if let Err(pos) = new_out.binary_search(&next_vertex) {
        new_out.insert(pos, next_vertex);
    }
    let new_alpha = alpha(g, last_vertex, &new_out, old_count + 1);
    new_alpha / old_alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::possible_world::expectation_over_worlds;
    use ugraph::{DiGraph, UncertainGraphBuilder};

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    /// Walk probability on a deterministic possible world: the product of
    /// uniform one-step transition probabilities, or 0 if not a walk.
    fn deterministic_walk_probability(world: &DiGraph, walk: &Walk) -> f64 {
        walk.vertices()
            .windows(2)
            .map(|pair| world.transition_probability(pair[0], pair[1]))
            .product()
    }

    fn brute_force_walk_probability(g: &UncertainGraph, walk: &Walk) -> f64 {
        expectation_over_worlds(g, |world| deterministic_walk_probability(world, walk))
    }

    #[test]
    fn presence_distribution_is_a_distribution() {
        let r = presence_count_distribution(&[0.3, 0.9, 0.5]);
        assert_eq!(r.len(), 4);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // r[3] = all present.
        assert!((r[3] - 0.3 * 0.9 * 0.5).abs() < 1e-12);
        // r[0] = none present.
        assert!((r[0] - 0.7 * 0.1 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn presence_distribution_of_no_arcs() {
        let r = presence_count_distribution(&[]);
        assert_eq!(r, vec![1.0]);
    }

    #[test]
    fn presence_distribution_matches_paper_recurrence() {
        // The r(i, j) recurrence of Fig. 2 computed by hand for two arcs with
        // probabilities 0.8 and 0.5:
        //   r(2,0) = 0.2*0.5 = 0.1, r(2,1) = 0.8*0.5 + 0.2*0.5 = 0.5,
        //   r(2,2) = 0.8*0.5 = 0.4.
        let r = presence_count_distribution(&[0.8, 0.5]);
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert!((r[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_step_walk_probability_is_expected_inverse_degree() {
        let g = fig1_graph();
        // Walk v1 -> v3 (0 -> 2).  O_G(v1) = {v3 (0.8), v4 (0.5)}.
        // alpha = 0.8 * [0.5 * inv(1) + 0.5 * inv(2)] = 0.8 * 0.75 = 0.6.
        let w = Walk::from_vertices(vec![0, 2]);
        let p = walk_probability(&g, &w);
        assert!((p - 0.6).abs() < 1e-12);
        assert!((p - brute_force_walk_probability(&g, &w)).abs() < 1e-12);
    }

    #[test]
    fn walk_probabilities_match_possible_world_expectation() {
        let g = fig1_graph();
        let walks = vec![
            vec![0, 2],
            vec![0, 2, 0],
            vec![0, 2, 3, 4],
            vec![0, 2, 0, 2],
            vec![0, 2, 0, 3, 1, 2],
            vec![1, 0, 2, 3, 1],
            vec![2, 0, 2, 0, 2],
            vec![3, 1, 2, 3, 1, 2],
            vec![0, 3, 1, 0, 3],
        ];
        for vs in walks {
            let w = Walk::from_vertices(vs.clone());
            let exact = walk_probability(&g, &w);
            let brute = brute_force_walk_probability(&g, &w);
            assert!(
                (exact - brute).abs() < 1e-10,
                "walk {vs:?}: WalkPr = {exact}, brute force = {brute}"
            );
        }
    }

    #[test]
    fn non_walk_has_zero_probability() {
        let g = fig1_graph();
        assert_eq!(walk_probability(&g, &Walk::from_vertices(vec![0, 1])), 0.0);
        assert_eq!(
            walk_probability(&g, &Walk::from_vertices(vec![4, 0])),
            0.0,
            "v5 has no out-arcs at all"
        );
    }

    #[test]
    fn walk_probability_does_not_factor_into_one_step_probabilities() {
        // The key observation of Section IV: for a walk that revisits a
        // vertex, Pr(W) != product of one-step probabilities.
        let g = fig1_graph();
        let one_step =
            |u: VertexId, v: VertexId| walk_probability(&g, &Walk::from_vertices(vec![u, v]));
        // Walk 0 -> 2 -> 0 -> 2 revisits both 0 and 2.
        let w = Walk::from_vertices(vec![0, 2, 0, 2]);
        let exact = walk_probability(&g, &w);
        let product = one_step(0, 2) * one_step(2, 0) * one_step(0, 2);
        assert!(
            (exact - product).abs() > 1e-3,
            "expected correlation to make these differ: exact = {exact}, product = {product}"
        );
        // The correlated probability is larger: conditioned on having used an
        // arc once, the out-degree distribution is biased the same way again.
        assert!(exact > product);
    }

    #[test]
    fn walk_probability_factors_when_no_vertex_repeats() {
        let g = fig1_graph();
        let w = Walk::from_vertices(vec![1, 0, 2, 3, 4]);
        let exact = walk_probability(&g, &w);
        let product: f64 = vec![(1, 0), (0, 2), (2, 3), (3, 4)]
            .into_iter()
            .map(|(u, v)| walk_probability(&g, &Walk::from_vertices(vec![u, v])))
            .product();
        assert!((exact - product).abs() < 1e-12);
    }

    #[test]
    fn certain_graph_recovers_deterministic_walk_probability() {
        let g = fig1_graph().certain();
        let skeleton = g.skeleton().clone();
        let w = Walk::from_vertices(vec![0, 2, 0, 2, 3, 1]);
        let exact = walk_probability(&g, &w);
        let det = deterministic_walk_probability(&skeleton, &w);
        assert!((exact - det).abs() < 1e-12);
    }

    #[test]
    fn alpha_rejects_impossible_out_neighbors() {
        let g = fig1_graph();
        // Vertex 0 has no possible arc to 1.
        assert_eq!(alpha(&g, 0, &[1], 1), 0.0);
    }

    #[test]
    fn alpha_with_zero_count_is_one() {
        let g = fig1_graph();
        assert_eq!(alpha(&g, 0, &[], 0), 1.0);
        assert_eq!(alpha(&g, 4, &[], 0), 1.0);
    }

    #[test]
    fn extension_factor_matches_full_recomputation() {
        let g = fig1_graph();
        let base = Walk::from_vertices(vec![0, 2, 0]);
        let base_p = walk_probability(&g, &base);
        // Extend by 2 (vertex 0 -> 2 again) and by 3 (vertex 0 -> 3).
        for next in [2u32, 3u32] {
            let stats = base.vertex_stats();
            let end_stats = &stats[&base.end()];
            let factor = extension_factor(
                &g,
                base.end(),
                &end_stats.out_neighbors,
                end_stats.out_count,
                next,
            );
            let extended_p = walk_probability(&g, &base.extended(next));
            assert!(
                (base_p * factor - extended_p).abs() < 1e-12,
                "extension by {next}: incremental {} vs exact {extended_p}",
                base_p * factor
            );
        }
    }

    #[test]
    fn extension_factor_of_missing_arc_is_zero() {
        let g = fig1_graph();
        assert_eq!(extension_factor(&g, 0, &[2], 1, 1), 0.0);
    }
}
