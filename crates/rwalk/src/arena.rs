//! Allocation-free walk sampling on [`GraphView`]s (the static
//! [`ugraph::CsrView`] or the live [`ugraph::OverlayView`]) via a reusable
//! [`WalkArena`].
//!
//! [`crate::sampler::WalkSampler`] is correct but allocation-heavy: every
//! walk clears a `HashMap<VertexId, Vec<VertexId>>` memo and every first
//! visit to a vertex allocates a fresh `Vec` for its instantiated out-arcs,
//! and every sampled walk allocates a `Vec<Option<VertexId>>` of positions.
//! At batch-query rates (thousands of pairs × thousands of walks) that
//! allocator traffic dominates the profile.
//!
//! [`WalkArena`] replaces all of it with flat, reusable buffers:
//!
//! * an **epoch-stamped visit table** — `stamp[v] == epoch` means vertex `v`
//!   was instantiated during the current walk, so "clearing" the memo between
//!   walks is a single integer increment;
//! * a **bump-allocated instantiation pool** — the surviving out-neighbors of
//!   every first-visited vertex are appended to one shared `Vec`, truncated
//!   (capacity kept) at walk start;
//! * caller-provided **position buffers** (`Vec<VertexId>` with
//!   [`DEAD`] as the tombstone), reused across samples.
//!
//! In steady state a worker thread owns one arena and samples arbitrarily
//! many walks without touching the allocator.
//!
//! [`CsrSampler`] reproduces the lazily-instantiated walk semantics of
//! Fig. 4 of the paper **and** the exact RNG draw order of
//! [`crate::sampler::WalkSampler`] (per first visit: one uniform draw per
//! possible out-arc in neighbor order, then one `gen_range` over the
//! survivors), so a walk sampled through the arena from a given RNG state is
//! bit-identical to one sampled by `WalkSampler` from the same state.  The
//! estimator migration in `usim_core` relies on this equivalence.

use crate::sampler::DeadEndPolicy;
use rand::Rng;
use ugraph::{alias_draw, AliasView, GraphView, VertexId};

/// Tombstone marking a dead walk position (the walk terminated earlier).
/// Real vertex ids are `< num_vertices`, far below `u32::MAX` in practice.
pub const DEAD: VertexId = VertexId::MAX;

/// Reusable per-worker scratch space for allocation-free walk sampling.
///
/// An arena is independent of any particular graph: it grows its tables to
/// the largest `num_vertices` it has seen and can be reused across graphs
/// and queries.  It is `Send`, so batch engines hand one to each worker.
#[derive(Debug, Default)]
pub struct WalkArena {
    /// Current walk epoch; `stamp[v] == epoch` ⇔ `v` instantiated this walk.
    epoch: u32,
    /// Per-vertex epoch stamps.
    stamp: Vec<u32>,
    /// Per-vertex `(start, len)` into `pool`, valid when the stamp matches.
    slots: Vec<(u32, u32)>,
    /// Bump-allocated instantiated out-neighbors of first-visited vertices.
    pool: Vec<VertexId>,
}

impl WalkArena {
    /// Creates an empty arena; tables grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena pre-sized for graphs with `num_vertices` vertices.
    pub fn with_capacity(num_vertices: usize) -> Self {
        WalkArena {
            epoch: 0,
            stamp: vec![0; num_vertices],
            slots: vec![(0, 0); num_vertices],
            pool: Vec::new(),
        }
    }

    /// Grows the per-vertex tables to cover `num_vertices` vertices.
    fn ensure_vertices(&mut self, num_vertices: usize) {
        if self.stamp.len() < num_vertices {
            self.stamp.resize(num_vertices, 0);
            self.slots.resize(num_vertices, (0, 0));
        }
    }

    /// Starts a fresh walk: invalidates every instantiation in O(1).
    fn begin_walk(&mut self) {
        self.pool.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(next) => next,
            None => {
                // Epoch wrapped (once per 2^32 walks): reset all stamps so no
                // stale entry can alias the new epoch.
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Invalidates every memoized instantiation by bumping the walk epoch —
    /// O(1) (amortised), no buffer is freed or reallocated.
    ///
    /// Within one walk the memo is already reset by the per-walk epoch bump,
    /// so this exists for *graph* changes: a batch engine that mutates its
    /// graph (e.g. `QueryEngine::apply_updates` applying a
    /// [`ugraph::DeltaOverlay`] delta batch) calls this on every pooled
    /// arena so that no instantiation recorded against the old adjacency can
    /// ever be observed again, even by callers that keep an arena alive
    /// across updates.
    pub fn invalidate(&mut self) {
        usim_obs::walk_metrics().count_arena_invalidation();
        self.pool.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(next) => next,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Returns `(pool_start, len)` of the instantiated out-arcs of `v` for
    /// the current walk, instantiating them on first visit (one uniform draw
    /// per possible arc, in neighbor order — the `WalkSampler` draw order).
    fn instantiate<V: GraphView, R: Rng + ?Sized>(
        &mut self,
        view: &V,
        v: VertexId,
        rng: &mut R,
    ) -> (u32, u32) {
        if self.stamp[v as usize] == self.epoch {
            return self.slots[v as usize];
        }
        // First visit in this walk: the row is materialised below, which is
        // already O(degree) in RNG draws — one gated counter bump is noise.
        usim_obs::walk_metrics().count_rows_instantiated(1);
        let start = self.pool.len() as u32;
        let neighbors = view.neighbors(v);
        let probabilities = view.probabilities(v);
        for (&w, &p) in neighbors.iter().zip(probabilities) {
            if rng.gen::<f64>() < p {
                self.pool.push(w);
            }
        }
        let slot = (start, self.pool.len() as u32 - start);
        self.stamp[v as usize] = self.epoch;
        self.slots[v as usize] = slot;
        slot
    }
}

/// A sampler of lazily-instantiated random walks over any [`GraphView`]
/// (the static [`ugraph::CsrView`] or the live [`ugraph::OverlayView`] of a
/// mutating [`ugraph::DeltaOverlay`]), writing positions into
/// caller-provided buffers through a [`WalkArena`].
///
/// The sampler consumes the RNG purely through the slices the view returns
/// (one uniform draw per possible arc of each first-visited vertex, then one
/// `gen_range` over the survivors).  An overlay view returns the identical
/// base slices for untouched vertices, so walks that only visit untouched
/// vertices are bit-identical to walks over the plain CSR view — pinned by
/// this module's tests.
#[derive(Debug, Clone, Copy)]
pub struct CsrSampler<V> {
    view: V,
    dead_end_policy: DeadEndPolicy,
}

impl<V: GraphView + Copy> CsrSampler<V> {
    /// Creates a sampler over `view` with the default dead-end policy
    /// (terminate, matching the sub-stochastic exact transition rows).
    pub fn new(view: V) -> Self {
        Self::with_policy(view, DeadEndPolicy::default())
    }

    /// Creates a sampler with an explicit dead-end policy.
    pub fn with_policy(view: V, dead_end_policy: DeadEndPolicy) -> Self {
        CsrSampler {
            view,
            dead_end_policy,
        }
    }

    /// The view this sampler walks.
    pub fn view(&self) -> V {
        self.view
    }

    /// The dead-end policy in use.
    pub fn dead_end_policy(&self) -> DeadEndPolicy {
        self.dead_end_policy
    }

    /// Samples one walk of horizon `length` from `start`, writing the
    /// `length + 1` positions (step `k` at index `k`; [`DEAD`] once the walk
    /// terminated) into `positions`, which is cleared first and reused
    /// without reallocation across calls.
    ///
    /// Each call is one independent walk: arc instantiations are shared
    /// *within* the call across revisits (Fig. 4 of the paper) and discarded
    /// between calls.
    pub fn sample_walk_into<R: Rng + ?Sized>(
        &self,
        arena: &mut WalkArena,
        start: VertexId,
        length: usize,
        rng: &mut R,
        positions: &mut Vec<VertexId>,
    ) {
        debug_assert!((start as usize) < self.view.num_vertices());
        arena.ensure_vertices(self.view.num_vertices());
        arena.begin_walk();
        positions.clear();
        positions.reserve(length + 1);
        positions.push(start);
        let mut current = start;
        for step in 0..length {
            if current == DEAD {
                // Already dead: pad the remaining steps in one go.
                positions.resize(length + 1, DEAD);
                debug_assert_eq!(positions.len(), step + 1 + (length - step));
                break;
            }
            let (pool_start, len) = arena.instantiate(&self.view, current, rng);
            current = if len == 0 {
                match self.dead_end_policy {
                    DeadEndPolicy::Terminate => DEAD,
                    DeadEndPolicy::StayInPlace => current,
                }
            } else {
                arena.pool[pool_start as usize + rng.gen_range(0..len as usize)]
            };
            positions.push(current);
        }
    }
}

/// The table-driven step path: a sampler of random walks over precomputed
/// Walker alias tables (an [`AliasView`] — the static
/// [`ugraph::CsrAliasView`] or the live [`ugraph::OverlayAliasView`]).
///
/// Each step costs exactly **one** `f64` draw and one slot read, independent
/// of vertex degree: the integer part of the scaled draw picks a slot, the
/// fractional part flips the slot's biased coin (see [`ugraph::alias`]).
/// Because each step is drawn independently from the vertex's *expected
/// one-step marginal* (death mass included as the [`DEAD`] outcome), no
/// instantiation memo — and therefore no [`WalkArena`] — is needed.
///
/// This backend is **not** draw-order (or distribution) compatible with
/// [`CsrSampler`] beyond two steps: it trades the within-walk possible-world
/// correlation of the lazy sampler for raw speed.  Engines treat the two as
/// distinct, versioned backends (`SamplerKind` in `usim_core`) and never mix
/// their answers.  Its own determinism pin is simpler than the legacy one:
/// every live step consumes exactly one RNG draw, so a walk's RNG
/// consumption depends only on where the walk dies — and equal seeds give
/// bit-identical walks over equal tables.
#[derive(Debug, Clone, Copy)]
pub struct AliasSampler<V> {
    view: V,
    dead_end_policy: DeadEndPolicy,
}

impl<V: AliasView + Copy> AliasSampler<V> {
    /// Creates a sampler over `view` with the default dead-end policy
    /// (terminate).
    pub fn new(view: V) -> Self {
        Self::with_policy(view, DeadEndPolicy::default())
    }

    /// Creates a sampler with an explicit dead-end policy.
    pub fn with_policy(view: V, dead_end_policy: DeadEndPolicy) -> Self {
        AliasSampler {
            view,
            dead_end_policy,
        }
    }

    /// The alias view this sampler walks.
    pub fn view(&self) -> V {
        self.view
    }

    /// The dead-end policy in use.
    pub fn dead_end_policy(&self) -> DeadEndPolicy {
        self.dead_end_policy
    }

    /// Samples one walk of horizon `length` from `start`, writing the
    /// `length + 1` positions (step `k` at index `k`; [`DEAD`] once the walk
    /// terminated) into `positions`, which is cleared first and reused
    /// without reallocation across calls.
    pub fn sample_walk_into<R: Rng + ?Sized>(
        &self,
        start: VertexId,
        length: usize,
        rng: &mut R,
        positions: &mut Vec<VertexId>,
    ) {
        debug_assert!((start as usize) < self.view.num_vertices());
        positions.clear();
        positions.reserve(length + 1);
        positions.push(start);
        let mut current = start;
        for _ in 0..length {
            let drawn = alias_draw(self.view.slots(current), rng.gen::<f64>());
            if drawn == DEAD {
                match self.dead_end_policy {
                    DeadEndPolicy::Terminate => {
                        // Dead: pad the remaining steps in one go.
                        positions.resize(length + 1, DEAD);
                        break;
                    }
                    DeadEndPolicy::StayInPlace => {
                        // "No arc exists" keeps the walk where it is, the
                        // alias analogue of an empty survivor set.
                        positions.push(current);
                    }
                }
            } else {
                current = drawn;
                positions.push(current);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::WalkSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ugraph::{CsrGraph, UncertainGraph, UncertainGraphBuilder};

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn walks_are_bit_identical_to_walk_sampler() {
        // The arena sampler consumes the RNG in exactly the same order as
        // WalkSampler, so from equal RNG states the walks must be equal —
        // this is what lets the estimators migrate without changing results.
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::new(csr.forward());
        let mut arena = WalkArena::new();
        let mut positions = Vec::new();

        let mut legacy = WalkSampler::new(&g);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        for start in [0u32, 1, 2, 3, 4] {
            for _ in 0..50 {
                let reference = legacy.sample_walk(start, 6, &mut rng_a);
                sampler.sample_walk_into(&mut arena, start, 6, &mut rng_b, &mut positions);
                assert_eq!(positions.len(), 7);
                for (k, &position) in positions.iter().enumerate() {
                    let expected = reference.position(k).unwrap_or(DEAD);
                    assert_eq!(position, expected, "start {start}, step {k}");
                }
            }
        }
        // Both RNGs must have advanced identically.
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn reverse_view_walks_match_walking_the_transpose() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let transposed = g.transpose();
        let mut legacy = WalkSampler::new(&transposed);
        let sampler = CsrSampler::new(csr.reverse());
        let mut arena = WalkArena::new();
        let mut positions = Vec::new();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for start in [0u32, 2, 4] {
            for _ in 0..30 {
                let reference = legacy.sample_walk(start, 5, &mut rng_a);
                sampler.sample_walk_into(&mut arena, start, 5, &mut rng_b, &mut positions);
                for (k, &position) in positions.iter().enumerate() {
                    assert_eq!(position, reference.position(k).unwrap_or(DEAD));
                }
            }
        }
    }

    #[test]
    fn instantiation_is_shared_within_a_walk() {
        // One probabilistic 2-cycle: a walk either dies within its first
        // visit to each vertex or survives the whole horizon (revisits reuse
        // the instantiation).
        let g = UncertainGraphBuilder::new(2)
            .arc(0, 1, 0.5)
            .arc(1, 0, 0.5)
            .build()
            .unwrap();
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::new(csr.forward());
        let mut arena = WalkArena::new();
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut survived = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            sampler.sample_walk_into(&mut arena, 0, 6, &mut rng, &mut positions);
            let steps = positions.iter().take_while(|&&p| p != DEAD).count() - 1;
            assert!(
                steps == 0 || steps == 1 || steps == 6,
                "shared instantiation allows death only at first visits; survived {steps}"
            );
            if steps == 6 {
                survived += 1;
            }
        }
        let rate = survived as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "survival rate {rate}");
    }

    #[test]
    fn stay_in_place_policy_keeps_the_walk_at_dead_ends() {
        let g = fig1_graph(); // vertex 4 has no out-arcs
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::with_policy(csr.forward(), DeadEndPolicy::StayInPlace);
        assert_eq!(sampler.dead_end_policy(), DeadEndPolicy::StayInPlace);
        let mut arena = WalkArena::new();
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        sampler.sample_walk_into(&mut arena, 4, 3, &mut rng, &mut positions);
        assert_eq!(positions, vec![4, 4, 4, 4]);

        let terminating = CsrSampler::new(csr.forward());
        terminating.sample_walk_into(&mut arena, 4, 3, &mut rng, &mut positions);
        assert_eq!(positions, vec![4, DEAD, DEAD, DEAD]);
    }

    #[test]
    fn buffers_are_reused_without_reallocation() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::new(csr.forward());
        let mut arena = WalkArena::with_capacity(g.num_vertices());
        let mut positions = Vec::with_capacity(8);
        let mut rng = StdRng::seed_from_u64(11);
        // Warm until every buffer has reached steady-state size.
        for _ in 0..50 {
            sampler.sample_walk_into(&mut arena, 0, 7, &mut rng, &mut positions);
        }
        let pool_capacity = arena.pool.capacity();
        let positions_capacity = positions.capacity();
        for _ in 0..500 {
            sampler.sample_walk_into(&mut arena, 0, 7, &mut rng, &mut positions);
        }
        assert_eq!(arena.pool.capacity(), pool_capacity);
        assert_eq!(positions.capacity(), positions_capacity);
        assert_eq!(arena.stamp.len(), 5);
    }

    #[test]
    fn zero_length_walk_is_just_the_start() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::new(csr.forward());
        let mut arena = WalkArena::new();
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        sampler.sample_walk_into(&mut arena, 2, 0, &mut rng, &mut positions);
        assert_eq!(positions, vec![2]);
    }

    #[test]
    fn empty_overlay_walks_are_bit_identical_to_csr_walks() {
        // An overlay with no deltas serves the base slices themselves, so
        // the sampler must consume the RNG identically — the equivalence the
        // dynamic engine relies on.
        use ugraph::DeltaOverlay;
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let overlay = DeltaOverlay::from_graph(&g);
        let csr_sampler = CsrSampler::new(csr.forward());
        let overlay_sampler = CsrSampler::new(overlay.forward());
        let mut arena_a = WalkArena::new();
        let mut arena_b = WalkArena::new();
        let (mut pos_a, mut pos_b) = (Vec::new(), Vec::new());
        let mut rng_a = StdRng::seed_from_u64(33);
        let mut rng_b = StdRng::seed_from_u64(33);
        for start in [0u32, 1, 2, 3, 4] {
            for _ in 0..40 {
                csr_sampler.sample_walk_into(&mut arena_a, start, 6, &mut rng_a, &mut pos_a);
                overlay_sampler.sample_walk_into(&mut arena_b, start, 6, &mut rng_b, &mut pos_b);
                assert_eq!(pos_a, pos_b);
            }
        }
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn walks_over_untouched_vertices_ignore_overlay_churn() {
        // Two disconnected 2-cycles; churn only touches the {2, 3} cycle.
        // Walks starting in the untouched {0, 1} cycle must stay
        // bit-identical to walks over the static graph, RNG state included —
        // this is the "unchanged draw order on untouched vertices" pin.
        use ugraph::{DeltaOverlay, GraphUpdate};
        let g = UncertainGraphBuilder::new(4)
            .arc(0, 1, 0.8)
            .arc(1, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 2, 0.5)
            .build()
            .unwrap();
        let csr = CsrGraph::from_uncertain(&g);
        let mut overlay = DeltaOverlay::from_graph(&g);
        overlay
            .apply_all(&[
                GraphUpdate::DeleteArc {
                    source: 2,
                    target: 3,
                },
                GraphUpdate::InsertArc {
                    source: 2,
                    target: 2,
                    probability: 0.9,
                },
                GraphUpdate::SetProbability {
                    source: 3,
                    target: 2,
                    probability: 0.1,
                },
            ])
            .unwrap();
        let static_sampler = CsrSampler::new(csr.forward());
        let live_sampler = CsrSampler::new(overlay.forward());
        let mut arena_a = WalkArena::new();
        let mut arena_b = WalkArena::new();
        let (mut pos_a, mut pos_b) = (Vec::new(), Vec::new());
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for start in [0u32, 1] {
            for _ in 0..100 {
                static_sampler.sample_walk_into(&mut arena_a, start, 8, &mut rng_a, &mut pos_a);
                live_sampler.sample_walk_into(&mut arena_b, start, 8, &mut rng_b, &mut pos_b);
                assert_eq!(pos_a, pos_b);
            }
        }
        assert_eq!(rng_a, rng_b, "untouched walks must not perturb the RNG");
        // Sanity: the churn is visible to walks that do start on a touched
        // vertex (vertex 2 now has a self-loop instead of the arc to 3).
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            live_sampler.sample_walk_into(&mut arena_b, 2, 4, &mut rng, &mut pos_b);
            assert!(
                pos_b.iter().all(|&p| p == 2 || p == DEAD),
                "walk escaped the rewired vertex: {pos_b:?}"
            );
        }
    }

    fn alias_csr(g: &UncertainGraph) -> CsrGraph {
        let mut csr = CsrGraph::from_uncertain(g);
        csr.build_alias_tables();
        csr
    }

    #[test]
    fn alias_walks_are_valid_walks_on_the_graph() {
        let g = fig1_graph();
        let csr = alias_csr(&g);
        let sampler = AliasSampler::new(csr.forward_alias().unwrap());
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(13);
        for start in [0u32, 1, 2, 3, 4] {
            for _ in 0..200 {
                sampler.sample_walk_into(start, 6, &mut rng, &mut positions);
                assert_eq!(positions.len(), 7);
                assert_eq!(positions[0], start);
                for window in positions.windows(2) {
                    match (window[0], window[1]) {
                        (DEAD, next) => assert_eq!(next, DEAD, "no resurrection"),
                        (_, DEAD) => {}
                        (u, v) => assert!(g.has_arc(u, v), "({u}, {v}) is not an arc"),
                    }
                }
            }
        }
    }

    #[test]
    fn alias_one_step_frequencies_match_the_expected_marginals() {
        // Vertex 0 of Fig. 1: Pr(0→2) = 0.6, Pr(0→3) = 0.3, death 0.1 (the
        // exact expected one-step row, see ugraph::alias).
        let g = fig1_graph();
        let csr = alias_csr(&g);
        let sampler = AliasSampler::new(csr.forward_alias().unwrap());
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 40_000;
        let mut to2 = 0usize;
        let mut to3 = 0usize;
        let mut died = 0usize;
        for _ in 0..trials {
            sampler.sample_walk_into(0, 1, &mut rng, &mut positions);
            match positions[1] {
                2 => to2 += 1,
                3 => to3 += 1,
                DEAD => died += 1,
                other => panic!("impossible one-step successor {other}"),
            }
        }
        assert!((to2 as f64 / trials as f64 - 0.6).abs() < 0.01);
        assert!((to3 as f64 / trials as f64 - 0.3).abs() < 0.01);
        assert!((died as f64 / trials as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn alias_walks_on_certain_graphs_match_uniform_skeleton_walks() {
        // All probabilities 1: the expected marginal is the uniform skeleton
        // transition, so the alias walk is an ordinary random walk and never
        // dies except at true dead ends.
        let g = fig1_graph().certain();
        let csr = alias_csr(&g);
        let sampler = AliasSampler::new(csr.forward_alias().unwrap());
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            sampler.sample_walk_into(0, 8, &mut rng, &mut positions);
            for window in positions.windows(2) {
                if window[1] == DEAD {
                    // Only vertex 4 (no out-arcs) kills a walk.
                    assert!(window[0] == 4 || window[0] == DEAD, "{positions:?}");
                } else {
                    assert!(g.has_arc(window[0], window[1]));
                }
            }
        }
    }

    #[test]
    fn alias_sampler_is_deterministic_per_seed() {
        let g = fig1_graph();
        let csr = alias_csr(&g);
        let sampler = AliasSampler::new(csr.forward_alias().unwrap());
        let (mut pos_a, mut pos_b) = (Vec::new(), Vec::new());
        let mut rng_a = StdRng::seed_from_u64(1234);
        let mut rng_b = StdRng::seed_from_u64(1234);
        for start in [0u32, 1, 2, 3] {
            for _ in 0..50 {
                sampler.sample_walk_into(start, 7, &mut rng_a, &mut pos_a);
                sampler.sample_walk_into(start, 7, &mut rng_b, &mut pos_b);
                assert_eq!(pos_a, pos_b);
            }
        }
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn alias_stay_in_place_policy_keeps_the_walk_at_dead_ends() {
        let g = fig1_graph(); // vertex 4 has no out-arcs
        let csr = alias_csr(&g);
        let view = csr.forward_alias().unwrap();
        let stay = AliasSampler::with_policy(view, DeadEndPolicy::StayInPlace);
        assert_eq!(stay.dead_end_policy(), DeadEndPolicy::StayInPlace);
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        stay.sample_walk_into(4, 3, &mut rng, &mut positions);
        assert_eq!(positions, vec![4, 4, 4, 4]);

        let terminating = AliasSampler::new(view);
        terminating.sample_walk_into(4, 3, &mut rng, &mut positions);
        assert_eq!(positions, vec![4, DEAD, DEAD, DEAD]);

        // Zero-length walks are just the start, either policy.
        stay.sample_walk_into(2, 0, &mut rng, &mut positions);
        assert_eq!(positions, vec![2]);
    }

    #[test]
    fn alias_walks_over_untouched_vertices_ignore_overlay_churn() {
        // The alias analogue of the overlay pin: churn in one component must
        // not perturb walks (or RNG consumption) in the other.
        use ugraph::{CompactionPolicy, DeltaOverlay, GraphUpdate};
        let g = UncertainGraphBuilder::new(4)
            .arc(0, 1, 0.8)
            .arc(1, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 2, 0.5)
            .build()
            .unwrap();
        let csr = alias_csr(&g);
        let mut overlay = DeltaOverlay::with_policy(csr.clone(), CompactionPolicy::never());
        overlay
            .apply_all(&[GraphUpdate::SetProbability {
                source: 2,
                target: 3,
                probability: 0.05,
            }])
            .unwrap();
        let static_sampler = AliasSampler::new(csr.forward_alias().unwrap());
        let live_sampler = AliasSampler::new(overlay.forward_alias().unwrap());
        let (mut pos_a, mut pos_b) = (Vec::new(), Vec::new());
        let mut rng_a = StdRng::seed_from_u64(55);
        let mut rng_b = StdRng::seed_from_u64(55);
        for start in [0u32, 1] {
            for _ in 0..100 {
                static_sampler.sample_walk_into(start, 8, &mut rng_a, &mut pos_a);
                live_sampler.sample_walk_into(start, 8, &mut rng_b, &mut pos_b);
                assert_eq!(pos_a, pos_b);
            }
        }
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn invalidate_discards_memos_without_reallocating() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::new(csr.forward());
        let mut arena = WalkArena::with_capacity(5);
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            sampler.sample_walk_into(&mut arena, 0, 6, &mut rng, &mut positions);
        }
        let stamp_capacity = arena.stamp.capacity();
        let epoch_before = arena.epoch;
        arena.invalidate();
        assert_eq!(arena.epoch, epoch_before + 1, "epoch bump, not a rebuild");
        assert!(arena.pool.is_empty());
        assert_eq!(arena.stamp.capacity(), stamp_capacity);
        // Walks after invalidation are still valid walks.
        for _ in 0..20 {
            sampler.sample_walk_into(&mut arena, 0, 6, &mut rng, &mut positions);
            for window in positions.windows(2) {
                if window[0] != DEAD && window[1] != DEAD {
                    assert!(g.has_arc(window[0], window[1]));
                }
            }
        }
        // Wrap-around invalidation resets the stamps instead.
        arena.epoch = u32::MAX;
        arena.invalidate();
        assert_eq!(arena.epoch, 1);
        assert!(arena.stamp.iter().all(|&s| s == 0));
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let g = fig1_graph();
        let csr = CsrGraph::from_uncertain(&g);
        let sampler = CsrSampler::new(csr.forward());
        let mut arena = WalkArena::with_capacity(5);
        arena.epoch = u32::MAX - 1;
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..4 {
            // Crosses the wrap; walks must stay valid (no stale aliasing).
            sampler.sample_walk_into(&mut arena, 0, 4, &mut rng, &mut positions);
            for window in positions.windows(2) {
                if window[0] != DEAD && window[1] != DEAD {
                    assert!(g.has_arc(window[0], window[1]));
                }
            }
        }
        assert!(arena.epoch >= 1 && arena.epoch < 10);
    }
}
