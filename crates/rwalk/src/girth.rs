//! Directed girth (length of the shortest directed cycle).
//!
//! The `TransPr` algorithm (Fig. 3 of the paper) uses the girth `ℓ` of the
//! uncertain graph's skeleton for the Lemma 3 shortcut: as long as a walk is
//! shorter than the shortest cycle it cannot revisit a vertex, so its
//! probability factors into one-step transition probabilities and no
//! `α`-ratio needs to be recomputed.  The paper cites Horton's algorithm
//! \[12\]; for directed graphs a per-vertex BFS (overall `O(|V|·|E|)`) is the
//! standard approach and is what we implement, with an optional depth cap
//! because the algorithms only ever need to know whether the girth exceeds
//! the (small) walk length `K`.

use std::collections::VecDeque;
use ugraph::{DiGraph, VertexId};

/// Computes the directed girth of `g`: the length of its shortest directed
/// cycle (a self-loop has length 1).  Returns `None` if the graph is acyclic
/// or if every cycle is longer than `cap` (when a cap is given).
///
/// The search performs a breadth-first search from every vertex, truncated at
/// depth `cap` when provided.
pub fn directed_girth(g: &DiGraph, cap: Option<usize>) -> Option<usize> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let mut best: Option<usize> = None;
    let mut distance: Vec<u32> = vec![u32::MAX; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    for start in g.vertices() {
        // Shortest path from any out-neighbor of `start` back to `start`,
        // plus the initial arc, is a cycle through `start`.
        distance.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        distance[start as usize] = 0;
        queue.push_back(start);
        let limit = match (best, cap) {
            (Some(b), Some(c)) => b.min(c),
            (Some(b), None) => b,
            (None, Some(c)) => c,
            (None, None) => usize::MAX,
        };
        'bfs: while let Some(u) = queue.pop_front() {
            let du = distance[u as usize] as usize;
            if du + 1 > limit {
                // Any cycle found from here would not improve on `limit`.
                break 'bfs;
            }
            for &w in g.out_neighbors(u) {
                if w == start {
                    let cycle_len = du + 1;
                    if best.map_or(true, |b| cycle_len < b) {
                        best = Some(cycle_len);
                    }
                    if cycle_len == 1 {
                        return Some(1);
                    }
                    break 'bfs;
                }
                if distance[w as usize] == u32::MAX {
                    distance[w as usize] = (du + 1) as u32;
                    queue.push_back(w);
                }
            }
        }
    }
    match (best, cap) {
        (Some(b), Some(c)) if b > c => None,
        (found, _) => found,
    }
}

/// Whether every directed cycle of `g` has length at least `k` (true in
/// particular for acyclic graphs).  This is the condition under which Lemma 3
/// applies to walks of length below `k`.
pub fn girth_at_least(g: &DiGraph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    match directed_girth(g, Some(k)) {
        None => true,
        Some(girth) => girth >= k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::DiGraph;

    #[test]
    fn acyclic_graph_has_no_girth() {
        let g = DiGraph::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(directed_girth(&g, None), None);
        assert!(girth_at_least(&g, 100));
    }

    #[test]
    fn self_loop_gives_girth_one() {
        let g = DiGraph::from_arcs(3, [(0, 1), (1, 1), (1, 2)]).unwrap();
        assert_eq!(directed_girth(&g, None), Some(1));
        assert!(!girth_at_least(&g, 2));
        assert!(girth_at_least(&g, 1));
    }

    #[test]
    fn two_cycle() {
        let g = DiGraph::from_arcs(3, [(0, 1), (1, 0), (1, 2)]).unwrap();
        assert_eq!(directed_girth(&g, None), Some(2));
    }

    #[test]
    fn directed_triangle_vs_undirected_intuition() {
        // 0 -> 1 -> 2 -> 0 is a 3-cycle; the reverse arcs are absent so the
        // girth is 3, not 2.
        let g = DiGraph::from_arcs(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(directed_girth(&g, None), Some(3));
        assert!(girth_at_least(&g, 3));
        assert!(!girth_at_least(&g, 4));
    }

    #[test]
    fn shortest_of_several_cycles_wins() {
        // A 4-cycle 0..3 plus a chord creating a 2-cycle between 1 and 2.
        let g = DiGraph::from_arcs(4, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 1)]).unwrap();
        assert_eq!(directed_girth(&g, None), Some(2));
    }

    #[test]
    fn cap_hides_longer_cycles() {
        let g = DiGraph::from_arcs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(directed_girth(&g, None), Some(4));
        assert_eq!(directed_girth(&g, Some(3)), None);
        assert_eq!(directed_girth(&g, Some(4)), Some(4));
        assert!(girth_at_least(&g, 4));
        assert!(!girth_at_least(&g, 5));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_arcs(0, []).unwrap();
        assert_eq!(directed_girth(&g, None), None);
    }

    #[test]
    fn fig1_skeleton_girth_is_two() {
        // v1 <-> v3 (0 <-> 2) forms a 2-cycle in the paper's running example.
        let g = DiGraph::from_arcs(
            5,
            [
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (3, 1),
            ],
        )
        .unwrap();
        assert_eq!(directed_girth(&g, None), Some(2));
    }
}
