//! Random walks on uncertain graphs.
//!
//! This crate implements Sections III and IV of *"SimRank Computation on
//! Uncertain Graphs"* (Zhu, Zou & Li, ICDE 2016):
//!
//! * [`walk`] — the walk representation and the per-vertex statistics
//!   `O_W(v)` (distinct out-neighbors used by the walk) and `c_W(v)` (number
//!   of transitions out of `v` in the walk);
//! * [`walkpr`] — the `WalkPr` algorithm (Fig. 2): the exact probability of a
//!   walk on an uncertain graph via the out-degree-distribution dynamic
//!   program of Eq. (11), plus the incremental extension of Lemma 2;
//! * [`girth`] — directed girth (length of the shortest cycle), needed by the
//!   Lemma 3 shortcut;
//! * [`transpr`] — the `TransPr` algorithm (Fig. 3): the k-step transition
//!   probability matrices `W(1), …, W(K)` of an uncertain graph, computed by
//!   extending walks one arc at a time, and the single-source restriction
//!   used by the Baseline SimRank estimator;
//! * [`expected`] — the exact *expected one-step* transition matrix `W(1)`
//!   (the only `W(k)` that is sparse), which is also the matrix that Du et
//!   al.'s prior work raises to the k-th power;
//! * [`sampler`] — the lazily-instantiated random-walk sampler of the
//!   Sampling algorithm (Fig. 4, lines 1–18);
//! * [`arena`] — the allocation-free CSR fast path of the same sampler: a
//!   reusable per-worker [`WalkArena`] plus [`CsrSampler`], which walks a
//!   [`ugraph::CsrView`] with bit-identical RNG consumption;
//! * [`footprint`] — walk-footprint capture: folding a sampled walk's
//!   visited vertices into a [`ugraph::VertexFootprint`] *after* the
//!   sampler returns, so capture consumes zero RNG draws and the caching
//!   layer can re-stamp entries across disjoint update rounds.
//!
//! The central fact motivating all of this (Section IV of the paper) is that
//! on an uncertain graph `W(k) ≠ (W(1))^k`: when a walk revisits a vertex,
//! its transitions out of that vertex are correlated through the shared
//! possible world, so walk probabilities do not factor into one-step
//! probabilities.  The tests in [`transpr`] verify this inequality on the
//! paper's running example.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arena;
pub mod expected;
pub mod footprint;
pub mod girth;
pub mod sampler;
pub mod transpr;
pub mod walk;
pub mod walkpr;

pub use arena::{AliasSampler, CsrSampler, WalkArena, DEAD};
pub use expected::expected_one_step_matrix;
pub use footprint::record_walk;
pub use girth::{directed_girth, girth_at_least};
pub use sampler::{SampledWalk, WalkSampler};
pub use transpr::{transition_matrices, transition_rows_from, TransPrOptions, TransitionMatrices};
pub use walk::Walk;
pub use walkpr::{alpha, walk_probability};
