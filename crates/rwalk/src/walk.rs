//! Walks on (uncertain) graphs and their per-vertex statistics.

use std::collections::BTreeMap;
use ugraph::{UncertainGraph, VertexId};

/// The per-vertex statistics of a walk `W` used by the `WalkPr` algorithm:
/// `O_W(v)` (the set of distinct out-neighbors the walk transitions to from
/// `v`) and `c_W(v)` (the number of transitions out of `v` in the walk, which
/// can exceed `|O_W(v)|` when the walk takes the same arc more than once).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VertexWalkStats {
    /// `O_W(v)`: distinct out-neighbors reached from `v` along the walk,
    /// stored sorted.
    pub out_neighbors: Vec<VertexId>,
    /// `c_W(v)`: number of transitions out of `v` in the walk.
    pub out_count: usize,
}

impl VertexWalkStats {
    /// Records one transition `v → w`, keeping `out_neighbors` sorted and
    /// duplicate-free.
    pub fn record_transition(&mut self, w: VertexId) {
        self.out_count += 1;
        if let Err(pos) = self.out_neighbors.binary_search(&w) {
            self.out_neighbors.insert(pos, w);
        }
    }
}

/// A walk `v₀, v₁, …, v_k` on a graph.
///
/// The walk does *not* borrow the graph: validity against a specific
/// [`UncertainGraph`] is checked by [`Walk::is_walk_on`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    vertices: Vec<VertexId>,
}

impl Walk {
    /// A walk consisting of a single starting vertex (length 0).
    pub fn singleton(start: VertexId) -> Self {
        Walk {
            vertices: vec![start],
        }
    }

    /// Builds a walk from its vertex sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty; a walk always has at least its start
    /// vertex.
    pub fn from_vertices(vertices: impl Into<Vec<VertexId>>) -> Self {
        let vertices = vertices.into();
        assert!(
            !vertices.is_empty(),
            "a walk must contain at least one vertex"
        );
        Walk { vertices }
    }

    /// The vertex sequence `v₀, …, v_k`.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The length `|W| = k` of the walk (number of transitions).
    pub fn len(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Whether the walk has length 0 (a single vertex, no transition).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The starting vertex `v₀`.
    pub fn start(&self) -> VertexId {
        self.vertices[0]
    }

    /// The final vertex `v_k`.
    pub fn end(&self) -> VertexId {
        *self.vertices.last().expect("walk is never empty")
    }

    /// Appends a vertex to the end of the walk.
    pub fn push(&mut self, v: VertexId) {
        self.vertices.push(v);
    }

    /// Returns a new walk extended by one vertex.
    pub fn extended(&self, v: VertexId) -> Walk {
        let mut vertices = Vec::with_capacity(self.vertices.len() + 1);
        vertices.extend_from_slice(&self.vertices);
        vertices.push(v);
        Walk { vertices }
    }

    /// Whether every consecutive pair is a (possible) arc of `g`, i.e. the
    /// sequence is a walk on the uncertain graph.
    pub fn is_walk_on(&self, g: &UncertainGraph) -> bool {
        self.vertices
            .windows(2)
            .all(|pair| g.has_arc(pair[0], pair[1]))
    }

    /// The set `V(W)` of distinct vertices visited by the walk, sorted.
    pub fn distinct_vertices(&self) -> Vec<VertexId> {
        let mut vs = self.vertices.clone();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Per-vertex statistics `(O_W(v), c_W(v))` for every distinct vertex of
    /// the walk (vertices that are only visited as the final vertex get
    /// `out_count == 0` and an empty `out_neighbors`, contributing a factor
    /// of 1 to the walk probability).
    pub fn vertex_stats(&self) -> BTreeMap<VertexId, VertexWalkStats> {
        let mut stats: BTreeMap<VertexId, VertexWalkStats> = BTreeMap::new();
        // Make sure every visited vertex has an entry, even the final one.
        for &v in &self.vertices {
            stats.entry(v).or_default();
        }
        for pair in self.vertices.windows(2) {
            stats
                .get_mut(&pair[0])
                .expect("entry inserted above")
                .record_transition(pair[1]);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn singleton_walk() {
        let w = Walk::singleton(3);
        assert_eq!(w.len(), 0);
        assert!(w.is_empty());
        assert_eq!(w.start(), 3);
        assert_eq!(w.end(), 3);
        assert_eq!(w.distinct_vertices(), vec![3]);
        let stats = w.vertex_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[&3].out_count, 0);
    }

    #[test]
    fn extension_and_push_agree() {
        let mut a = Walk::singleton(0);
        a.push(2);
        a.push(0);
        let b = Walk::singleton(0).extended(2).extended(0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.end(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_vertex_sequence_is_rejected() {
        let _ = Walk::from_vertices(Vec::<VertexId>::new());
    }

    #[test]
    fn walk_validity_against_graph() {
        let g = fig1_graph();
        assert!(Walk::from_vertices(vec![0, 2, 0, 3, 4]).is_walk_on(&g));
        // 0 -> 1 is not an arc.
        assert!(!Walk::from_vertices(vec![0, 1]).is_walk_on(&g));
        // A single vertex is trivially a walk.
        assert!(Walk::singleton(4).is_walk_on(&g));
    }

    #[test]
    fn vertex_stats_of_the_paper_example_walk() {
        // The walk of Table I: v1 v3 v1 v3 v4 v2 v3 v4 v2 (0-indexed below).
        let w = Walk::from_vertices(vec![0, 2, 0, 2, 3, 1, 2, 3, 1]);
        assert_eq!(w.len(), 8);
        let stats = w.vertex_stats();
        // v1 (=0): transitions to v3 twice.
        assert_eq!(stats[&0].out_neighbors, vec![2]);
        assert_eq!(stats[&0].out_count, 2);
        // v2 (=1): one transition to v3 (the final occurrence is terminal).
        assert_eq!(stats[&1].out_neighbors, vec![2]);
        assert_eq!(stats[&1].out_count, 1);
        // v3 (=2): transitions to v1 once and to v4 twice.
        assert_eq!(stats[&2].out_neighbors, vec![0, 3]);
        assert_eq!(stats[&2].out_count, 3);
        // v4 (=3): transitions to v2 twice.
        assert_eq!(stats[&3].out_neighbors, vec![1]);
        assert_eq!(stats[&3].out_count, 2);
        // v5 never appears.
        assert!(!stats.contains_key(&4));
    }

    #[test]
    fn terminal_only_vertices_contribute_empty_stats() {
        let w = Walk::from_vertices(vec![0, 2, 3]);
        let stats = w.vertex_stats();
        assert_eq!(stats[&3].out_count, 0);
        assert!(stats[&3].out_neighbors.is_empty());
    }
}
