//! Walk-footprint capture: folding the vertices a sampled walk visited into
//! a [`VertexFootprint`], without touching the walk's RNG stream.
//!
//! A SimRank answer for a pair is a pure function of the pair's RNG stream
//! and the adjacency rows of the vertices its walks visited — both the
//! lazily-instantiated [`crate::CsrSampler`] and the alias-table
//! [`crate::AliasSampler`] only ever read the row of the vertex a walk
//! currently stands on.  The positions buffer a sampler fills therefore
//! *is* the dependency set of the walk (a superset, in fact: the final
//! position's row is never read), and recording it after the walk returns
//! consumes **zero RNG draws** — the bit-identity pins on the samplers hold
//! with or without capture, which is what makes footprint-carrying cache
//! entries safe to re-stamp across disjoint update rounds.

use crate::arena::DEAD;
use ugraph::{VertexFootprint, VertexId};

/// Records every live position of a sampled walk into `footprint`.
///
/// `positions` is the buffer a sampler's `sample_walk_into` filled: one
/// vertex per step, [`DEAD`] tombstones after the walk died.  Tombstones
/// are skipped; everything else — including the start vertex and the final
/// position, whose row the walk never read — is recorded.  Recording a
/// superset of the rows actually read is safe by the footprint's one-sided
/// contract: it can only cause extra invalidation, never a wrong survival.
///
/// # Example
///
/// ```
/// use rwalk::footprint::record_walk;
/// use rwalk::DEAD;
/// use ugraph::VertexFootprint;
///
/// let mut fp = VertexFootprint::new();
/// record_walk(&mut fp, &[4, 2, 7, DEAD, DEAD]);
/// assert!(fp.may_contain(4) && fp.may_contain(2) && fp.may_contain(7));
/// assert!(!fp.may_contain(DEAD));
/// ```
#[inline]
pub fn record_walk(footprint: &mut VertexFootprint, positions: &[VertexId]) {
    for &v in positions {
        if v != DEAD {
            footprint.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{AliasSampler, CsrSampler, WalkArena};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ugraph::{CsrGraph, UncertainGraphBuilder};

    fn line_graph() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3 -> 4, certain enough that walks usually live.
        let mut builder = UncertainGraphBuilder::new(5);
        for v in 0..4u32 {
            builder = builder.arc(v, v + 1, 0.95);
        }
        CsrGraph::from_uncertain(&builder.build().unwrap())
    }

    #[test]
    fn recording_covers_exactly_the_live_positions() {
        let mut fp = VertexFootprint::new();
        record_walk(&mut fp, &[3, 1, DEAD, DEAD]);
        assert!(fp.may_contain(3) && fp.may_contain(1));
        // DEAD itself is never inserted; an empty walk records nothing.
        let mut empty = VertexFootprint::new();
        record_walk(&mut empty, &[DEAD, DEAD]);
        assert!(empty.is_empty());
    }

    #[test]
    fn capture_does_not_perturb_csr_sampler_rng_draws() {
        // The same seed with and without capture must yield bit-identical
        // walks: recording happens after the sampler returns and reads only
        // the positions buffer.
        let csr = line_graph();
        let sampler = CsrSampler::new(csr.forward());
        let mut plain = Vec::new();
        let mut traced = Vec::new();
        let mut arena_a = WalkArena::new();
        let mut arena_b = WalkArena::new();
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut fp = VertexFootprint::new();
        for _ in 0..50 {
            sampler.sample_walk_into(&mut arena_a, 0, 4, &mut rng_a, &mut plain);
            sampler.sample_walk_into(&mut arena_b, 0, 4, &mut rng_b, &mut traced);
            record_walk(&mut fp, &traced);
            assert_eq!(plain, traced);
            for &v in plain.iter().filter(|&&v| v != DEAD) {
                assert!(fp.may_contain(v), "visited vertex {v} missing");
            }
        }
        assert!(!fp.is_empty());
    }

    #[test]
    fn capture_does_not_perturb_alias_sampler_rng_draws() {
        let mut csr = line_graph();
        csr.build_alias_tables();
        let sampler = AliasSampler::new(csr.forward_alias().unwrap());
        let mut plain = Vec::new();
        let mut traced = Vec::new();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut fp = VertexFootprint::new();
        for _ in 0..50 {
            sampler.sample_walk_into(0, 4, &mut rng_a, &mut plain);
            sampler.sample_walk_into(0, 4, &mut rng_b, &mut traced);
            record_walk(&mut fp, &traced);
            assert_eq!(plain, traced);
        }
        for &v in plain.iter().filter(|&&v| v != DEAD) {
            assert!(fp.may_contain(v));
        }
    }
}
