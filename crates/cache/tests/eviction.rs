//! Eviction-under-capacity-pressure suite: the cache must hold its
//! capacity bound under any insert stream, prefer stale entries when making
//! room, give recently hit entries a second chance, and keep its counters
//! coherent under concurrent hammering.

use usim_cache::{CacheStats, ConfigFingerprint, PairKey, ResultCache};

fn fp() -> ConfigFingerprint {
    ConfigFingerprint::from_words(&[42])
}

fn key(i: u32) -> PairKey {
    PairKey::score(i, i + 1, fp())
}

/// A single-shard cache so eviction order is exactly observable.
fn single_shard(capacity: usize) -> ResultCache<PairKey, f64> {
    let cache = ResultCache::with_shards(capacity, 1);
    assert_eq!(cache.num_shards(), 1);
    cache
}

#[test]
fn capacity_bound_holds_under_sustained_insert_pressure() {
    for capacity in [1usize, 2, 3, 7, 8, 10, 64] {
        let cache: ResultCache<PairKey, f64> = ResultCache::new(capacity);
        for i in 0..(capacity as u32 * 10) {
            cache.insert(key(i), i as f64, 0);
            assert!(
                cache.len() <= capacity,
                "capacity {capacity}: {} entries after {i} inserts",
                cache.len()
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, capacity as u64 * 10);
        assert!(
            stats.evictions >= stats.insertions - capacity as u64,
            "capacity {capacity}: {stats:?}"
        );
    }
}

#[test]
fn eviction_makes_room_for_the_new_entry_not_instead_of_it() {
    let cache = single_shard(3);
    for i in 0..100u32 {
        cache.insert(key(i), i as f64, 0);
        // The entry just inserted is always resident.
        assert_eq!(cache.get(&key(i), 0), Some(i as f64));
    }
    assert_eq!(cache.len(), 3);
}

#[test]
fn recently_hit_entries_survive_cold_ones() {
    let cache = single_shard(2);
    cache.insert(key(1), 1.0, 0);
    cache.insert(key(2), 2.0, 0);
    // Touch key 1: its second-chance bit protects it from the next sweep.
    assert_eq!(cache.get(&key(1), 0), Some(1.0));
    cache.insert(key(3), 3.0, 0);
    assert_eq!(cache.get(&key(1), 0), Some(1.0), "hit entry survives");
    assert_eq!(cache.get(&key(2), 0), None, "cold entry was evicted");
    assert_eq!(cache.get(&key(3), 0), Some(3.0));
}

#[test]
fn stale_entries_are_evicted_before_live_ones_even_if_referenced() {
    let cache = single_shard(2);
    cache.insert(key(1), 1.0, 0);
    assert_eq!(cache.get(&key(1), 0), Some(1.0), "referenced at epoch 0");
    cache.insert(key(2), 2.0, 1);
    assert_eq!(cache.get(&key(2), 1), Some(2.0), "referenced at epoch 1");
    // Both entries are referenced; key 1 is stale at epoch 1.  The sweep
    // must take the stale one, not grant it a second chance.
    cache.insert(key(3), 3.0, 1);
    assert_eq!(cache.get(&key(1), 1), None, "stale entry went first");
    assert_eq!(cache.get(&key(2), 1), Some(2.0));
    assert_eq!(cache.get(&key(3), 1), Some(3.0));
}

#[test]
fn clock_terminates_when_every_entry_is_referenced() {
    let cache = single_shard(4);
    for i in 0..4u32 {
        cache.insert(key(i), i as f64, 0);
        cache.get(&key(i), 0);
    }
    // All four have their bit set; the sweep clears them on the first lap
    // and evicts on the second.
    cache.insert(key(99), 99.0, 0);
    assert_eq!(cache.len(), 4);
    assert_eq!(cache.get(&key(99), 0), Some(99.0));
}

#[test]
fn capacity_one_keeps_exactly_the_latest_entry() {
    let cache = single_shard(1);
    for i in 0..20u32 {
        cache.insert(key(i), i as f64, 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(i), 0), Some(i as f64));
        if i > 0 {
            assert_eq!(cache.get(&key(i - 1), 0), None);
        }
    }
}

#[test]
fn small_odd_capacities_never_overshoot() {
    // Regression guard for the shard split: `shards * per_shard` must not
    // exceed the requested capacity even when it is not a power of two.
    for capacity in 1..=40usize {
        let cache: ResultCache<PairKey, f64> = ResultCache::new(capacity);
        assert_eq!(cache.capacity(), capacity);
        for i in 0..200u32 {
            cache.insert(key(i), 0.0, 0);
        }
        assert!(
            cache.len() <= capacity,
            "capacity {capacity} overshot to {}",
            cache.len()
        );
        assert!(cache.len() >= capacity / 2, "pathological under-use");
    }
}

#[test]
fn clear_empties_but_counters_stay_cumulative() {
    let cache = single_shard(8);
    for i in 0..8u32 {
        cache.insert(key(i), 0.0, 0);
    }
    cache.get(&key(0), 0);
    let before = cache.stats();
    cache.clear();
    assert!(cache.is_empty());
    let after = cache.stats();
    assert_eq!(
        CacheStats {
            entries: 0,
            ..before
        },
        after
    );
    // The cache is fully usable after a clear.
    cache.insert(key(1), 1.0, 0);
    assert_eq!(cache.get(&key(1), 0), Some(1.0));
}

#[test]
fn concurrent_hammering_keeps_the_bound_and_the_counters_coherent() {
    use std::sync::Arc;

    let capacity = 64usize;
    let cache: Arc<ResultCache<PairKey, f64>> = Arc::new(ResultCache::new(capacity));
    let threads = 8;
    let ops_per_thread = 2_000u32;
    let mut joins = Vec::new();
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        joins.push(std::thread::spawn(move || {
            let mut lookups = 0u64;
            for i in 0..ops_per_thread {
                // A key space ~4x the capacity with per-thread phase, plus
                // epoch churn every 512 ops, so hits, misses, stale reads
                // and evictions all occur.
                let k = key((i.wrapping_mul(31).wrapping_add(t * 7)) % 256);
                let epoch = u64::from(i / 512);
                if i % 3 == 0 {
                    cache.insert(k, f64::from(i), epoch);
                } else {
                    let _ = cache.get(&k, epoch);
                    lookups += 1;
                }
            }
            lookups
        }));
    }
    let total_lookups: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(cache.len() <= capacity);
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.stale,
        total_lookups,
        "every lookup lands in exactly one counter: {stats:?}"
    );
    assert!(stats.evictions > 0, "{stats:?}");
}
