//! Selective-invalidation suite: footprinted entries survive update rounds
//! whose touched-vertex set is disjoint from their walk footprint, die when
//! it intersects, always die when the footprint is saturated, never come
//! back from older epochs, and keep the counters coherent under concurrent
//! hammering mixed with revalidation.

use ugraph::VertexFootprint;
use usim_cache::{ConfigFingerprint, PairKey, ResultCache};

fn fp() -> ConfigFingerprint {
    ConfigFingerprint::from_words(&[42])
}

fn key(i: u32) -> PairKey {
    PairKey::score(i, i + 1, fp())
}

/// A footprint covering exactly the vertices in `vs`.
fn footprint(vs: &[u32]) -> VertexFootprint {
    let mut f = VertexFootprint::new();
    for &v in vs {
        f.insert(v);
    }
    f
}

#[test]
fn disjoint_footprint_survives_and_keeps_hitting() {
    let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
    cache.insert_with_footprint(key(1), 0.5, 0, footprint(&[1, 2, 3]));
    // The round touches vertices far from the walk's footprint.
    let (survived, killed) = cache.revalidate(&[900, 901], 0, 1);
    assert_eq!((survived, killed), (1, 0));
    assert_eq!(cache.get(&key(1), 1), Some(0.5), "survivor hits at epoch 1");
    assert_eq!(cache.get(&key(1), 0), None, "and no longer at epoch 0");
    let stats = cache.stats();
    assert_eq!((stats.survived, stats.killed), (1, 0));
}

#[test]
fn intersecting_footprint_dies() {
    let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
    cache.insert_with_footprint(key(1), 0.5, 0, footprint(&[1, 2, 3]));
    cache.insert_with_footprint(key(2), 0.7, 0, footprint(&[10, 11]));
    // Vertex 2 is in key(1)'s footprint only.
    let (survived, killed) = cache.revalidate(&[2, 500], 0, 1);
    assert_eq!((survived, killed), (1, 1));
    assert_eq!(cache.get(&key(1), 1), None, "intersecting entry is stale");
    assert_eq!(cache.get(&key(2), 1), Some(0.7), "disjoint entry survives");
    let stats = cache.stats();
    assert_eq!((stats.survived, stats.killed), (1, 1));
    assert_eq!(stats.stale, 1, "the killed entry read as stale");
}

#[test]
fn saturated_footprint_always_dies() {
    let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
    // Plain insert = saturated footprint; explicit saturation behaves the
    // same.  Any non-empty touched set kills both.
    cache.insert(key(1), 0.5, 0);
    cache.insert_with_footprint(key(2), 0.7, 0, VertexFootprint::saturated());
    let (survived, killed) = cache.revalidate(&[123_456], 0, 1);
    assert_eq!((survived, killed), (0, 2));
    assert_eq!(cache.get(&key(1), 1), None);
    assert_eq!(cache.get(&key(2), 1), None);
}

#[test]
fn empty_touched_set_revalidates_everything() {
    // An empty update round cannot change any answer; even saturated
    // entries survive it (there is no touched vertex to intersect).
    let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
    cache.insert(key(1), 0.5, 0);
    cache.insert_with_footprint(key(2), 0.7, 0, footprint(&[4]));
    let (survived, killed) = cache.revalidate(&[], 0, 1);
    assert_eq!((survived, killed), (2, 0));
    assert_eq!(cache.get(&key(1), 1), Some(0.5));
    assert_eq!(cache.get(&key(2), 1), Some(0.7));
}

#[test]
fn entries_stale_from_earlier_rounds_are_never_resurrected() {
    let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
    cache.insert_with_footprint(key(1), 0.5, 0, footprint(&[7]));
    // Round 1 touches vertex 7: the entry dies and stays at epoch 0.
    assert_eq!(cache.revalidate(&[7], 0, 1), (0, 1));
    // Round 2 touches something else entirely — the dead entry is from
    // epoch 0, not 1, so it is out of scope and must stay dead.
    assert_eq!(cache.revalidate(&[999], 1, 2), (0, 0));
    assert_eq!(cache.get(&key(1), 2), None);
    assert_eq!(cache.get(&key(1), 1), None);
}

#[test]
fn revalidated_survivors_are_not_evicted_as_stale() {
    // Regression test for the eviction interplay: `evict_one`'s
    // stale-preference keys off `entry.epoch != current_epoch`, so
    // revalidation must *re-stamp* survivors — a survivor left at the old
    // epoch would be misclassified as stale and evicted first.
    let cache: ResultCache<PairKey, f64> = ResultCache::with_shards(2, 1);
    assert_eq!(cache.num_shards(), 1);
    cache.insert_with_footprint(key(1), 1.0, 0, footprint(&[1])); // will survive
    cache.insert_with_footprint(key(2), 2.0, 0, footprint(&[50])); // will die
    cache.revalidate(&[50], 0, 1);
    // The survivor keeps hitting at the new epoch (second-chance bit set)…
    assert_eq!(cache.get(&key(1), 1), Some(1.0));
    // …so capacity pressure at the new epoch must take the killed (stale)
    // entry.  Without the re-stamp the survivor would sit at epoch 0 and be
    // swept first as "stale" despite its referenced bit.
    cache.insert_with_footprint(key(3), 3.0, 1, footprint(&[9]));
    assert_eq!(
        cache.get(&key(1), 1),
        Some(1.0),
        "survivor outlives the sweep"
    );
    assert_eq!(cache.get(&key(2), 1), None, "killed entry was evicted");
    assert_eq!(cache.get(&key(3), 1), Some(3.0));
    assert_eq!(cache.stats().evictions, 1);
}

#[test]
fn reinsert_replaces_the_footprint() {
    let cache: ResultCache<PairKey, f64> = ResultCache::new(8);
    cache.insert_with_footprint(key(1), 1.0, 0, footprint(&[5]));
    // Refresh with a different footprint; survival must follow the new one.
    cache.insert_with_footprint(key(1), 1.5, 0, footprint(&[800]));
    assert_eq!(
        cache.revalidate(&[5], 0, 1),
        (1, 0),
        "old footprint is gone"
    );
    assert_eq!(cache.get(&key(1), 1), Some(1.5));
}

#[test]
fn concurrent_hammering_with_revalidation_keeps_counters_coherent() {
    // The eviction suite pins hits+misses+stale == lookups under insert/get
    // hammering; this adds revalidate churn from a dedicated thread and
    // extends the coherence claims: the lookup identity still holds, and
    // survived+killed never exceeds what revalidation could have examined.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let capacity = 64usize;
    let cache: Arc<ResultCache<PairKey, f64>> = Arc::new(ResultCache::new(capacity));
    let stop = Arc::new(AtomicBool::new(false));

    let churn = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0u64;
            let mut epoch = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Alternate disjoint and intersecting touched sets over the
                // worker threads' footprint universe (vertices 0..256).
                let touched: Vec<u32> = if rounds % 2 == 0 {
                    vec![10_000 + rounds as u32]
                } else {
                    vec![(rounds % 256) as u32]
                };
                cache.revalidate(&touched, epoch, epoch + 1);
                epoch += 1;
                rounds += 1;
                std::thread::yield_now();
            }
            epoch
        })
    };

    let threads = 4;
    let ops_per_thread = 2_000u32;
    let mut joins = Vec::new();
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        joins.push(std::thread::spawn(move || {
            let mut lookups = 0u64;
            for i in 0..ops_per_thread {
                let k = key((i.wrapping_mul(31).wrapping_add(t * 7)) % 256);
                let epoch = u64::from(i / 512);
                if i % 3 == 0 {
                    cache.insert_with_footprint(k, f64::from(i), epoch, {
                        let mut f = VertexFootprint::new();
                        f.insert(i % 256);
                        f
                    });
                } else {
                    let _ = cache.get(&k, epoch);
                    lookups += 1;
                }
            }
            lookups
        }));
    }
    let total_lookups: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    let rounds = churn.join().unwrap();

    assert!(cache.len() <= capacity);
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.stale,
        total_lookups,
        "every lookup lands in exactly one counter: {stats:?}"
    );
    // Every revalidation verdict is one entry examined once per round; the
    // totals cannot exceed rounds x capacity (and insertions bound the
    // entries that ever existed).
    assert!(
        stats.survived + stats.killed <= rounds.max(1) * capacity as u64,
        "revalidation verdicts exceed what the rounds could have examined: \
         {stats:?} over {rounds} rounds"
    );
}
