//! `usim_cache` — an epoch-aware result cache for the SimRank query engine.
//!
//! The paper's estimators pay hundreds of random walks per similarity query;
//! under a serving workload popular vertex pairs are asked again and again.
//! This crate provides the subsystem that makes repeats cheap without ever
//! changing an answer:
//!
//! * **Sharded, capacity-bounded map.**  [`ResultCache`] spreads entries
//!   over `N` independently locked shards (default
//!   [`DEFAULT_SHARDS`]), so concurrent serving threads rarely contend;
//!   each shard is bounded to `capacity / N` entries and evicts with a
//!   second-chance (CLOCK) policy when full — recently hit entries survive
//!   capacity pressure, cold ones go first.
//! * **Epoch validation.**  Every entry is tagged with the engine update
//!   epoch it was computed under.  A lookup only hits when the entry's
//!   epoch equals the caller's current epoch, so applying a graph-update
//!   batch invalidates the *whole* cache logically in O(1) — no scan, no
//!   flush; stale entries are refreshed in place on the next insert and
//!   evicted preferentially under capacity pressure.
//! * **Footprint-based survival.**  Entries inserted through
//!   [`ResultCache::insert_with_footprint`] carry a
//!   [`ugraph::VertexFootprint`] — a 256-bit bloom filter of the vertices
//!   the answer's walks visited.  [`ResultCache::revalidate`] re-stamps
//!   every current-epoch entry whose footprint is disjoint from an update
//!   round's touched-vertex set to the new epoch (counted in
//!   [`CacheStats::survived`]), so hot entries survive churn that cannot
//!   have changed them; intersecting entries are left behind at the old
//!   epoch and go stale exactly as before (counted in
//!   [`CacheStats::killed`]).  The bloom filter's false positives only
//!   *over*-invalidate — survival is decided by `may_contain` per touched
//!   vertex, which has no false negatives — so a wrong answer can never
//!   survive.  Plain [`ResultCache::insert`] stores a saturated footprint:
//!   entries without walk provenance always die, the conservative default.
//! * **Config fingerprinting.**  Keys carry a [`ConfigFingerprint`] of the
//!   SimRank configuration (decay, horizon, samples, seed, direction), so
//!   a cache can never serve an answer computed under different estimator
//!   parameters, even if callers share one cache between engines.
//! * **Observability.**  Hit / miss / stale / eviction / insertion
//!   counters are lock-free atomics, snapshotted by [`ResultCache::stats`]
//!   — the `usim serve` `stats` frame surfaces them on the wire.
//!
//! The cache is generic over key and value so the map layer stays free of
//! engine types; the domain key for pair queries is [`PairKey`]
//! (query kind + vertex pair + config fingerprint).  The engine-facing
//! integration — `CachedQueryEngine`, which guarantees cached answers are
//! *bit-identical* to uncached ones at any thread count and across update
//! epochs — lives in `usim_core::cached`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use ugraph::{VertexFootprint, VertexId};

/// Default shard count of a [`ResultCache`] (a power of two; each shard has
/// its own lock, so this bounds reader contention, not capacity).
pub const DEFAULT_SHARDS: usize = 16;

/// A 64-bit fingerprint of a SimRank configuration, carried inside every
/// cache key so entries computed under different estimator parameters can
/// never collide.
///
/// Built with [`ConfigFingerprint::from_words`] over the configuration's
/// field bits (FNV-1a, stable across runs and platforms).
///
/// # Example
///
/// ```
/// use usim_cache::ConfigFingerprint;
///
/// let a = ConfigFingerprint::from_words(&[0.6f64.to_bits(), 5, 1000]);
/// let b = ConfigFingerprint::from_words(&[0.6f64.to_bits(), 5, 2000]);
/// assert_ne!(a, b, "different sample counts fingerprint differently");
/// assert_eq!(a, ConfigFingerprint::from_words(&[0.6f64.to_bits(), 5, 1000]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigFingerprint(u64);

impl ConfigFingerprint {
    /// Fingerprints a sequence of 64-bit words (FNV-1a).  Word order is
    /// significant; callers fingerprint every field that can change an
    /// answer.
    pub fn from_words(words: &[u64]) -> Self {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut state = OFFSET;
        for &word in words {
            for byte in word.to_le_bytes() {
                state ^= byte as u64;
                state = state.wrapping_mul(PRIME);
            }
        }
        ConfigFingerprint(state)
    }

    /// The raw fingerprint value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// What kind of answer a [`PairKey`] names.  `Score` and `Profile` entries
/// for the same pair are distinct: a profile is the per-step meeting vector,
/// a score is its Eq. 12 combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A single SimRank score `s⁽ⁿ⁾(u, v)`.
    Score,
    /// A per-step meeting-probability profile of `(u, v)`.
    Profile,
}

/// The domain cache key for pair queries: query kind, the *ordered* vertex
/// pair, and the configuration fingerprint.  The pair is ordered because the
/// engine's RNG streams are keyed on `(seed, u, v)` — `s(u, v)` and
/// `s(v, u)` estimate the same quantity but are distinct bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// What kind of answer this key names.
    pub kind: QueryKind,
    /// First vertex of the ordered pair.
    pub u: VertexId,
    /// Second vertex of the ordered pair.
    pub v: VertexId,
    /// Fingerprint of the configuration the answer was computed under.
    pub fingerprint: ConfigFingerprint,
}

impl PairKey {
    /// Key of the cached score of ordered pair `(u, v)`.
    pub fn score(u: VertexId, v: VertexId, fingerprint: ConfigFingerprint) -> Self {
        PairKey {
            kind: QueryKind::Score,
            u,
            v,
            fingerprint,
        }
    }

    /// Key of the cached meeting profile of ordered pair `(u, v)`.
    pub fn profile(u: VertexId, v: VertexId, fingerprint: ConfigFingerprint) -> Self {
        PairKey {
            kind: QueryKind::Profile,
            u,
            v,
            fingerprint,
        }
    }
}

/// A point-in-time snapshot of a cache's counters (see
/// [`ResultCache::stats`]).  Counters are cumulative since construction;
/// `entries` is the current live entry count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (entry present, epoch matched).
    pub hits: u64,
    /// Lookups that found no entry at all.
    pub misses: u64,
    /// Lookups that found an entry computed under an older epoch; the
    /// caller recomputes.  Counted separately from `misses` so operators
    /// can tell cold keys from invalidation churn.
    pub stale: u64,
    /// Entries removed to make room under capacity pressure (stale entries
    /// are taken first, then the CLOCK sweep picks a cold one).
    pub evictions: u64,
    /// Entries written (fresh keys and epoch-refreshes of existing keys).
    pub insertions: u64,
    /// Entries re-stamped to a new epoch by [`ResultCache::revalidate`]
    /// because their walk footprint was disjoint from the update round's
    /// touched-vertex set — served again without recomputation.
    pub survived: u64,
    /// Current-epoch entries [`ResultCache::revalidate`] left behind at the
    /// old epoch because their footprint intersected the touched set (or
    /// was saturated); they read as `stale` from then on.
    pub killed: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate over all lookups (`hits / (hits + misses + stale)`), or 0.0
    /// when nothing has been looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    survived: AtomicU64,
    killed: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Counters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            survived: AtomicU64::new(0),
            killed: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    epoch: u64,
    /// Bloom summary of the vertices the answer's walks visited; the
    /// saturated footprint (plain [`ResultCache::insert`]) intersects every
    /// touched set, so provenance-free entries never survive revalidation.
    footprint: VertexFootprint,
    /// Second-chance bit: set on every hit, cleared when the CLOCK hand
    /// passes over the entry.
    referenced: bool,
}

/// One shard: a bounded map plus the CLOCK queue ordering eviction
/// candidates.  Every resident key appears in the queue exactly once —
/// lookups never remove entries (stale hits are only counted), so the two
/// structures stay in lockstep and the sweep below always terminates on a
/// resident entry.
#[derive(Debug)]
struct ShardState<K, V> {
    map: HashMap<K, Entry<V>, BuildHasherDefault<DefaultHasher>>,
    clock: VecDeque<K>,
}

impl<K: Hash + Eq + Clone, V> ShardState<K, V> {
    fn new() -> Self {
        ShardState {
            map: HashMap::default(),
            clock: VecDeque::new(),
        }
    }

    /// Evicts one entry with the CLOCK (second-chance) sweep, preferring
    /// stale entries: stale → evict immediately; referenced → clear the bit
    /// and push to the back; unreferenced → evict.  Terminates because after
    /// one full lap every key has lost its referenced bit, so the second
    /// encounter always evicts.
    ///
    /// Staleness keys off `entry.epoch != current_epoch` — which is why
    /// [`ResultCache::revalidate`] *re-stamps* survivors to the new epoch
    /// rather than tracking survival out of band: a survivor compares equal
    /// to the insert epoch here and keeps its second chance, instead of
    /// being misclassified as stale and evicted first (pinned by the
    /// `revalidated_survivors_are_not_evicted_as_stale` regression test).
    fn evict_one(&mut self, current_epoch: u64, counters: &Counters) {
        let mut lap = self.clock.len().saturating_mul(2);
        while let Some(key) = self.clock.pop_front() {
            match self.map.get_mut(&key) {
                None => {} // unreachable by the lockstep invariant; skip
                Some(entry) if entry.epoch != current_epoch => {
                    self.map.remove(&key);
                    counters.evictions.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some(entry) if entry.referenced && lap > 0 => {
                    entry.referenced = false;
                    self.clock.push_back(key);
                    lap -= 1;
                }
                Some(_) => {
                    self.map.remove(&key);
                    counters.evictions.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// A thread-safe, sharded, capacity-bounded, epoch-tagged cache.
///
/// `get` only returns entries whose stored epoch equals the epoch the
/// caller passes, so bumping an engine's update epoch invalidates every
/// entry logically in O(1).  Values are returned by clone; keep them cheap
/// (scores, small vectors).
///
/// # Example
///
/// ```
/// use usim_cache::ResultCache;
///
/// let cache: ResultCache<u32, f64> = ResultCache::new(128);
/// assert_eq!(cache.get(&7, 0), None);          // cold: miss
/// cache.insert(7, 0.25, 0);
/// assert_eq!(cache.get(&7, 0), Some(0.25));    // hit at the same epoch
/// assert_eq!(cache.get(&7, 1), None);          // epoch moved on: stale
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.stale), (1, 1, 1));
/// ```
#[derive(Debug)]
pub struct ResultCache<K, V> {
    shards: Vec<Mutex<ShardState<K, V>>>,
    per_shard_capacity: usize,
    capacity: usize,
    counters: Counters,
}

impl<K: Hash + Eq + Clone, V: Clone> ResultCache<K, V> {
    /// Builds a cache bounded to `capacity` total entries, spread over
    /// [`DEFAULT_SHARDS`] shards (fewer when `capacity` is smaller than the
    /// default shard count, so tiny caches still enforce their bound
    /// exactly).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a zero-capacity cache cannot hold
    /// an answer; callers model "caching off" by not constructing one.
    pub fn new(capacity: usize) -> Self {
        ResultCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Builds a cache with an explicit shard count.  The count is rounded
    /// to a power of two and clamped down so the per-shard bounds
    /// (`capacity / shards`, at least 1 each) never sum past `capacity` —
    /// the capacity bound is strict, the shard count is advisory.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` or `shards` is zero.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(
            capacity > 0,
            "cache capacity must be positive (0 = don't build a cache)"
        );
        assert!(shards > 0, "shard count must be positive");
        // Largest power of two that is <= both the request and the
        // capacity, so `shards * (capacity / shards) <= capacity` holds
        // with every shard holding at least one entry.
        let largest_fitting = 1usize << (usize::BITS - 1 - capacity.leading_zeros());
        let shards = shards.next_power_of_two().min(largest_fitting);
        let per_shard_capacity = capacity / shards;
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(ShardState::new())).collect(),
            per_shard_capacity,
            capacity,
            counters: Counters::new(),
        }
    }

    /// The configured total capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of shards (each independently locked).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    fn shard_for(&self, key: &K) -> &Mutex<ShardState<K, V>> {
        let mut hasher = DefaultHasher::default();
        key.hash(&mut hasher);
        // The map inside each shard uses the same hasher over the same key;
        // remix and take the upper 32 bits for the shard index so shard
        // choice and bucket choice (low bits) stay decorrelated at any
        // realistic shard count.
        let remixed = hasher.finish().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let index = (remixed >> 32) as usize & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Looks `key` up at `epoch`.  Returns a clone of the value only when
    /// an entry exists *and* was stored under the same epoch; an entry from
    /// another epoch is counted in [`CacheStats::stale`] and the caller
    /// recomputes.  Stale entries stay resident until the caller's
    /// [`ResultCache::insert`] refreshes them in place or capacity pressure
    /// evicts them (the sweep takes stale entries first), so the eviction
    /// queue and the map never drift apart.
    pub fn get(&self, key: &K, epoch: u64) -> Option<V> {
        let mut shard = self.shard_for(key).lock();
        match shard.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.referenced = true;
                let value = entry.value.clone();
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` for `key` as computed under `epoch`, evicting (CLOCK,
    /// stale-first) when the shard is at capacity.  Re-inserting an existing
    /// key replaces its value and epoch in place.
    ///
    /// The entry carries a *saturated* footprint: with no walk provenance it
    /// must be assumed to depend on every vertex, so
    /// [`ResultCache::revalidate`] always kills it.  Callers that know the
    /// visited set use [`ResultCache::insert_with_footprint`].
    pub fn insert(&self, key: K, value: V, epoch: u64) {
        self.insert_with_footprint(key, value, epoch, VertexFootprint::saturated());
    }

    /// [`ResultCache::insert`] with an explicit walk footprint: the bloom
    /// summary of every vertex the answer's walks visited, which
    /// [`ResultCache::revalidate`] tests against update rounds' touched
    /// sets.  The footprint must be a *superset* of the vertices the answer
    /// depends on — over-approximation only over-invalidates, but a missing
    /// vertex could let a stale answer survive.
    pub fn insert_with_footprint(&self, key: K, value: V, epoch: u64, footprint: VertexFootprint) {
        let mut shard = self.shard_for(&key).lock();
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.value = value;
            entry.epoch = epoch;
            entry.footprint = footprint;
            entry.referenced = true;
            self.counters.insertions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        while shard.map.len() >= self.per_shard_capacity {
            shard.evict_one(epoch, &self.counters);
        }
        shard.map.insert(
            key.clone(),
            Entry {
                value,
                epoch,
                footprint,
                referenced: false,
            },
        );
        shard.clock.push_back(key);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Selective invalidation after an update round that moved the epoch
    /// from `from_epoch` to `to_epoch` touching `touched` (the deduplicated
    /// vertex set of the round, e.g. [`ugraph::footprint::touched_vertices`]):
    /// every entry stored under `from_epoch` whose footprint is disjoint
    /// from `touched` is **re-stamped** to `to_epoch` — it keeps hitting —
    /// and every intersecting one is left behind to go stale, exactly as if
    /// this method had never run.  Returns `(survived, killed)` for the
    /// round; both are also accumulated into [`CacheStats`].
    ///
    /// Only `from_epoch` entries are examined: an entry already stale from
    /// an earlier round may be disjoint from *this* round's touched set and
    /// must still never be resurrected.
    ///
    /// Safety is one-sided by construction.  Survival requires
    /// `may_contain(v) == false` for every touched `v`, and the bloom
    /// filter has no false negatives, so an entry whose walks visited a
    /// touched vertex always dies; bit collisions only kill entries that
    /// could have survived.  Callers must run this while holding whatever
    /// lock serialises updates against lookups (the engine's write lock),
    /// so no reader can insert at `from_epoch` mid-scan.
    pub fn revalidate(&self, touched: &[VertexId], from_epoch: u64, to_epoch: u64) -> (u64, u64) {
        // Quick-reject summary of the touched set: a disjoint bloom AND
        // proves no touched vertex can test positive, skipping the
        // per-vertex scan for the common all-survive case.
        let mut touched_summary = VertexFootprint::new();
        for &v in touched {
            touched_summary.insert(v);
        }
        let (mut survived, mut killed) = (0u64, 0u64);
        for shard in &self.shards {
            let mut shard = shard.lock();
            for entry in shard.map.values_mut() {
                if entry.epoch != from_epoch {
                    continue;
                }
                let dies = entry.footprint.intersects(&touched_summary)
                    && touched.iter().any(|&v| entry.footprint.may_contain(v));
                if dies {
                    killed += 1;
                } else {
                    entry.epoch = to_epoch;
                    survived += 1;
                }
            }
        }
        self.counters
            .survived
            .fetch_add(survived, Ordering::Relaxed);
        self.counters.killed.fetch_add(killed, Ordering::Relaxed);
        (survived, killed)
    }

    /// Drops every entry (counters are kept; they are cumulative).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.clock.clear();
        }
    }

    /// Snapshots the counters and the current entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            survived: self.counters.survived.load(Ordering::Relaxed),
            killed: self.counters.killed.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u64) -> ConfigFingerprint {
        ConfigFingerprint::from_words(&[x])
    }

    #[test]
    fn get_insert_round_trip_at_matching_epoch() {
        let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
        let key = PairKey::score(1, 2, fp(7));
        assert_eq!(cache.get(&key, 0), None);
        cache.insert(key, 0.5, 0);
        assert_eq!(cache.get(&key, 0), Some(0.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_mismatch_is_a_stale_lookup_not_a_hit() {
        let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
        let key = PairKey::score(1, 2, fp(7));
        cache.insert(key, 0.5, 3);
        assert_eq!(cache.get(&key, 4), None, "newer epoch never hits");
        let stats = cache.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.hits, 0);
        // The slot refreshes in place at the new epoch.
        cache.insert(key, 0.7, 4);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key, 4), Some(0.7));
    }

    #[test]
    fn score_and_profile_keys_are_distinct() {
        let cache: ResultCache<PairKey, f64> = ResultCache::new(64);
        cache.insert(PairKey::score(1, 2, fp(1)), 0.25, 0);
        assert_eq!(cache.get(&PairKey::profile(1, 2, fp(1)), 0), None);
        assert_eq!(
            cache.get(&PairKey::score(2, 1, fp(1)), 0),
            None,
            "ordered pair"
        );
        assert_eq!(
            cache.get(&PairKey::score(1, 2, fp(2)), 0),
            None,
            "fingerprint"
        );
        assert_eq!(cache.get(&PairKey::score(1, 2, fp(1)), 0), Some(0.25));
    }

    #[test]
    fn fingerprints_are_stable_and_order_sensitive() {
        assert_eq!(
            ConfigFingerprint::from_words(&[]).as_u64(),
            0xcbf2_9ce4_8422_2325
        );
        assert_ne!(
            ConfigFingerprint::from_words(&[1, 2]),
            ConfigFingerprint::from_words(&[2, 1])
        );
    }

    #[test]
    fn reinsert_refreshes_value_and_epoch_in_place() {
        let cache: ResultCache<PairKey, f64> = ResultCache::new(8);
        let key = PairKey::score(0, 1, fp(0));
        cache.insert(key, 0.1, 0);
        cache.insert(key, 0.2, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key, 0), None);
        assert_eq!(cache.get(&key, 1), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ResultCache::<u64, f64>::new(0);
    }
}
