//! Offline API-compatible stand-in for the parts of [`serde`] this workspace
//! uses.
//!
//! Unlike upstream serde's visitor-based data model, this stub routes every
//! (de)serialisation through the self-describing [`Value`] tree — ample for
//! the JSON round-trips the workspace performs, and small enough to audit.
//! The public trait names and signatures match upstream where the workspace
//! touches them ([`Serialize`], [`Deserialize`], [`Serializer`],
//! [`Deserializer`], [`ser::Error`], [`de::Error`], and the
//! `#[derive(Serialize, Deserialize)]` macros re-exported from
//! `serde_derive`), so code written against this stub compiles unchanged
//! against the real crate.
//!
//! [`serde`]: https://docs.rs/serde

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (only produced for negative numbers).
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence (JSON array).
    Seq(Vec<Value>),
    /// An ordered string-keyed map (JSON object); insertion order is
    /// preserved so serialised field order matches declaration order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::Uint(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Seq(_) => "an array",
            Value::Map(_) => "an object",
        }
    }
}

/// The error produced when converting to or from [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError {
    message: String,
}

impl ValueError {
    /// Creates an error carrying `message`.
    pub fn msg(message: impl Into<String>) -> Self {
        ValueError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValueError {}

/// Serialisation-side traits, mirroring `serde::ser`.
pub mod ser {
    use std::fmt::Display;

    /// Errors a [`crate::Serializer`] can produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialisation-side traits, mirroring `serde::de`.
pub mod de {
    use std::fmt::Display;

    /// Errors a [`crate::Deserializer`] can produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError::msg(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError::msg(msg.to_string())
    }
}

/// A sink that consumes one [`Value`] tree.
pub trait Serializer: Sized {
    /// The value returned on success.
    type Ok;
    /// The error type.
    type Error: ser::Error;

    /// Consumes the fully-built value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source that produces one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: de::Error;

    /// Produces the complete value.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialised, mirroring `serde::Serialize`.
pub trait Serialize {
    /// Serialises `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialised, mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Deserialises a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

struct ValueDeserializer {
    value: Value,
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.value)
    }
}

/// Serialises any [`Serialize`] type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialises any [`Deserialize`] type out of a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer { value })
}

/// Looks up a required field in a map's entries (derive-internal helper).
#[doc(hidden)]
pub fn __field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, ValueError> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| ValueError::msg(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for the primitives and containers
// the workspace embeds in derived types.
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Uint(*self as u64))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.deserialize_value()?;
                let out = match &value {
                    Value::Uint(n) => <$t>::try_from(*n).ok(),
                    Value::Int(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    de::Error::custom(format!(
                        "invalid type: expected {}, found {}",
                        stringify!($t),
                        value.kind()
                    ))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let value = if v < 0 { Value::Int(v) } else { Value::Uint(v as u64) };
                serializer.serialize_value(value)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.deserialize_value()?;
                let out = match &value {
                    Value::Uint(n) => <$t>::try_from(*n).ok(),
                    Value::Int(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    de::Error::custom(format!(
                        "invalid type: expected {}, found {}",
                        stringify!($t),
                        value.kind()
                    ))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        match value {
            Value::Float(x) => Ok(x),
            Value::Uint(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            other => Err(de::Error::custom(format!(
                "invalid type: expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        match value {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "invalid type: expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        match value {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "invalid type: expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items: Result<Vec<Value>, ValueError> = self.iter().map(to_value).collect();
        match items {
            Ok(items) => serializer.serialize_value(Value::Seq(items)),
            Err(error) => Err(ser::Error::custom(error)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        let items = value.as_seq().ok_or_else(|| {
            de::Error::custom(format!(
                "invalid type: expected an array, found {}",
                value.kind()
            ))
        })?;
        items
            .iter()
            .map(|item| from_value(item.clone()).map_err(de::Error::custom))
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(inner) => inner.serialize(serializer),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        match value {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(de::Error::custom),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items: Result<Vec<Value>, ValueError> =
                    [$(to_value(&self.$index)),+].into_iter().collect();
                match items {
                    Ok(items) => serializer.serialize_value(Value::Seq(items)),
                    Err(error) => Err(ser::Error::custom(error)),
                }
            }
        }

        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.deserialize_value()?;
                let items = value.as_seq().ok_or_else(|| {
                    de::Error::custom(format!(
                        "invalid type: expected an array, found {}",
                        value.kind()
                    ))
                })?;
                let expected = [$($index),+].len();
                if items.len() != expected {
                    return Err(de::Error::custom(format!(
                        "invalid length: expected a tuple of {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($(
                    from_value::<$name>(items[$index].clone()).map_err(de::Error::custom)?,
                )+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (T0: 0)
    (T0: 0, T1: 1)
    (T0: 0, T1: 1, T2: 2)
    (T0: 0, T1: 1, T2: 2, T3: 3)
}

#[cfg(test)]
mod tests {
    use super::{from_value, to_value, Value};

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(to_value(&42u32).unwrap(), Value::Uint(42));
        assert_eq!(from_value::<u32>(Value::Uint(42)).unwrap(), 42);
        assert_eq!(to_value(&-3i64).unwrap(), Value::Int(-3));
        assert_eq!(to_value(&0.5f64).unwrap(), Value::Float(0.5));
        assert_eq!(from_value::<f64>(Value::Uint(2)).unwrap(), 2.0);
        assert_eq!(to_value(&true).unwrap(), Value::Bool(true));
    }

    #[test]
    fn containers_round_trip_through_value() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_value::<Vec<u32>>(to_value(&v).unwrap()).unwrap(), v);
        let pair = (7u32, 0.25f64);
        assert_eq!(
            from_value::<(u32, f64)>(to_value(&pair).unwrap()).unwrap(),
            pair
        );
        assert_eq!(to_value(&Option::<u32>::None).unwrap(), Value::Null);
    }

    #[test]
    fn value_round_trips_as_identity() {
        // `Value` itself is (de)serialisable — the wire layers (serde_json)
        // use this to parse a frame into the generic tree before inspecting
        // its fields.
        let tree = Value::Map(vec![
            ("type".into(), Value::Str("similarity".into())),
            ("pairs".into(), Value::Seq(vec![Value::Uint(1)])),
        ]);
        assert_eq!(from_value::<Value>(tree.clone()).unwrap(), tree);
        assert_eq!(to_value(&tree).unwrap(), tree);
    }

    #[test]
    fn narrowing_out_of_range_fails() {
        assert!(from_value::<u8>(Value::Uint(300)).is_err());
        assert!(from_value::<u32>(Value::Int(-1)).is_err());
    }
}
