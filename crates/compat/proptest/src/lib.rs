//! Offline API-compatible stand-in for the parts of [`proptest`] this
//! workspace uses: the [`proptest!`] macro, `prop_assert*`, the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, [`Just`], numeric-range and
//! tuple strategies, [`collection::vec`], [`bool::weighted`] and
//! [`any::<bool>()`](any).
//!
//! Test cases are generated deterministically: the RNG is seeded from a hash
//! of the test function's name (override with the `PROPTEST_SEED`
//! environment variable), so failures reproduce across runs.  There is **no
//! shrinking** — a failing case panics with the values that produced it via
//! the standard assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub mod __rt {
    //! Runtime re-exports used by the `proptest!` macro expansion.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// A deterministic per-test seed: `PROPTEST_SEED` if set, else an FNV-1a
    /// hash of the test name.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                return seed;
            }
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Configuration of a [`proptest!`] block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Builds a second strategy from every generated value and draws from it.
    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, make }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> O {
        (self.map)(self.base.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    make: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> T::Value {
        (self.make)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy always producing a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut rand::rngs::StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind [`any::<bool>()`](any): a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
        use rand::Rng as _;
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;

    /// A size specification accepted by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// A strategy producing `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::Strategy;

    /// A strategy producing `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "weighted probability must lie in [0, 1], got {probability}"
        );
        Weighted { probability }
    }

    /// The result of [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
            use rand::Rng as _;
            rng.gen_bool(self.probability)
        }
    }
}

/// The glob import test modules use, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] case (panics on failure; the
/// stub performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property-based tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// running `body` for the configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __run = || -> () { $body };
                __run();
                let _ = __case;
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even(limit: u32) -> impl Strategy<Value = u32> {
        (0..limit).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.5f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=1.0).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(n in even(50)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 100);
        }

        #[test]
        fn flat_mapped_strategies_chain(
            pair in (1usize..8).prop_flat_map(|n| (crate::Just(n), crate::collection::vec(0u32..10, 1..=8))),
        ) {
            let (n, items) = pair;
            prop_assert!((1..8).contains(&n));
            prop_assert!(!items.is_empty() && items.len() <= 8);
        }

        #[test]
        fn weighted_bools_and_any(flag in any::<bool>(), biased in crate::bool::weighted(0.9)) {
            let _ = (flag, biased);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::__rt::{seed_for, SeedableRng, StdRng};
        let a = seed_for("some::test");
        let b = seed_for("some::test");
        let c = seed_for("some::other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut rng = StdRng::seed_from_u64(a);
        let first = crate::collection::vec(0u32..100, 3..=3).generate(&mut rng);
        let mut rng = StdRng::seed_from_u64(a);
        let second = crate::collection::vec(0u32..100, 3..=3).generate(&mut rng);
        assert_eq!(first, second);
    }
}
