//! Offline API-compatible stand-in for the parts of [`serde_json`] this
//! workspace uses: [`to_string`] (compact output, declaration field order)
//! and [`from_str`] (a complete JSON parser), both routed through the stub
//! `serde`'s [`Value`] data model.
//!
//! [`serde_json`]: https://docs.rs/serde_json

#![warn(missing_docs)]
#![deny(unsafe_code)]

use serde::{Deserialize, Deserializer, Serialize, Value};
use std::fmt;

/// Errors produced while serialising to or parsing from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

/// A convenient alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    let mut out = String::new();
    write_value(&tree, &mut out)?;
    Ok(out)
}

/// Serialises `value` as compact JSON directly into an [`std::io::Write`]
/// sink — byte-identical to [`to_string`] (both run the same writer), but
/// without the intermediate `String`, so callers can reuse one buffer
/// across calls.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(writer: W, value: &T) -> Result<()> {
    let tree = serde::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    let mut sink = IoFmt {
        inner: writer,
        error: None,
    };
    match write_value(&tree, &mut sink) {
        Ok(()) => Ok(()),
        Err(e) => Err(match sink.error {
            Some(io) => Error::msg(format!("I/O error while writing JSON: {io}")),
            None => e,
        }),
    }
}

/// Adapts an `io::Write` sink to the `fmt::Write` interface `write_value`
/// speaks, stashing the underlying I/O error (a bare `fmt::Error` carries
/// no detail).
struct IoFmt<W: std::io::Write> {
    inner: W,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> fmt::Write for IoFmt<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            fmt::Error
        })
    }
}

/// Parses a JSON string into any deserialisable type.
pub fn from_str<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(JsonDeserializer { value })
}

struct JsonDeserializer {
    value: Value,
}

impl<'de> Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn deserialize_value(self) -> Result<Value> {
        Ok(self.value)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Generic over `fmt::Write` so one formatting path serves both `String`
// output (`to_string`) and streaming `io::Write` sinks (`to_writer`) —
// identical formatting logic means identical bytes.

fn fmt_failed(e: fmt::Error) -> Error {
    let _ = e;
    Error::msg("formatter error while writing JSON")
}

fn write_value<W: fmt::Write>(value: &Value, out: &mut W) -> Result<()> {
    match value {
        Value::Null => out.write_str("null").map_err(fmt_failed)?,
        Value::Bool(true) => out.write_str("true").map_err(fmt_failed)?,
        Value::Bool(false) => out.write_str("false").map_err(fmt_failed)?,
        Value::Int(n) => write!(out, "{n}").map_err(fmt_failed)?,
        Value::Uint(n) => write!(out, "{n}").map_err(fmt_failed)?,
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::msg(format!("cannot serialise non-finite float {x}")));
            }
            if x.fract() == 0.0 && x.abs() < 1e15 {
                // Match serde_json: integral floats keep a trailing ".0".
                write!(out, "{x:.1}").map_err(fmt_failed)?;
            } else {
                write!(out, "{x}").map_err(fmt_failed)?;
            }
        }
        Value::Str(s) => write_string(s, out)?,
        Value::Seq(items) => {
            out.write_char('[').map_err(fmt_failed)?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',').map_err(fmt_failed)?;
                }
                write_value(item, out)?;
            }
            out.write_char(']').map_err(fmt_failed)?;
        }
        Value::Map(entries) => {
            out.write_char('{').map_err(fmt_failed)?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_char(',').map_err(fmt_failed)?;
                }
                write_string(key, out)?;
                out.write_char(':').map_err(fmt_failed)?;
                write_value(item, out)?;
            }
            out.write_char('}').map_err(fmt_failed)?;
        }
    }
    Ok(())
}

fn write_string<W: fmt::Write>(s: &str, out: &mut W) -> Result<()> {
    out.write_char('"').map_err(fmt_failed)?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"").map_err(fmt_failed)?,
            '\\' => out.write_str("\\\\").map_err(fmt_failed)?,
            '\n' => out.write_str("\\n").map_err(fmt_failed)?,
            '\r' => out.write_str("\\r").map_err(fmt_failed)?,
            '\t' => out.write_str("\\t").map_err(fmt_failed)?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).map_err(fmt_failed)?,
            c => out.write_char(c).map_err(fmt_failed)?,
        }
    }
    out.write_char('"').map_err(fmt_failed)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` in object at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` in array at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let end = start + 4;
                            let hex = self
                                .bytes
                                .get(start..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::msg("\\u escape is not a scalar value")
                                })?,
                            );
                            self.pos = end - 1;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 mid-string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::Uint)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string};
    use serde::Value;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.75f64).unwrap(), "0.75");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<u32>("19").unwrap(), 19);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 0.5f64), (2, 1.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,1.0]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let parsed: Vec<String> = from_str(" [ \"a\\n\\\"b\\\"\" , \"\\u0041\" ] ").unwrap();
        assert_eq!(parsed, vec!["a\n\"b\"".to_string(), "A".to_string()]);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("12x").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn to_writer_is_byte_identical_to_to_string() {
        let value = Value::Map(vec![
            ("ok".into(), Value::Bool(true)),
            ("score".into(), Value::Float(0.5481283371)),
            ("whole".into(), Value::Float(3.0)),
            (
                "seq".into(),
                Value::Seq(vec![Value::Uint(7), Value::Str("a\n\"b\"".into())]),
            ),
            ("neg".into(), Value::Int(-4)),
        ]);
        let via_string = super::to_string(&value).unwrap();
        let mut via_writer: Vec<u8> = Vec::new();
        super::to_writer(&mut via_writer, &value).unwrap();
        assert_eq!(via_writer, via_string.as_bytes());
    }

    #[test]
    fn to_writer_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = super::to_writer(Broken, &Value::Bool(true)).unwrap_err();
        assert!(err.to_string().contains("sink closed"), "{err}");
    }

    #[test]
    fn object_order_is_preserved() {
        let mut out = String::new();
        super::write_value(
            &Value::Map(vec![
                ("b".into(), Value::Uint(1)),
                ("a".into(), Value::Uint(2)),
            ]),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, "{\"b\":1,\"a\":2}");
    }
}
