//! Offline API-compatible stand-in for the parts of [`bytes`] this workspace
//! uses: the [`Buf`] / [`BufMut`] little-endian accessors and the growable
//! [`BytesMut`] buffer.
//!
//! [`bytes`]: https://docs.rs/bytes

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Sequential reading of binary data from a buffer.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the buffer and advances past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u64` and advances past it.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32` and advances past it.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64` and advances past it.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: {} of {} bytes",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writing of binary data into a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_u64_le(value.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.data
    }
}

/// Infallible appending, mirroring the real crate's `io::Write` impl — the
/// hook that lets serialisers (e.g. `serde_json::to_writer`) fill a
/// reusable buffer in place instead of allocating per call.
impl std::io::Write for BytesMut {
    fn write(&mut self, src: &[u8]) -> std::io::Result<usize> {
        self.data.extend_from_slice(src);
        Ok(src.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u64_le(0xdead_beef_cafe_f00d);
        buf.put_f64_le(-0.125);
        buf.put_u32_le(7);
        assert_eq!(buf.len(), 20);

        let mut read: &[u8] = &buf;
        assert_eq!(read.get_u64_le(), 0xdead_beef_cafe_f00d);
        assert_eq!(read.get_f64_le(), -0.125);
        assert_eq!(read.get_u32_le(), 7);
        assert_eq!(read.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut short: &[u8] = &[1, 2, 3];
        let _ = short.get_u64_le();
    }

    #[test]
    fn io_write_appends_and_keeps_the_allocation() {
        use std::io::Write;
        let mut buf = BytesMut::with_capacity(64);
        write!(buf, "hello {}", 42).unwrap();
        buf.flush().unwrap();
        assert_eq!(&buf[..], b"hello 42");
        let capacity_before = {
            buf.clear();
            64
        };
        write!(buf, "again").unwrap();
        assert_eq!(&buf[..], b"again");
        assert!(buf.len() <= capacity_before);
    }
}
