//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no `syn`, no `quote`, no network).
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields — serialised as a map in declaration order;
//! * enums whose variants are all unit variants — serialised as the variant
//!   name string.
//!
//! Generics, tuple structs, and data-carrying enum variants are rejected
//! with a compile error naming the limitation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// All-unit-variant enum: variant identifiers in declaration order.
    Enum(Vec<String>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("::core::compile_error!({message:?});")
                .parse()
                .expect("error tokens")
        }
    };
    let code = match (which, &shape) {
        (Trait::Serialize, Shape::Struct(fields)) => serialize_struct(&name, fields),
        (Trait::Deserialize, Shape::Struct(fields)) => deserialize_struct(&name, fields),
        (Trait::Serialize, Shape::Enum(variants)) => serialize_enum(&name, variants),
        (Trait::Deserialize, Shape::Enum(variants)) => deserialize_enum(&name, variants),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => {
            return Err(format!(
                "serde stub derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => {
            return Err(format!(
                "serde stub derive: expected a type name, got {other:?}"
            ))
        }
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generic types (deriving on `{name}`)"
        ));
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group.stream(),
        other => {
            return Err(format!(
                "serde stub derive supports only brace-bodied types (deriving on `{name}`), got {other:?}"
            ))
        }
    };
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(body, &name)?),
        "enum" => Shape::Enum(parse_enum_variants(body, &name)?),
        other => {
            return Err(format!(
                "serde stub derive: cannot derive on `{other}` items"
            ))
        }
    };
    Ok((name, shape))
}

type PeekableTokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(tokens: &mut PeekableTokens) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next(); // '#'
        if matches!(tokens.peek(), Some(TokenTree::Group(_))) {
            tokens.next(); // '[...]'
        }
    }
}

fn skip_visibility(tokens: &mut PeekableTokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        tokens.next();
        // `pub(crate)` / `pub(super)` carry a parenthesised group.
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_struct_fields(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let field = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => {
                return Err(format!(
                    "serde stub derive supports only named fields (deriving on `{name}`), got {other:?}"
                ))
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                "serde stub derive: expected `:` after field `{field}` of `{name}`, got {other:?}"
            ))
            }
        }
        // Consume the type: everything up to the next comma outside angle
        // brackets (commas inside parenthesised groups are single tokens).
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    if fields.is_empty() {
        return Err(format!("serde stub derive: `{name}` has no named fields"));
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let variant = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => {
                return Err(format!(
                    "serde stub derive: expected a variant name in `{name}`, got {other:?}"
                ))
            }
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(other) => {
                let _ = other;
                return Err(format!(
                    "serde stub derive supports only unit enum variants (variant `{variant}` of `{name}` carries data)"
                ));
            }
        }
    }
    if variants.is_empty() {
        return Err(format!("serde stub derive: `{name}` has no variants"));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for field in fields {
        pushes.push_str(&format!(
            "__entries.push((::std::string::String::from({field:?}), \
             ::serde::to_value(&self.{field})\
             .map_err(<__S::Error as ::serde::ser::Error>::custom)?));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Serializer::serialize_value(__serializer, ::serde::Value::Map(__entries))\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for field in fields {
        inits.push_str(&format!(
            "{field}: ::serde::from_value(::serde::__field(__entries, {field:?})?.clone())\
             .map_err(|__e| ::serde::ValueError::msg(\
                 ::std::format!(\"field `{field}`: {{}}\", __e)))?,\n"
        ));
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 let __value = ::serde::Deserializer::deserialize_value(__deserializer)?;\n\
                 let __build = |__value: &::serde::Value|\n\
                     -> ::std::result::Result<{name}, ::serde::ValueError> {{\n\
                     let __entries = __value.as_map().ok_or_else(|| ::serde::ValueError::msg(\n\
                         ::std::format!(\"invalid type: expected an object, found {{}}\", __value.kind())))?;\n\
                     ::std::result::Result::Ok({name} {{\n\
                         {inits}\
                     }})\n\
                 }};\n\
                 __build(&__value).map_err(<__D::Error as ::serde::de::Error>::custom)\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for variant in variants {
        arms.push_str(&format!("{name}::{variant} => {variant:?},\n"));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 let __name = match self {{\n\
                     {arms}\
                 }};\n\
                 ::serde::Serializer::serialize_value(\n\
                     __serializer, ::serde::Value::Str(::std::string::String::from(__name)))\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for variant in variants {
        arms.push_str(&format!(
            "{variant:?} => ::std::result::Result::Ok({name}::{variant}),\n"
        ));
    }
    let expected = variants.join("`, `");
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 let __value = ::serde::Deserializer::deserialize_value(__deserializer)?;\n\
                 let __text = __value.as_str().ok_or_else(|| \
                     <__D::Error as ::serde::de::Error>::custom(\n\
                         ::std::format!(\"invalid type: expected a string, found {{}}\", __value.kind())))?;\n\
                 match __text {{\n\
                     {arms}\
                     __other => ::std::result::Result::Err(\
                         <__D::Error as ::serde::de::Error>::custom(\n\
                         ::std::format!(\"unknown variant `{{}}`, expected one of `{expected}`\", __other))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
