//! Offline API-compatible stand-in for the parts of [`rayon`] this workspace
//! uses: `par_iter()` on slices and vectors with the `map` / `filter` /
//! `map_init` adaptors and `collect` / `sum` reducers, plus
//! [`ThreadPoolBuilder`] + [`ThreadPool::install`] and
//! [`current_num_threads`] to control the degree of parallelism.
//!
//! Work is executed on real OS threads via [`std::thread::scope`]: the input
//! is split into one contiguous chunk per thread, each chunk is mapped on its
//! own thread (with one `map_init` state per chunk, mirroring rayon's
//! per-split init semantics), and the per-chunk outputs are concatenated in
//! input order.  There is no work stealing, so throughput is best for
//! uniform workloads — exactly the batch-query pattern this workspace uses.
//!
//! [`rayon`]: https://docs.rs/rayon

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::cell::Cell;

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel iterators currently use: the innermost
/// [`ThreadPool::install`] override, else the `RAYON_NUM_THREADS` environment
/// variable, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads; 0 means "use the default".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map_or(1, usize::from),
            Some(n) => n,
        };
        Ok(ThreadPool {
            num_threads: threads,
        })
    }
}

/// A scoped thread-count override, mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Number of threads this pool runs parallel iterators with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with parallel iterators on this pool's thread count.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|cell| cell.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|cell| cell.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

/// The traits to import for `.par_iter()`, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Conversion into a borrowing parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;

    /// Returns a parallel iterator over `&self`'s items.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A parallel iterator over borrowed items.
pub struct ParIter<'data, T> {
    items: Vec<&'data T>,
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Keeps only the items satisfying `predicate` (applied up front on the
    /// calling thread; the expensive stage is the map that follows).
    pub fn filter<P>(self, predicate: P) -> Self
    where
        P: Fn(&&'data T) -> bool,
    {
        ParIter {
            items: self
                .items
                .into_iter()
                .filter(|item| predicate(item))
                .collect(),
        }
    }

    /// Maps every item in parallel.
    pub fn map<F, R>(self, map: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            map,
        }
    }

    /// Maps every item in parallel with per-chunk state built by `init` —
    /// rayon's estimator-factory pattern.
    pub fn map_init<INIT, S, F, R>(self, init: INIT, map: F) -> ParMapInit<'data, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'data T) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            items: self.items,
            init,
            map,
        }
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'data, T, F> {
    items: Vec<&'data T>,
    map: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the pipeline and collects the outputs in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let map = self.map;
        run_chunked(self.items, &|chunk| {
            chunk.iter().map(|item| map(item)).collect()
        })
        .into_iter()
        .collect()
    }

    /// Runs the pipeline and sums the outputs.
    pub fn sum<R>(self) -> R
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send + std::iter::Sum<R>,
    {
        self.collect::<R, Vec<R>>().into_iter().sum()
    }
}

/// The result of [`ParIter::map_init`].
pub struct ParMapInit<'data, T, INIT, F> {
    items: Vec<&'data T>,
    init: INIT,
    map: F,
}

impl<'data, T: Sync, INIT, F> ParMapInit<'data, T, INIT, F> {
    /// Runs the pipeline and collects the outputs in input order.
    pub fn collect<S, R, C>(self) -> C
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let (init, map) = (self.init, self.map);
        run_chunked(self.items, &|chunk| {
            let mut state = init();
            chunk.iter().map(|item| map(&mut state, item)).collect()
        })
        .into_iter()
        .collect()
    }

    /// Runs the pipeline and sums the outputs.
    pub fn sum<S, R>(self) -> R
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'data T) -> R + Sync,
        R: Send + std::iter::Sum<R>,
    {
        self.collect::<S, R, Vec<R>>().into_iter().sum()
    }
}

/// Splits `items` into one contiguous chunk per thread, runs `work` on each
/// chunk on its own scoped thread, and concatenates the outputs in order.
fn run_chunked<'data, T, R>(
    items: Vec<&'data T>,
    work: &(dyn Fn(&[&'data T]) -> Vec<R> + Sync),
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return work(&items);
    }
    let chunk_size = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || work(chunk)))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_runs_init_per_chunk() {
        let input: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = input
            .par_iter()
            .map_init(
                || 1u32,
                |state, &x| {
                    *state += 1;
                    x + *state - *state // value independent of chunk state
                },
            )
            .collect();
        assert_eq!(out, input);
    }

    #[test]
    fn filter_then_map_init() {
        let input: Vec<i64> = (-50..50).collect();
        let out: Vec<i64> = input
            .par_iter()
            .filter(|&&x| x >= 0)
            .map_init(|| (), |(), &x| x * x)
            .collect();
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let input: Vec<f64> = (0..257).map(|x| x as f64).collect();
        let total: f64 = input.par_iter().map_init(|| (), |(), &x| x).sum();
        assert_eq!(total, (0..257).map(|x| x as f64).sum::<f64>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(super::current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn one_thread_equals_many_threads() {
        let input: Vec<u64> = (0..333).collect();
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let a: Vec<u64> = single.install(|| input.par_iter().map(|&x| x * 3).collect());
        let b: Vec<u64> = many.install(|| input.par_iter().map(|&x| x * 3).collect());
        assert_eq!(a, b);
    }
}
