//! Offline API-compatible stand-in for the parts of [`parking_lot`] this
//! workspace uses: [`Mutex`] and [`RwLock`] with non-poisoning guards.
//!
//! Backed by the standard library's locks; a poisoned lock (a panic while
//! holding the guard) is transparently recovered instead of propagating the
//! poison, matching `parking_lot`'s semantics.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// A guard releasing a [`Mutex`] on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A guard releasing a [`RwLock`] read lock on drop.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// A guard releasing a [`RwLock`] write lock on drop.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A readers-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Returns a mutable reference to the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_mutation() {
        let lock = Mutex::new(1);
        *lock.lock() += 41;
        assert_eq!(*lock.lock(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let lock = Mutex::new(());
        let guard = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let lock = RwLock::new(5);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *lock.write() = 6;
        assert_eq!(*lock.read(), 6);
    }
}
