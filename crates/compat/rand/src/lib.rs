//! Offline API-compatible stand-in for the parts of [`rand` 0.8] this
//! workspace uses: the [`Rng`] and [`SeedableRng`] traits and
//! [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast and statistically solid, but *not* the
//! same stream as upstream `StdRng` (which is ChaCha12).  Code in this
//! workspace only relies on determinism per seed, never on specific stream
//! values, so the two are interchangeable here.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a random value of a type with a standard distribution:
    /// `f64` uniform in `[0, 1)`, integers uniform over their full range,
    /// `bool` with probability 1/2.
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a random value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must lie in [0, 1], got {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait StandardDist {
    /// Draws one value with the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sampling below an exclusive `u64` bound, bias-corrected with
/// rejection sampling (Lemire's method without the multiply shortcut).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng); // [0, 1)
        let value = self.start + (self.end - self.start) * unit;
        // Floating-point rounding may land exactly on `end`; nudge back in.
        if value >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            value
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53 mantissa bits, uniform over [0, 1] inclusive.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (start + (end - start) * unit).clamp(start, end)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; escape it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn unit_interval_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(f64::EPSILON..=1.0);
            assert!((f64::EPSILON..=1.0).contains(&g));
        }
    }

    #[test]
    fn every_bucket_is_hit() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for (bucket, &count) in counts.iter().enumerate() {
            assert!(count > 500, "bucket {bucket} only hit {count} times");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
