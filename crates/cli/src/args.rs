//! A small declarative command-line argument parser.
//!
//! The workspace's dependency policy keeps third-party crates to the approved
//! list, so the CLI parses its own arguments: every command declares the
//! option names (which take a value) and switch names (which do not) it
//! accepts, positional arguments are collected in order, and anything
//! unrecognised is an error rather than being silently ignored.

use crate::CliError;
use std::collections::{HashMap, HashSet};
use std::str::FromStr;

/// The accepted options and switches of one subcommand.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgSpec<'a> {
    /// Names (without the leading `--`) of options that take a value.
    pub options: &'a [&'a str],
    /// Names (without the leading `--`) of boolean switches.
    pub switches: &'a [&'a str],
}

/// Parsed arguments of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct Arguments {
    positional: Vec<String>,
    options: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Arguments {
    /// Parses `tokens` against `spec`.
    ///
    /// Options may be written `--name value` or `--name=value`; switches are
    /// bare `--name`.  Unknown `--…` tokens and options missing their value
    /// are reported as errors.
    pub fn parse(tokens: &[String], spec: &ArgSpec<'_>) -> Result<Self, CliError> {
        let mut parsed = Arguments::default();
        let mut index = 0usize;
        while index < tokens.len() {
            let token = &tokens[index];
            if let Some(name) = token.strip_prefix("--") {
                let (name, inline_value) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if spec.switches.contains(&name) {
                    if inline_value.is_some() {
                        return Err(CliError::new(format!(
                            "switch --{name} does not take a value"
                        )));
                    }
                    parsed.switches.insert(name.to_string());
                } else if spec.options.contains(&name) {
                    let value = match inline_value {
                        Some(v) => v,
                        None => {
                            index += 1;
                            tokens.get(index).cloned().ok_or_else(|| {
                                CliError::new(format!("option --{name} requires a value"))
                            })?
                        }
                    };
                    if parsed.options.insert(name.to_string(), value).is_some() {
                        return Err(CliError::new(format!(
                            "option --{name} given more than once"
                        )));
                    }
                } else {
                    return Err(CliError::new(format!("unknown option --{name}")));
                }
            } else {
                parsed.positional.push(token.clone());
            }
            index += 1;
        }
        Ok(parsed)
    }

    /// The `index`-th positional argument, if present.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// The `index`-th positional argument, or an error naming what is missing.
    pub fn require_positional(&self, index: usize, what: &str) -> Result<&str, CliError> {
        self.positional(index)
            .ok_or_else(|| CliError::new(format!("missing required argument: {what}")))
    }

    /// Number of positional arguments.
    pub fn num_positional(&self) -> usize {
        self.positional.len()
    }

    /// The raw value of an option, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Parses an option into `T`, using `default` when the option is absent.
    pub fn parse_option<T: FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.option(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| CliError::new(format!("invalid value for --{name}: {e}"))),
        }
    }

    /// Parses a required option into `T`.
    pub fn require_option<T: FromStr>(&self, name: &str) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .option(name)
            .ok_or_else(|| CliError::new(format!("missing required option --{name}")))?;
        raw.parse::<T>()
            .map_err(|e| CliError::new(format!("invalid value for --{name}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    const SPEC: ArgSpec<'_> = ArgSpec {
        options: &["k", "seed", "out"],
        switches: &["verbose"],
    };

    #[test]
    fn parses_positionals_options_and_switches() {
        let args = Arguments::parse(
            &tokens(&["graph.tsv", "--k", "5", "--verbose", "--seed=9"]),
            &SPEC,
        )
        .unwrap();
        assert_eq!(args.positional(0), Some("graph.tsv"));
        assert_eq!(args.num_positional(), 1);
        assert_eq!(args.option("k"), Some("5"));
        assert_eq!(args.parse_option::<u64>("seed", 0).unwrap(), 9);
        assert!(args.switch("verbose"));
        assert!(!args.switch("quiet"));
        assert_eq!(
            args.parse_option::<usize>("missing-is-default", 7)
                .unwrap_or(7),
            7
        );
    }

    #[test]
    fn defaults_apply_when_options_are_absent() {
        let args = Arguments::parse(&tokens(&["g.tsv"]), &SPEC).unwrap();
        assert_eq!(args.parse_option::<usize>("k", 10).unwrap(), 10);
        assert!(args.option("out").is_none());
    }

    #[test]
    fn unknown_option_is_an_error() {
        let err = Arguments::parse(&tokens(&["--bogus", "1"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn option_without_value_is_an_error() {
        let err = Arguments::parse(&tokens(&["--k"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn duplicate_option_is_an_error() {
        let err = Arguments::parse(&tokens(&["--k", "1", "--k", "2"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn switch_with_value_is_an_error() {
        let err = Arguments::parse(&tokens(&["--verbose=yes"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("does not take a value"));
    }

    #[test]
    fn invalid_numeric_value_is_reported() {
        let args = Arguments::parse(&tokens(&["--k", "abc"]), &SPEC).unwrap();
        let err = args.parse_option::<usize>("k", 1).unwrap_err();
        assert!(err.to_string().contains("--k"));
        let err = args.require_option::<usize>("k").unwrap_err();
        assert!(err.to_string().contains("--k"));
    }

    #[test]
    fn missing_required_pieces_are_reported() {
        let args = Arguments::parse(&tokens(&[]), &SPEC).unwrap();
        assert!(args
            .require_positional(0, "the graph file")
            .unwrap_err()
            .to_string()
            .contains("graph file"));
        assert!(args
            .require_option::<u64>("seed")
            .unwrap_err()
            .to_string()
            .contains("--seed"));
    }
}
