//! Library backing the `usim` command-line tool.
//!
//! The binary in `src/main.rs` forwards its arguments to [`run`]; every
//! subcommand returns its output as a `String`, so the whole CLI is testable
//! without spawning processes.
//!
//! ```text
//! usim datasets                                list the Table II dataset registry
//! usim generate  --dataset Net --out net.tsv   generate a synthetic dataset
//! usim stats     GRAPH                         topology / probability statistics
//! usim simrank   GRAPH --source U --target V   single-pair SimRank query
//! usim topk      GRAPH --source U --k 10       most similar vertices to a source
//! usim topk-pairs GRAPH --k 10                 most similar vertex pairs
//! usim matrices  GRAPH --steps 3               k-step transition probability matrices
//! usim update    GRAPH --updates F --out OUT   apply arc updates to a graph
//! usim serve     GRAPH --addr HOST:PORT        serve queries/updates over TCP (JSON lines)
//! usim snapshot  write GRAPH OUT               compile a graph into a CSR snapshot
//! usim convert   IN OUT                        convert between text and binary formats
//! usim er        --records 300                 entity-resolution case study
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;
pub mod estimators;
pub mod exec;
pub mod graphio;
pub mod table;
pub mod updates;

use std::fmt;

/// Error type shared by every subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl CliError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ugraph::GraphError> for CliError {
    fn from(e: ugraph::GraphError) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<rwalk::transpr::TransPrError> for CliError {
    fn from(e: rwalk::transpr::TransPrError) -> Self {
        CliError::new(e.to_string())
    }
}

/// Dispatches a full command line (without the program name) to the matching
/// subcommand and returns its textual output.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "version" | "--version" | "-V" => Ok(format!("usim {}\n", env!("CARGO_PKG_VERSION"))),
        "datasets" => commands::datasets::run(rest),
        "generate" => commands::generate::run(rest),
        "stats" => commands::stats::run(rest),
        "simrank" => commands::simrank::run(rest),
        "topk" => commands::topk::run(rest),
        "topk-pairs" => commands::pairs::run(rest),
        "matrices" => commands::matrices::run(rest),
        "update" => commands::update::run(rest),
        "serve" => commands::serve::run(rest),
        "snapshot" => commands::snapshot::run(rest),
        "convert" => commands::convert::run(rest),
        "er" => commands::er::run(rest),
        other => Err(CliError::new(format!(
            "unknown command {other:?}; run `usim help` for the list of commands"
        ))),
    }
}

/// The top-level usage text.
pub fn usage() -> String {
    concat!(
        "usim — SimRank on uncertain graphs (reproduction of Zhu, Zou & Li, ICDE 2016)\n",
        "\n",
        "USAGE:\n",
        "    usim <COMMAND> [ARGS]\n",
        "\n",
        "COMMANDS:\n",
        "    datasets     List the synthetic dataset registry (Table II stand-ins)\n",
        "    generate     Generate a synthetic uncertain graph and write it to a file\n",
        "    stats        Print statistics of a graph file, or (--server) a live\n",
        "                 counter view of a running `usim serve` instance\n",
        "    simrank      SimRank similarity of one vertex pair (all estimators available)\n",
        "    topk         The k vertices most similar to a source vertex\n",
        "    topk-pairs   The k most similar vertex pairs of a graph\n",
        "    matrices     k-step transition probability matrices W(1)..W(K)\n",
        "    update       Apply an arc-update file to a graph and write the result\n",
        "                 (`+ u v p` insert, `- u v` delete, `= u v p` set probability;\n",
        "                 a line holding only `---` separates update rounds, each round\n",
        "                 applied as one atomic batch)\n",
        "    serve        Serve queries and live updates over TCP: line-delimited JSON\n",
        "                 frames (similarity/profile/top_k/batch/update/stats), answers\n",
        "                 bit-identical to the batch-engine commands; see docs/PROTOCOL.md\n",
        "    snapshot     `snapshot write GRAPH OUT` compiles a graph into a checksummed\n",
        "                 CSR snapshot (loadable with `serve --snapshot` without re-parsing\n",
        "                 or re-validating edges); `snapshot verify PATH` checks one\n",
        "    convert      Convert a graph between the text and binary formats\n",
        "    er           Entity-resolution case study on a synthetic record graph\n",
        "    help         Show this message\n",
        "    version      Show the version\n",
        "\n",
        "GRAPH FILES:\n",
        "    Text edge lists have one `source target probability` triple per line\n",
        "    (probability optional, defaults to 1.0; `#` starts a comment).  Files\n",
        "    ending in .bin or .usim use the binary format; --format text|binary\n",
        "    overrides the extension-based detection.\n",
        "\n",
        "SIMRANK OPTIONS (shared by simrank, topk, topk-pairs, er):\n",
        "    --decay C          decay factor c in (0,1)        [default 0.6]\n",
        "    --horizon N        walk horizon n                  [default 5]\n",
        "    --samples N        sampled walks per query vertex  [default 1000]\n",
        "    --phase-switch L   exact steps of SR-TS / SR-SP    [default 1]\n",
        "    --seed S           RNG seed                        [default fixed]\n",
        "    --direction in|out walk direction                  [default in]\n",
        "    --sampler legacy|alias\n",
        "                       per-step walk backend: legacy draws each arc\n",
        "                       lazily; alias precomputes Walker alias tables\n",
        "                       at build time (O(1) per step)     [default legacy]\n",
        "\n",
        "BATCH / DYNAMIC-UPDATE OPTIONS:\n",
        "    --batch FILE       answer a pairs file (`source target` per line) with\n",
        "                       the CSR batch engine (simrank)\n",
        "    --threads N        batch worker threads; 0 (the default) means \"use the\n",
        "                       rayon default pool\" instead of a pinned pool\n",
        "    --updates FILE     arc updates: `+ u v p` insert, `- u v` delete,\n",
        "                       `= u v p` set probability; a `---` line separates\n",
        "                       rounds, each applied as one atomic batch.\n",
        "                       With `simrank --batch` the pair batch is re-answered\n",
        "                       after every round (churn mode); `update` applies the\n",
        "                       rounds and writes the mutated graph via --out\n",
        "    --cache-capacity N epoch-validated result cache in front of the batch\n",
        "                       engine (simrank --batch and serve): repeated pairs\n",
        "                       are served without re-sampling, answers stay\n",
        "                       bit-identical; 0 = off                     [default 0]\n",
        "\n",
        "SERVER OPTIONS (serve):\n",
        "    --addr HOST:PORT   listen address (port 0 picks a free port) [127.0.0.1:7878]\n",
        "    --workers N        serving threads                            [default 4]\n",
        "    --queue N          bounded connection-queue depth             [default 64]\n",
        "    --max-batch N      per-request pairs/candidates/updates cap   [default 65536]\n",
        "    --max-connections N  stop after N connections; 0 = run forever [default 0]\n",
        "    --port-file PATH   write the bound address to PATH after binding\n",
        "                       (removed again on clean shutdown)\n",
        "    --cache-capacity N result-cache entries per shard; 0 = off    [default 0]\n",
        "    --snapshot PATH    boot from a compiled CSR snapshot (`usim snapshot write`)\n",
        "                       instead of a graph file: no parsing, no per-edge work\n",
        "    --update-log PATH  durable update log: replay logged rounds at boot, then\n",
        "                       append (and sync) every accepted update batch\n",
        "    --shards K         partition the vertex space across K engine replicas\n",
        "                       behind a scatter-gather router; answers stay\n",
        "                       bit-identical at any K                      [default 1]\n",
        "    --shard-threads N  pinned rayon workers per shard; 0 = ambient [default 0]\n",
        "    --coalesce-window µS  batch concurrent query frames arriving within µS\n",
        "                       microseconds into one engine dispatch (answers stay\n",
        "                       byte-identical); 0 = off                    [default 0]\n",
        "    --coalesce-max N   flush a coalesced batch at N pending requests\n",
        "                       even before the window closes              [default 16]\n",
        "    --trace-sample-rate R  trace every ~1/R-th request: per-stage timings,\n",
        "                       stage histograms in `stats`, slow-query log\n",
        "                       (answers stay byte-identical); 0 = off     [default 0]\n",
        "    --slow-log N       keep the N slowest traced requests for the\n",
        "                       `slow_queries` frame                       [default 32]\n",
        "    --metrics-port P   serve the Prometheus text exposition over plain\n",
        "                       HTTP on port P (0 picks a free port)\n",
        "    --metrics-port-file PATH  write the exporter's bound address to PATH\n",
        "\n",
        "SERVER STATS VIEW (stats --server):\n",
        "    --server HOST:PORT render a running server's counters (latency,\n",
        "                       cache, coalescer, stage traces, slow queries)\n",
        "    --watch SECS       repeat every SECS seconds\n",
        "    --iterations N     stop after N views; 0 = forever with --watch [default 1]\n",
        "\n",
        "Run `usim <COMMAND> --help` semantics are not supported; see README.md for\n",
        "per-command examples.\n",
    )
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_arguments_prints_usage() {
        let output = run(&[]).unwrap();
        assert!(output.contains("USAGE"));
        assert!(output.contains("topk-pairs"));
    }

    #[test]
    fn help_and_version() {
        assert!(run(&tokens(&["help"])).unwrap().contains("COMMANDS"));
        assert!(run(&tokens(&["--help"])).unwrap().contains("COMMANDS"));
        let version = run(&tokens(&["version"])).unwrap();
        assert!(version.starts_with("usim "));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&tokens(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn error_conversions_preserve_messages() {
        let graph_error = ugraph::GraphError::Io("disk on fire".into());
        let cli: CliError = graph_error.into();
        assert!(cli.to_string().contains("disk on fire"));
        let io_error = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let cli: CliError = io_error.into();
        assert!(cli.to_string().contains("nope"));
    }
}
