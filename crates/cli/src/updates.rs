//! Parsing of arc-update files (`usim update`, `usim simrank --updates`).
//!
//! An update file speaks the graph file's *original labels* and has one
//! update per line:
//!
//! ```text
//! # insert an arc with probability 0.8 (word form: insert U V P)
//! + 10 20 0.8
//! # delete an arc                      (word form: delete U V)
//! - 10 30
//! # replace an arc's probability      (word form: set U V P)
//! = 20 30 0.55
//! ---
//! # `---` separates update *rounds*; `usim simrank --batch --updates`
//! # re-answers the whole pair batch after each round, `usim update`
//! # applies the rounds in order.
//! + 30 10 0.25
//! ```
//!
//! Blank lines and `#` comments are skipped.  Every parse failure — bad
//! opcode, wrong field count, unparsable number, label that does not appear
//! in the graph — is reported with the offending 1-based line number.

use crate::graphio::LoadedGraph;
use crate::CliError;
use ugraph::{GraphUpdate, UpdateError, UpdateSummary};

/// The one-line round report shared by `usim update` and the churn mode of
/// `usim simrank --batch` (1-based `round`).
pub fn format_round_summary(round: usize, summary: &UpdateSummary) -> String {
    format!(
        "round {round}: +{} -{} ={} arcs -> {} live{}",
        summary.inserted,
        summary.deleted,
        summary.reweighted,
        summary.num_arcs,
        if summary.compacted { ", compacted" } else { "" },
    )
}

/// Renders a rejected update in the graph file's *original labels* — the
/// overlay speaks compact ids, the user speaks labels.
pub fn describe_update_error(error: &UpdateError, loaded: &LoadedGraph) -> String {
    match *error {
        UpdateError::InvalidProbability {
            source,
            target,
            probability,
        } => format!(
            "update of arc ({}, {}) carries invalid probability {probability}; \
             probabilities must lie in (0, 1]",
            loaded.label_of(source),
            loaded.label_of(target)
        ),
        UpdateError::ArcAlreadyExists { source, target } => format!(
            "cannot insert arc ({}, {}): it already exists \
             (use a set-probability update to re-weight it)",
            loaded.label_of(source),
            loaded.label_of(target)
        ),
        UpdateError::ArcNotFound { source, target } => format!(
            "arc ({}, {}) does not exist",
            loaded.label_of(source),
            loaded.label_of(target)
        ),
        // Ids arrive through label resolution, so this cannot name a label;
        // fall back to the overlay's own message.
        UpdateError::VertexOutOfRange { .. } => error.to_string(),
    }
}

/// Parses an update file into rounds of validated-id [`GraphUpdate`]s.
///
/// Labels are resolved against `loaded` here, so downstream code works in
/// compact vertex ids only.  Empty rounds (consecutive separators, leading
/// or trailing separators) are dropped; an update file with no updates at
/// all is an error.
pub fn read_update_rounds(
    path: &str,
    loaded: &LoadedGraph,
) -> Result<Vec<Vec<GraphUpdate>>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read update file {path}: {e}")))?;
    let mut rounds: Vec<Vec<GraphUpdate>> = Vec::new();
    let mut current: Vec<GraphUpdate> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "---" {
            if !current.is_empty() {
                rounds.push(std::mem::take(&mut current));
            }
            continue;
        }
        current.push(parse_update_line(path, index + 1, line, loaded)?);
    }
    if !current.is_empty() {
        rounds.push(current);
    }
    if rounds.is_empty() {
        return Err(CliError::new(format!(
            "update file {path} contains no updates"
        )));
    }
    Ok(rounds)
}

/// Parses one non-blank, non-comment update line (1-based `line_number` is
/// used for error reporting only).
fn parse_update_line(
    path: &str,
    line_number: usize,
    line: &str,
    loaded: &LoadedGraph,
) -> Result<GraphUpdate, CliError> {
    let fail = |message: String| CliError::new(format!("{path}:{line_number}: {message}"));
    let mut fields = line.split_whitespace();
    let op = fields.next().expect("line is non-blank");
    let rest: Vec<&str> = fields.collect();
    let expect_fields = |n: usize| -> Result<(), CliError> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(fail(format!(
                "expected {n} fields after {op:?}, got {} in {line:?}",
                rest.len()
            )))
        }
    };
    let vertex = |field: &str| {
        let label: u64 = field
            .parse()
            .map_err(|_| fail(format!("bad vertex label {field:?}")))?;
        loaded
            .vertex_for_label(label)
            .map_err(|_| fail(format!("vertex {label} does not appear in the graph")))
    };
    let probability = |field: &str| {
        field
            .parse::<f64>()
            .map_err(|_| fail(format!("bad probability {field:?}")))
    };
    match op {
        "+" | "insert" => {
            expect_fields(3)?;
            Ok(GraphUpdate::InsertArc {
                source: vertex(rest[0])?,
                target: vertex(rest[1])?,
                probability: probability(rest[2])?,
            })
        }
        "-" | "delete" => {
            expect_fields(2)?;
            Ok(GraphUpdate::DeleteArc {
                source: vertex(rest[0])?,
                target: vertex(rest[1])?,
            })
        }
        "=" | "set" => {
            expect_fields(3)?;
            Ok(GraphUpdate::SetProbability {
                source: vertex(rest[0])?,
                target: vertex(rest[1])?,
                probability: probability(rest[2])?,
            })
        }
        other => Err(fail(format!(
            "unknown update op {other:?}; expected one of \"+\"/\"insert\", \
             \"-\"/\"delete\", \"=\"/\"set\" (or \"---\" to separate rounds)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphio::load_graph;

    fn fixture() -> (std::path::PathBuf, LoadedGraph) {
        let path = std::env::temp_dir().join(format!(
            "usim_cli_updates_graph_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // Non-compact labels on purpose: 10, 20, 30.
        std::fs::write(&path, "10 20 0.5\n20 30 0.9\n").unwrap();
        let loaded = load_graph(path.to_str().unwrap(), None).unwrap();
        (path, loaded)
    }

    fn write_updates(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "usim_cli_updates_{}_{}_{:?}",
            name,
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn parses_symbols_words_comments_and_rounds() {
        let (graph_path, loaded) = fixture();
        let path = write_updates(
            "ok",
            "# round one\n+ 30 10 0.8\nset 10 20 0.7\n---\n\n---\ndelete 20 30\n---\n",
        );
        let rounds = read_update_rounds(path.to_str().unwrap(), &loaded).unwrap();
        assert_eq!(rounds.len(), 2, "empty rounds are dropped");
        assert_eq!(rounds[0].len(), 2);
        let v10 = loaded.vertex_for_label(10).unwrap();
        let v20 = loaded.vertex_for_label(20).unwrap();
        let v30 = loaded.vertex_for_label(30).unwrap();
        assert_eq!(
            rounds[0][0],
            GraphUpdate::InsertArc {
                source: v30,
                target: v10,
                probability: 0.8
            }
        );
        assert_eq!(
            rounds[1][0],
            GraphUpdate::DeleteArc {
                source: v20,
                target: v30
            }
        );
        std::fs::remove_file(&graph_path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_malformed_line_reports_its_line_number() {
        let (graph_path, loaded) = fixture();
        let cases = [
            ("? 10 20", "unknown update op"),
            ("+ 10 20", "expected 3 fields"),
            ("- 10 20 0.5", "expected 2 fields"),
            ("+ ten 20 0.5", "bad vertex label"),
            ("+ 10 20 high", "bad probability"),
            ("+ 10 99 0.5", "vertex 99 does not appear"),
        ];
        for (line, expected) in cases {
            let path = write_updates("bad", &format!("+ 30 10 0.5\n{line}\n"));
            let err = read_update_rounds(path.to_str().unwrap(), &loaded).unwrap_err();
            let message = err.to_string();
            assert!(
                message.contains(":2:") && message.contains(expected),
                "line {line:?}: {message}"
            );
            std::fs::remove_file(&path).unwrap();
        }
        std::fs::remove_file(&graph_path).unwrap();
    }

    #[test]
    fn empty_update_files_are_errors() {
        let (graph_path, loaded) = fixture();
        for content in ["", "# only comments\n", "---\n---\n"] {
            let path = write_updates("empty", content);
            let err = read_update_rounds(path.to_str().unwrap(), &loaded).unwrap_err();
            assert!(err.to_string().contains("no updates"), "{err}");
            std::fs::remove_file(&path).unwrap();
        }
        let err = read_update_rounds("/nonexistent/usim/updates.txt", &loaded).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
        std::fs::remove_file(&graph_path).unwrap();
    }
}
