//! Fixed-width text tables for command output.

/// A right-aligned fixed-width table, rendered to a `String`.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it must have as many cells as the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(cell, width)| format!("{cell:>width$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total_width = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a similarity score with six decimal places.
pub fn fmt_score(score: f64) -> String {
    format!("{score:.6}")
}

/// Formats a duration in milliseconds with two decimal places.
pub fn fmt_millis(duration: std::time::Duration) -> String {
    format!("{:.2}", duration.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new(&["name", "value"]);
        table.row(vec!["a".into(), "1".into()]);
        table.row(vec!["longer".into(), "2.5".into()]);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(table.num_rows(), 2);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("  1") || lines[2].ends_with(" 1"));
        // All rows have the same rendered width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_are_rejected() {
        let mut table = TextTable::new(&["a", "b"]);
        table.row(vec!["only".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_score(0.1234567), "0.123457");
        assert_eq!(fmt_millis(std::time::Duration::from_micros(1500)), "1.50");
    }
}
