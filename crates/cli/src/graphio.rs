//! Loading and saving uncertain graphs in the formats the CLI understands.
//!
//! Two formats are supported: the whitespace-separated text edge list of
//! [`ugraph::io`] (`source target probability` per line) and the binary
//! format of [`ugraph::binfmt`].  The format is chosen by file extension
//! (`.bin` / `.usim` → binary, everything else → text) unless overridden with
//! `--format`.
//!
//! Text edge lists may use arbitrary (non-contiguous) vertex labels; they are
//! compacted on load and the CLI keeps the label table so queries and output
//! always speak the file's original labels.

use crate::CliError;
use ugraph::binfmt;
use ugraph::io::{read_edge_list_file, write_edge_list_file, ReadOptions};
use ugraph::{UncertainGraph, VertexId};

/// On-disk graph format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// Whitespace-separated text edge list.
    Text,
    /// Binary format with checksum ([`ugraph::binfmt`]).
    Binary,
}

impl GraphFormat {
    /// Chooses a format from an optional `--format` value and the file path.
    pub fn detect(path: &str, explicit: Option<&str>) -> Result<Self, CliError> {
        match explicit {
            Some("text") => Ok(GraphFormat::Text),
            Some("binary") => Ok(GraphFormat::Binary),
            Some(other) => Err(CliError::new(format!(
                "unknown graph format {other:?}; expected \"text\" or \"binary\""
            ))),
            None => {
                let lower = path.to_ascii_lowercase();
                if lower.ends_with(".bin") || lower.ends_with(".usim") {
                    Ok(GraphFormat::Binary)
                } else {
                    Ok(GraphFormat::Text)
                }
            }
        }
    }
}

/// A graph loaded by the CLI, together with the original vertex labels of the
/// input file.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The parsed graph with compact vertex ids `0..n`.
    pub graph: UncertainGraph,
    /// `labels[v]` is the label vertex `v` had in the input file.
    pub labels: Vec<u64>,
}

impl LoadedGraph {
    /// Maps an original file label to the compact vertex id.
    pub fn vertex_for_label(&self, label: u64) -> Result<VertexId, CliError> {
        self.labels
            .iter()
            .position(|&l| l == label)
            .map(|i| i as VertexId)
            .ok_or_else(|| CliError::new(format!("vertex {label} does not appear in the graph")))
    }

    /// Maps a compact vertex id back to its original label.
    pub fn label_of(&self, vertex: VertexId) -> u64 {
        self.labels[vertex as usize]
    }
}

/// Loads a graph from `path`, honouring an optional explicit `--format`.
pub fn load_graph(path: &str, explicit_format: Option<&str>) -> Result<LoadedGraph, CliError> {
    match GraphFormat::detect(path, explicit_format)? {
        GraphFormat::Binary => {
            let graph = binfmt::read_binary_file(path)
                .map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let labels = (0..graph.num_vertices() as u64).collect();
            Ok(LoadedGraph { graph, labels })
        }
        GraphFormat::Text => {
            let result = read_edge_list_file(path, &ReadOptions::default())
                .map_err(|e| CliError::new(format!("{path}: {e}")))?;
            Ok(LoadedGraph {
                graph: result.graph,
                labels: result.labels,
            })
        }
    }
}

/// Writes a graph to `path`, honouring an optional explicit `--format`.
pub fn save_graph(
    graph: &UncertainGraph,
    path: &str,
    explicit_format: Option<&str>,
) -> Result<GraphFormat, CliError> {
    let format = GraphFormat::detect(path, explicit_format)?;
    match format {
        GraphFormat::Binary => binfmt::write_binary_file(graph, path)
            .map_err(|e| CliError::new(format!("{path}: {e}")))?,
        GraphFormat::Text => {
            write_edge_list_file(graph, path).map_err(|e| CliError::new(format!("{path}: {e}")))?
        }
    }
    Ok(format)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;

    fn sample_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(3)
            .arc(0, 1, 0.5)
            .arc(1, 2, 0.25)
            .arc(2, 0, 1.0)
            .build()
            .unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("usim_cli_{}_{name}", std::process::id()))
    }

    #[test]
    fn format_detection_prefers_explicit_over_extension() {
        assert_eq!(
            GraphFormat::detect("g.bin", None).unwrap(),
            GraphFormat::Binary
        );
        assert_eq!(
            GraphFormat::detect("g.usim", None).unwrap(),
            GraphFormat::Binary
        );
        assert_eq!(
            GraphFormat::detect("g.tsv", None).unwrap(),
            GraphFormat::Text
        );
        assert_eq!(
            GraphFormat::detect("g.bin", Some("text")).unwrap(),
            GraphFormat::Text
        );
        assert!(GraphFormat::detect("g.tsv", Some("parquet")).is_err());
    }

    #[test]
    fn text_roundtrip_via_the_cli_helpers() {
        let path = temp_path("roundtrip.tsv");
        let path_str = path.to_str().unwrap();
        save_graph(&sample_graph(), path_str, None).unwrap();
        let loaded = load_graph(path_str, None).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_arcs(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_roundtrip_via_the_cli_helpers() {
        let path = temp_path("roundtrip.bin");
        let path_str = path.to_str().unwrap();
        let format = save_graph(&sample_graph(), path_str, None).unwrap();
        assert_eq!(format, GraphFormat::Binary);
        let loaded = load_graph(path_str, None).unwrap();
        assert_eq!(loaded.graph.num_arcs(), 3);
        assert_eq!(loaded.label_of(2), 2);
        assert_eq!(loaded.vertex_for_label(1).unwrap(), 1);
        assert!(loaded.vertex_for_label(99).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn label_mapping_survives_non_compact_text_files() {
        let path = temp_path("labels.tsv");
        std::fs::write(&path, "10 20 0.5\n20 30 0.75\n").unwrap();
        let loaded = load_graph(path.to_str().unwrap(), None).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        let v10 = loaded.vertex_for_label(10).unwrap();
        let v30 = loaded.vertex_for_label(30).unwrap();
        assert_ne!(v10, v30);
        assert_eq!(loaded.label_of(v10), 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load_graph("/nonexistent/usim/graph.tsv", None).unwrap_err();
        assert!(err.to_string().contains("graph.tsv"));
    }
}
