//! `usim topk-pairs` — the k most similar vertex pairs of a graph.
//!
//! On small graphs (at most `--exhaustive-below` vertices, default 150) every
//! unordered pair is evaluated; on larger graphs `--pairs` random candidate
//! pairs are drawn.  Queries run in parallel through
//! [`usim_core::par_top_k_pairs`].

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, AlgorithmKind, CONFIG_OPTIONS};
use crate::graphio::load_graph;
use crate::table::{fmt_millis, fmt_score, TextTable};
use crate::CliError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ugraph::VertexId;
use usim_core::par_top_k_pairs;

const BASE_OPTIONS: &[&str] = &["k", "pairs", "algorithm", "exhaustive-below", "format"];

fn spec() -> ArgSpec<'static> {
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &[],
    }
}

fn candidate_pairs(
    num_vertices: usize,
    exhaustive_below: usize,
    sampled: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    if num_vertices <= exhaustive_below {
        let n = num_vertices as VertexId;
        (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect()
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(sampled);
        while pairs.len() < sampled {
            let u = rng.gen_range(0..num_vertices) as VertexId;
            let v = rng.gen_range(0..num_vertices) as VertexId;
            if u != v {
                pairs.push((u, v));
            }
        }
        pairs
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let k: usize = args.parse_option("k", 10usize)?;
    let sampled: usize = args.parse_option("pairs", 500usize)?;
    let exhaustive_below: usize = args.parse_option("exhaustive-below", 150usize)?;
    let kind = AlgorithmKind::parse(args.option("algorithm").unwrap_or("two-phase"))?;
    let config = config_from_args(&args)?;

    let loaded = load_graph(path, args.option("format"))?;
    let pairs = candidate_pairs(
        loaded.graph.num_vertices(),
        exhaustive_below,
        sampled,
        config.seed,
    );

    let start = Instant::now();
    let graph = &loaded.graph;
    let top = par_top_k_pairs(|| kind.build(graph, config), &pairs, k);
    let elapsed = start.elapsed();

    let mut table = TextTable::new(&["rank", "u", "v", "s(u, v)"]);
    for (rank, scored) in top.into_iter().enumerate() {
        table.row(vec![
            (rank + 1).to_string(),
            loaded.label_of(scored.pair.0).to_string(),
            loaded.label_of(scored.pair.1).to_string(),
            fmt_score(scored.score),
        ]);
    }
    let mut output = format!(
        "top-{k} most similar pairs on {path} ({} candidate pairs, {}, {} ms)\n\n",
        pairs.len(),
        kind.display_name(),
        fmt_millis(elapsed),
    );
    output.push_str(&table.render());
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_pairs_{}_{name}", std::process::id()));
        std::fs::write(
            &path,
            "2 0 0.9\n2 1 0.9\n3 0 0.8\n3 1 0.8\n4 5 0.2\n0 4 0.3\n",
        )
        .unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exhaustive_mode_finds_the_structurally_similar_pair_first() {
        let path = graph_file("exhaustive.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--k",
            "3",
            "--algorithm",
            "baseline",
        ]))
        .unwrap();
        // Vertices 0 and 1 share both in-neighbors (2 and 3) with high
        // probability, so (0, 1) must rank first under the exact Baseline.
        let first_data_line = output
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap_or_default();
        let cells: Vec<&str> = first_data_line.split_whitespace().collect();
        assert_eq!(&cells[1..3], &["0", "1"], "output:\n{output}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sampled_mode_caps_the_candidate_count() {
        let path = graph_file("sampled.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--k",
            "2",
            "--pairs",
            "7",
            "--exhaustive-below",
            "2",
            "--samples",
            "100",
        ]))
        .unwrap();
        assert!(output.contains("(7 candidate pairs"), "output:\n{output}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn candidate_pair_generation_is_deterministic_and_self_free() {
        let exhaustive = candidate_pairs(5, 10, 99, 1);
        assert_eq!(exhaustive.len(), 10);
        let sampled_a = candidate_pairs(1000, 10, 50, 7);
        let sampled_b = candidate_pairs(1000, 10, 50, 7);
        assert_eq!(sampled_a, sampled_b);
        assert!(sampled_a.iter().all(|&(u, v)| u != v));
    }
}
