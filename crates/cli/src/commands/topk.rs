//! `usim topk` — the k vertices most similar to a source vertex.
//!
//! By default this uses the single-source estimator
//! ([`usim_core::SingleSourceEstimator`]), which answers all `|V|` targets in
//! one pass instead of issuing `|V|` single-pair queries; `--exact-source`
//! switches the source side from a sampled walk to the exact transition rows
//! (lower variance, but subject to the exact enumeration's walk budget).
//!
//! `--engine batch` ranks through the CSR batch engine
//! ([`usim_core::QueryEngine`]) instead: one independent pair query per
//! candidate, sharded across rayon workers (`--threads N` pins the count),
//! with thread-count-invariant output.

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, CONFIG_OPTIONS};
use crate::graphio::load_graph;
use crate::table::{fmt_millis, fmt_score, TextTable};
use crate::CliError;
use std::time::Instant;
use ugraph::VertexId;
use usim_core::{QueryEngine, ScoredVertex, SingleSourceEstimator, SourceMode};

const BASE_OPTIONS: &[&str] = &["source", "k", "format", "engine", "threads"];

fn spec() -> ArgSpec<'static> {
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &["exact-source"],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let source_label: u64 = args.require_option("source")?;
    let k: usize = args.parse_option("k", 10usize)?;
    let config = config_from_args(&args)?;

    let loaded = load_graph(path, args.option("format"))?;
    let source = loaded.vertex_for_label(source_label)?;

    let engine_kind = args.option("engine").unwrap_or("single-source");
    let start = Instant::now();
    let (top, how): (Vec<ScoredVertex>, String) = match engine_kind {
        "single-source" => {
            let mode = if args.switch("exact-source") {
                SourceMode::Exact
            } else {
                SourceMode::Sampled
            };
            let mut estimator =
                SingleSourceEstimator::new(&loaded.graph, config).with_source_mode(mode);
            let result = estimator.try_query(source)?;
            (result.top_k(k), format!("source mode = {mode:?}"))
        }
        "batch" => {
            if args.switch("exact-source") {
                return Err(CliError::new(
                    "--exact-source requires --engine single-source; the batch engine \
                     always samples the source side",
                ));
            }
            let threads: usize = args.parse_option("threads", 0usize)?;
            let engine = QueryEngine::new(&loaded.graph, config);
            let candidates: Vec<VertexId> = (0..loaded.graph.num_vertices() as VertexId).collect();
            let pool = crate::exec::build_thread_pool(threads)?;
            let top = crate::exec::install_in(pool.as_ref(), || {
                engine.batch_top_k_similar_to(source, &candidates, k)
            })
            .map_err(|e| CliError::new(e.to_string()))?;
            let how = format!(
                "batch engine, threads = {}",
                crate::exec::describe_threads(threads)
            );
            (top, how)
        }
        other => {
            return Err(CliError::new(format!(
                "unknown engine {other:?}; expected \"single-source\" or \"batch\""
            )))
        }
    };
    let elapsed = start.elapsed();

    let mut table = TextTable::new(&["rank", "vertex", "s(source, vertex)"]);
    for (rank, scored) in top.into_iter().enumerate() {
        table.row(vec![
            (rank + 1).to_string(),
            loaded.label_of(scored.vertex).to_string(),
            fmt_score(scored.score),
        ]);
    }
    let mut output = format!(
        "top-{k} vertices most similar to {source_label} on {path} \
         (N = {}, n = {}, {how}, {} ms)\n\n",
        config.num_samples,
        config.horizon,
        fmt_millis(elapsed),
    );
    output.push_str(&table.render());
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_topk_{}_{name}", std::process::id()));
        // Vertices 0 and 1 share in-neighbor 2; vertex 4 shares nothing.
        std::fs::write(&path, "2 0 0.9\n2 1 0.8\n3 2 0.7\n0 3 0.5\n1 4 0.6\n").unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ranks_the_sibling_vertex_first() {
        let path = graph_file("rank.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--k",
            "3",
            "--samples",
            "800",
            "--seed",
            "5",
        ]))
        .unwrap();
        let first_data_line = output
            .lines()
            .find(|l| l.trim_start().starts_with('1'))
            .unwrap_or_default();
        assert!(
            first_data_line.split_whitespace().nth(1) == Some("1"),
            "vertex 1 should rank first:\n{output}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_source_mode_works() {
        let path = graph_file("exact.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--k",
            "2",
            "--samples",
            "300",
            "--exact-source",
        ]))
        .unwrap();
        assert!(output.contains("Exact"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_engine_ranks_the_sibling_first_and_is_thread_invariant() {
        let path = graph_file("engine.tsv");
        let base = |threads: &str| {
            tokens(&[
                path.to_str().unwrap(),
                "--source",
                "0",
                "--k",
                "3",
                "--samples",
                "600",
                "--seed",
                "5",
                "--engine",
                "batch",
                "--threads",
                threads,
            ])
        };
        let out_1 = run(&base("1")).unwrap();
        let out_4 = run(&base("4")).unwrap();
        assert!(out_1.contains("batch engine"), "{out_1}");
        let table = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
        assert_eq!(table(&out_1), table(&out_4));
        let first_data_line = out_1
            .lines()
            .find(|l| l.trim_start().starts_with('1'))
            .unwrap_or_default();
        assert!(
            first_data_line.split_whitespace().nth(1) == Some("1"),
            "vertex 1 should rank first:\n{out_1}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_engine_is_an_error() {
        let path = graph_file("badengine.tsv");
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--engine",
            "warp",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("warp"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_source_conflicts_with_the_batch_engine() {
        let path = graph_file("conflict.tsv");
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--engine",
            "batch",
            "--exact-source",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("single-source"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_source_is_an_error() {
        let path = graph_file("missing.tsv");
        assert!(run(&tokens(&[path.to_str().unwrap()])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
