//! `usim topk` — the k vertices most similar to a source vertex.
//!
//! Uses the single-source estimator ([`usim_core::SingleSourceEstimator`]),
//! which answers all `|V|` targets in one pass instead of issuing `|V|`
//! single-pair queries; `--exact-source` switches the source side from a
//! sampled walk to the exact transition rows (lower variance, but subject to
//! the exact enumeration's walk budget).

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, CONFIG_OPTIONS};
use crate::graphio::load_graph;
use crate::table::{fmt_millis, fmt_score, TextTable};
use crate::CliError;
use std::time::Instant;
use usim_core::{SingleSourceEstimator, SourceMode};

const BASE_OPTIONS: &[&str] = &["source", "k", "format"];

fn spec() -> ArgSpec<'static> {
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &["exact-source"],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let source_label: u64 = args.require_option("source")?;
    let k: usize = args.parse_option("k", 10usize)?;
    let config = config_from_args(&args)?;

    let loaded = load_graph(path, args.option("format"))?;
    let source = loaded.vertex_for_label(source_label)?;

    let mode = if args.switch("exact-source") {
        SourceMode::Exact
    } else {
        SourceMode::Sampled
    };
    let start = Instant::now();
    let mut estimator = SingleSourceEstimator::new(&loaded.graph, config).with_source_mode(mode);
    let result = estimator.try_query(source)?;
    let elapsed = start.elapsed();

    let mut table = TextTable::new(&["rank", "vertex", "s(source, vertex)"]);
    for (rank, scored) in result.top_k(k).into_iter().enumerate() {
        table.row(vec![
            (rank + 1).to_string(),
            loaded.label_of(scored.vertex).to_string(),
            fmt_score(scored.score),
        ]);
    }
    let mut output = format!(
        "top-{k} vertices most similar to {source_label} on {path} \
         (N = {}, n = {}, source mode = {mode:?}, {} ms)\n\n",
        config.num_samples,
        config.horizon,
        fmt_millis(elapsed),
    );
    output.push_str(&table.render());
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_topk_{}_{name}", std::process::id()));
        // Vertices 0 and 1 share in-neighbor 2; vertex 4 shares nothing.
        std::fs::write(&path, "2 0 0.9\n2 1 0.8\n3 2 0.7\n0 3 0.5\n1 4 0.6\n").unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ranks_the_sibling_vertex_first() {
        let path = graph_file("rank.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--k",
            "3",
            "--samples",
            "800",
            "--seed",
            "5",
        ]))
        .unwrap();
        let first_data_line = output
            .lines()
            .find(|l| l.trim_start().starts_with('1'))
            .unwrap_or_default();
        assert!(
            first_data_line.split_whitespace().nth(1) == Some("1"),
            "vertex 1 should rank first:\n{output}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_source_mode_works() {
        let path = graph_file("exact.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--k",
            "2",
            "--samples",
            "300",
            "--exact-source",
        ]))
        .unwrap();
        assert!(output.contains("Exact"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_source_is_an_error() {
        let path = graph_file("missing.tsv");
        assert!(run(&tokens(&[path.to_str().unwrap()])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
