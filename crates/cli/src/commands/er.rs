//! `usim er` — the entity-resolution case study on a synthetic record graph.
//!
//! Generates the ambiguous-author workload of Table IV (scaled to `--records`
//! records), clusters every name group with the selected algorithm(s), and
//! reports pairwise precision / recall / F1 against the planted ground truth
//! (Table V of the paper).

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, CONFIG_OPTIONS};
use crate::table::{fmt_millis, TextTable};
use crate::CliError;
use std::time::Instant;
use usim_datasets::ErGenerator;
use usim_er::{evaluate_clustering, metrics::average_metrics, ErAlgorithm, ErAlgorithmKind};

const BASE_OPTIONS: &[&str] = &["records", "algorithm", "threshold"];

fn spec() -> ArgSpec<'static> {
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &[],
    }
}

fn algorithms_from_args(args: &Arguments) -> Result<Vec<ErAlgorithmKind>, CliError> {
    match args.option("algorithm").unwrap_or("all") {
        "all" => Ok(vec![
            ErAlgorithmKind::SimEr,
            ErAlgorithmKind::SimDer,
            ErAlgorithmKind::Eif,
            ErAlgorithmKind::Distinct,
        ]),
        "simer" => Ok(vec![ErAlgorithmKind::SimEr]),
        "simder" => Ok(vec![ErAlgorithmKind::SimDer]),
        "eif" => Ok(vec![ErAlgorithmKind::Eif]),
        "distinct" => Ok(vec![ErAlgorithmKind::Distinct]),
        other => Err(CliError::new(format!(
            "unknown ER algorithm {other:?}; expected all, simer, simder, eif or distinct"
        ))),
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let records: usize = args.parse_option("records", 150usize)?;
    if records == 0 {
        return Err(CliError::new("--records must be at least 1"));
    }
    let kinds = algorithms_from_args(&args)?;
    // The published experiment uses N = 1000; the CLI default keeps the demo
    // quick and can be raised with --samples.
    let mut config = config_from_args(&args)?;
    if args.option("samples").is_none() {
        config = config.with_samples(200);
    }

    let dataset = ErGenerator::default()
        .with_total_records(records)
        .generate();
    let algorithms: Vec<ErAlgorithm> = kinds
        .iter()
        .map(|&kind| {
            let mut algorithm = ErAlgorithm::new(kind).with_simrank_config(config);
            if let Some(threshold) = args.option("threshold") {
                let threshold: f64 = threshold
                    .parse()
                    .map_err(|e| CliError::new(format!("invalid value for --threshold: {e}")))?;
                algorithm = algorithm.with_aggregation_threshold(threshold);
            }
            Ok(algorithm)
        })
        .collect::<Result<_, CliError>>()?;

    let mut header = vec!["name", "#authors", "#records"];
    for algorithm in &algorithms {
        header.push(algorithm.name());
    }
    let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());

    let mut per_algorithm_metrics = vec![Vec::new(); algorithms.len()];
    let start = Instant::now();
    for (group_index, group) in dataset.groups.iter().enumerate() {
        let group_records = dataset.records_of_group(group_index);
        let mut row = vec![
            group.name.clone(),
            group.num_authors.to_string(),
            group_records.len().to_string(),
        ];
        for (algorithm_index, algorithm) in algorithms.iter().enumerate() {
            let clustering = algorithm.cluster_group(&dataset.graph, &group_records);
            let quality = evaluate_clustering(&clustering, |a, b| dataset.same_author(a, b));
            per_algorithm_metrics[algorithm_index].push(quality);
            row.push(format!(
                "P {:.2} / R {:.2} / F1 {:.2}",
                quality.precision, quality.recall, quality.f1
            ));
        }
        table.row(row);
    }
    let mut average_row = vec![
        "AVERAGE".to_string(),
        String::new(),
        dataset.num_records().to_string(),
    ];
    for metrics in &per_algorithm_metrics {
        let average = average_metrics(metrics);
        average_row.push(format!(
            "P {:.2} / R {:.2} / F1 {:.2}",
            average.precision, average.recall, average.f1
        ));
    }
    table.row(average_row);

    let mut output = format!(
        "entity resolution on a synthetic record graph ({} records, {} name groups, N = {}, {} ms)\n\n",
        dataset.num_records(),
        dataset.groups.len(),
        config.num_samples,
        fmt_millis(start.elapsed()),
    );
    output.push_str(&table.render());
    output.push_str(
        "\nExpected shape (paper, Table V): SimER attains the best F1, followed by SimDER, \
         then EIF and DISTINCT; the gap is driven mainly by recall.\n",
    );
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_algorithm_run_reports_quality() {
        let output = run(&tokens(&["--records", "60", "--algorithm", "eif"])).unwrap();
        assert!(output.contains("EIF"));
        assert!(output.contains("AVERAGE"));
        assert!(output.contains("F1"));
    }

    #[test]
    fn all_algorithms_run_together() {
        let output = run(&tokens(&[
            "--records",
            "50",
            "--samples",
            "60",
            "--seed",
            "4",
        ]))
        .unwrap();
        for name in ["SimER", "SimDER", "EIF", "DISTINCT"] {
            assert!(output.contains(name), "missing {name} in:\n{output}");
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        assert!(run(&tokens(&["--algorithm", "magic"])).is_err());
        assert!(run(&tokens(&["--records", "0"])).is_err());
        assert!(run(&tokens(&["--records", "40", "--threshold", "abc"])).is_err());
    }
}
