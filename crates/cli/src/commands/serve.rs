//! `usim serve` — a long-lived query server over one graph.
//!
//! ```text
//! usim serve GRAPH [--addr 127.0.0.1:7878] [--workers 4] [--queue 64]
//!            [--max-batch 65536] [--max-connections 0] [--port-file PATH]
//!            [--cache-capacity 0] [--format text|binary]
//!            [--shards 1] [--shard-threads 0] [--update-log PATH]
//!            [--coalesce-window 0] [--coalesce-max 16]
//!            [--trace-sample-rate 0] [--slow-log 32]
//!            [--metrics-port P] [--metrics-port-file PATH]
//!            [SimRank options]
//! usim serve --snapshot PATH [same options]
//! ```
//!
//! The graph is loaded and compiled into the CSR engine **once**; clients
//! then speak the line-delimited JSON protocol of [`usim_server`] (one
//! request per line — `similarity`, `profile`, `top_k`, `batch`, `update`,
//! `stats` — one response per line; full reference in `docs/PROTOCOL.md`).
//! Vertices are addressed by the graph file's original labels, exactly like
//! every other subcommand, and answers are bit-identical to the equivalent
//! batch-engine CLI invocations (`usim simrank --batch`, `usim topk
//! --engine batch`) on the same graph and seed, at any worker count.
//!
//! `--snapshot PATH` boots from a compiled CSR snapshot (`usim snapshot
//! write`) instead of a graph file: the checksummed arrays are loaded
//! as-is — no parsing, sorting or per-edge validation — so restart latency
//! is O(bytes read), not O(edges processed).  The snapshot carries the
//! label table, so clients keep speaking the original file's labels.
//!
//! `--update-log PATH` makes `update` frames durable: every accepted batch
//! is appended (and synced) to the log before its response goes out, and at
//! boot any rounds already in the log are replayed in order — a restarted
//! server resumes at the exact epoch it died at, serving byte-identical
//! answers.  Pair it with `--snapshot` for the full
//! snapshot + replay boot path.
//!
//! `--shards K` partitions the vertex space across K independent engine
//! replicas (each with its own worker pool, delta overlay and result
//! cache — `--cache-capacity` is per shard) behind a scatter-gather
//! router; `--shard-threads N` pins N rayon workers per shard.  Answers
//! are bit-identical at any K (see `usim_core::ShardedQueryEngine`), and
//! the `stats` frame reports per-shard vertex ranges and cache counters.
//!
//! `--addr 127.0.0.1:0` binds a free port; `--port-file PATH` writes the
//! actual bound address (one `host:port` line) after binding, which is how
//! scripts and tests rendezvous without racing on a fixed port — the file
//! is removed again on clean shutdown, so a lingering port file always
//! points at a live (or crashed) server, never a finished one.
//! `--max-connections N` stops after serving N connections (`0`, the
//! default, serves forever) — the scripted-shutdown hook used by the
//! serve-smoke CI job.
//!
//! `--cache-capacity N` puts an epoch-validated result cache (bounded to N
//! entries, see `usim_cache`) in front of the engine: hot pairs are served
//! without re-sampling, answers stay bit-identical, and the `stats` frame
//! reports hit/miss/stale/eviction counters.  `0` (the default) disables
//! caching.
//!
//! `--coalesce-window µS` enables request coalescing: concurrent query
//! frames arriving within the window (from any connection) are dispatched
//! as one engine batch through the intra-batch-dedup path, up to
//! `--coalesce-max` requests per batch.  Answers stay byte-identical —
//! coalescing trades a bounded latency floor (the window) for throughput
//! under concurrency.  `0` (the default) disables coalescing; the `stats`
//! frame's `coalescer` object reports batches formed, mean occupancy, and
//! window- vs cap-flush counts either way.
//!
//! `--trace-sample-rate R` (0 < R ≤ 1) turns on per-request stage tracing:
//! every ⌈1/R⌉-th request gets a trace id and per-stage wall-clock timings
//! (parse → coalesce-wait → queue-wait → cache-lookup → shard-route →
//! walk-sample → merge → serialize), feeding the per-stage histograms in
//! the `stats` frame and a bounded slow-query log (`--slow-log N` keeps
//! the N slowest traced requests, served by the `slow_queries` frame).
//! Tracing never changes answers — instrumentation only reads clocks —
//! so responses stay byte-identical at any sample rate.  `0` (the
//! default) disables tracing entirely: no clock reads on the hot path.
//!
//! `--metrics-port P` binds a second plaintext HTTP listener (on the same
//! interface as `--addr`; `0` picks a free port) answering every request
//! with the Prometheus text exposition — the same body the `metrics`
//! frame returns.  `--metrics-port-file PATH` writes the exporter's bound
//! address, mirroring `--port-file`.  Either tracing or a metrics port
//! also enables the process-wide walk metrics (walks, steps, meetings,
//! overlay row reads, …).
//!
//! Because serving blocks, the startup banner is printed (and flushed)
//! directly to stdout when the listener is ready, not returned like other
//! commands' output; the returned string is the final serving summary.

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, CONFIG_OPTIONS};
use crate::graphio::load_graph;
use crate::CliError;
use std::io::Write;
use ugraph::snapshot::read_snapshot_file;
use ugraph::{CsrGraph, UpdateLog};
use usim_core::{ShardSpec, ShardedQueryEngine};
use usim_server::{
    CoalesceOptions, MetricsExporter, RequestHandler, Server, ServerOptions, DEFAULT_MAX_BATCH,
};

const BASE_OPTIONS: &[&str] = &[
    "addr",
    "workers",
    "queue",
    "max-batch",
    "max-connections",
    "port-file",
    "cache-capacity",
    "format",
    "snapshot",
    "update-log",
    "shards",
    "shard-threads",
    "coalesce-window",
    "coalesce-max",
    "trace-sample-rate",
    "slow-log",
    "metrics-port",
    "metrics-port-file",
];

fn spec() -> ArgSpec<'static> {
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &[],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let config = config_from_args(&args)?;
    let addr: String = args.option("addr").unwrap_or("127.0.0.1:7878").to_string();
    let workers: usize = args.parse_option("workers", 4usize)?;
    let queue_depth: usize = args.parse_option("queue", 64usize)?;
    let max_batch: usize = args.parse_option("max-batch", DEFAULT_MAX_BATCH)?;
    let max_connections: usize = args.parse_option("max-connections", 0usize)?;
    let cache_capacity: usize = args.parse_option("cache-capacity", 0usize)?;
    let shards: usize = args.parse_option("shards", 1usize)?;
    let shard_threads: usize = args.parse_option("shard-threads", 0usize)?;
    let coalesce_window: u64 = args.parse_option("coalesce-window", 0u64)?;
    let coalesce_max: usize = args.parse_option("coalesce-max", 16usize)?;
    let trace_sample_rate: f64 = args.parse_option("trace-sample-rate", 0.0f64)?;
    let slow_log: usize = args.parse_option("slow-log", 32usize)?;
    let metrics_port: Option<u16> = match args.option("metrics-port") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::new(format!("--metrics-port: invalid port '{raw}'")))?,
        ),
        None => None,
    };
    if !(0.0..=1.0).contains(&trace_sample_rate) {
        return Err(CliError::new("--trace-sample-rate must be in [0, 1]"));
    }
    if workers == 0 {
        return Err(CliError::new("--workers must be at least 1"));
    }
    if max_batch == 0 {
        return Err(CliError::new("--max-batch must be at least 1"));
    }
    if shards == 0 {
        return Err(CliError::new("--shards must be at least 1"));
    }
    if coalesce_max == 0 {
        return Err(CliError::new("--coalesce-max must be at least 1"));
    }

    // Graph source: a compiled snapshot (O(bytes) boot, labels included) or
    // a graph file parsed and CSR-compiled here (O(edges) boot).
    let spec = ShardSpec {
        shards,
        threads_per_shard: shard_threads,
        cache_capacity,
    };
    let (source, path, engine, labels) = match args.option("snapshot") {
        Some(snapshot_path) => {
            if args.positional(0).is_some() {
                return Err(CliError::new(
                    "give either a graph file or --snapshot, not both",
                ));
            }
            let snapshot = read_snapshot_file(snapshot_path)
                .map_err(|e| CliError::new(format!("{snapshot_path}: {e}")))?;
            let labels = snapshot.labels_or_identity();
            let engine = ShardedQueryEngine::from_csr(snapshot.graph, config, spec);
            ("snapshot", snapshot_path.to_string(), engine, labels)
        }
        None => {
            let path = args.require_positional(0, "the graph file (or --snapshot)")?;
            let loaded = load_graph(path, args.option("format"))?;
            let csr = CsrGraph::from_uncertain(&loaded.graph);
            let engine = ShardedQueryEngine::from_csr(csr, config, spec);
            ("text", path.to_string(), engine, loaded.labels)
        }
    };

    // Durable update log: replay whatever is already there (epoch catch-up
    // after a crash or restart), then append every new accepted batch.
    let mut handler = RequestHandler::sharded(engine, labels, max_batch);
    if coalesce_window > 0 {
        handler = handler.with_coalescing(CoalesceOptions {
            window: std::time::Duration::from_micros(coalesce_window),
            cap: coalesce_max,
        });
    }
    if trace_sample_rate > 0.0 {
        handler = handler.with_tracing(trace_sample_rate, slow_log);
    }
    if trace_sample_rate > 0.0 || metrics_port.is_some() {
        handler = handler.with_walk_metrics();
    }
    let mut replayed = 0u64;
    if let Some(log_path) = args.option("update-log") {
        let (log, rounds) =
            UpdateLog::open(log_path).map_err(|e| CliError::new(format!("{log_path}: {e}")))?;
        for (index, round) in rounds.iter().enumerate() {
            handler.sharded_engine().apply_updates(round).map_err(|e| {
                CliError::new(format!(
                    "{log_path}: round {index} does not apply to this graph \
                     (wrong graph for this log?): {e}"
                ))
            })?;
        }
        replayed = rounds.len() as u64;
        handler = handler.with_update_log(log);
    }
    let (num_vertices, num_arcs) = {
        let engine = handler.sharded_engine();
        (engine.num_vertices(), engine.num_arcs())
    };
    let options = ServerOptions {
        workers,
        queue_depth,
        max_connections: (max_connections > 0).then_some(max_connections),
    };
    let server = Server::bind(&addr, handler, options)
        .map_err(|e| CliError::new(format!("cannot bind {addr}: {e}")))?;
    let bound = server.local_addr();

    // The metrics exporter shares the query listener's interface; port 0
    // picks a free one, published through --metrics-port-file.
    let exporter = match metrics_port {
        Some(port) => {
            let metrics_addr = format!("{}:{}", bound.ip(), port);
            let exporter = MetricsExporter::bind(&metrics_addr, server.handler())
                .map_err(|e| CliError::new(format!("cannot bind metrics {metrics_addr}: {e}")))?;
            if let Some(path) = args.option("metrics-port-file") {
                std::fs::write(path, format!("{}\n", exporter.local_addr())).map_err(|e| {
                    CliError::new(format!("cannot write metrics port file {path}: {e}"))
                })?;
            }
            Some(exporter.spawn())
        }
        None => None,
    };

    if let Some(port_file) = args.option("port-file") {
        std::fs::write(port_file, format!("{bound}\n"))
            .map_err(|e| CliError::new(format!("cannot write port file {port_file}: {e}")))?;
    }
    println!(
        "serving {path} on {bound}: {num_vertices} vertices, {num_arcs} arcs \
         (source = {source}, epoch = {replayed}, shards = {shards}, \
         workers = {workers}, queue = {queue_depth}, max batch = {max_batch}, \
         cache = {}, coalesce = {}, trace = {}, metrics = {}, \
         sampler = {}, N = {}, n = {}, seed = {})",
        if cache_capacity > 0 {
            format!("{cache_capacity} entries/shard")
        } else {
            "off".to_string()
        },
        if coalesce_window > 0 {
            format!("{coalesce_window}us/cap {coalesce_max}")
        } else {
            "off".to_string()
        },
        if trace_sample_rate > 0.0 {
            format!("{trace_sample_rate}/slow {slow_log}")
        } else {
            "off".to_string()
        },
        match &exporter {
            Some(running) => running.addr().to_string(),
            None => "off".to_string(),
        },
        config.sampler,
        config.num_samples,
        config.horizon,
        config.seed,
    );
    let _ = std::io::stdout().flush();

    let stats = server
        .run()
        .map_err(|e| CliError::new(format!("server error: {e}")))?;
    if let Some(running) = exporter {
        running.shutdown();
    }
    // Clean shutdown: the rendezvous files must not outlive the server they
    // point at (a stale file would send the next script to a dead — or
    // worse, someone else's — port).
    if let Some(port_file) = args.option("port-file") {
        let _ = std::fs::remove_file(port_file);
    }
    if let Some(path) = args.option("metrics-port-file") {
        let _ = std::fs::remove_file(path);
    }
    Ok(format!(
        "served {} connections, {} frames ({} errors)\n",
        stats.connections, stats.frames, stats.errors
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "usim_cli_serve_{}_{}_{:?}",
            name,
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_bad_options_before_binding() {
        let graph_path = temp("g.tsv");
        std::fs::write(&graph_path, "0 1 0.5\n").unwrap();
        let g = graph_path.to_str().unwrap();
        assert!(run(&tokens(&[])).is_err());
        let err = run(&tokens(&[g, "--workers", "0"])).unwrap_err();
        assert!(err.to_string().contains("--workers"), "{err}");
        let err = run(&tokens(&[g, "--max-batch", "0"])).unwrap_err();
        assert!(err.to_string().contains("--max-batch"), "{err}");
        let err = run(&tokens(&[g, "--coalesce-max", "0"])).unwrap_err();
        assert!(err.to_string().contains("--coalesce-max"), "{err}");
        let err = run(&tokens(&[g, "--addr", "999.999.999.999:1"])).unwrap_err();
        assert!(err.to_string().contains("cannot bind"), "{err}");
        std::fs::remove_file(&graph_path).unwrap();
    }

    #[test]
    fn serves_until_the_connection_budget_is_spent() {
        use std::io::{BufRead, BufReader, Write};

        let graph_path = temp("budget.tsv");
        std::fs::write(&graph_path, "0 2 0.8\n1 2 0.9\n2 0 0.7\n").unwrap();
        let port_file = temp("budget.port");
        let port_file_str = port_file.to_str().unwrap().to_string();
        let graph_str = graph_path.to_str().unwrap().to_string();
        let runner = std::thread::spawn(move || {
            run(&tokens(&[
                &graph_str,
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
                "--workers",
                "2",
                "--max-connections",
                "1",
                "--samples",
                "50",
            ]))
        });
        // Rendezvous through the port file.
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.trim().contains(':') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        writeln!(conn, r#"{{"type":"stats"}}"#).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"vertices\":3"), "{line}");
        drop((conn, reader));

        let summary = runner.join().unwrap().unwrap();
        assert!(summary.contains("served 1 connections"), "{summary}");
        assert!(
            !port_file.exists(),
            "clean shutdown must remove the port file"
        );
        std::fs::remove_file(&graph_path).unwrap();
    }

    #[test]
    fn snapshot_boot_with_replay_serves_identical_answers_sharded() {
        use std::io::{BufRead, BufReader, Write};

        // Text graph -> snapshot; serve the snapshot with an update log and
        // 3 shards, apply an update, "crash", restart, and check the
        // restarted server replays to the same epoch and serves the same
        // bytes as the first life did after its update.
        let graph_path = temp("snap.tsv");
        std::fs::write(
            &graph_path,
            "10 20 0.8\n10 30 0.5\n20 10 0.8\n20 30 0.9\n30 10 0.7\n30 40 0.6\n40 20 0.8\n",
        )
        .unwrap();
        let snap_path = temp("snap.csr");
        let log_path = temp("snap.ulog");
        let _ = std::fs::remove_file(&log_path);
        crate::run(&tokens(&[
            "snapshot",
            "write",
            graph_path.to_str().unwrap(),
            snap_path.to_str().unwrap(),
        ]))
        .unwrap();

        let serve_once = |tag: &str| -> (String, Vec<String>) {
            let port_file = temp(&format!("snap.{tag}.port"));
            let snap = snap_path.to_str().unwrap().to_string();
            let log = log_path.to_str().unwrap().to_string();
            let pf = port_file.to_str().unwrap().to_string();
            let runner = std::thread::spawn(move || {
                run(&tokens(&[
                    "--snapshot",
                    &snap,
                    "--update-log",
                    &log,
                    "--shards",
                    "3",
                    "--addr",
                    "127.0.0.1:0",
                    "--port-file",
                    &pf,
                    "--max-connections",
                    "1",
                    "--samples",
                    "60",
                ]))
            });
            let addr = loop {
                if let Ok(text) = std::fs::read_to_string(&port_file) {
                    if text.trim().contains(':') {
                        break text.trim().to_string();
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            };
            let mut conn = std::net::TcpStream::connect(&addr).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut ask = |frame: &str| {
                writeln!(conn, "{frame}").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line
            };
            let mut answers = Vec::new();
            if tag == "first" {
                // Round 1: one accepted update batch, logged durably.
                let update = ask(
                    r#"{"type":"update","updates":[{"op":"set","source":10,"target":20,"probability":0.05}]}"#,
                );
                assert!(update.contains("\"epoch\":1"), "{update}");
            }
            answers.push(ask(r#"{"type":"similarity","source":10,"target":20}"#));
            answers.push(ask(r#"{"type":"batch","pairs":[[10,40],[20,30],[30,10]]}"#));
            answers.push(ask(r#"{"type":"top_k","source":20,"k":3}"#));
            let stats = ask(r#"{"type":"stats"}"#);
            drop((conn, reader));
            runner.join().unwrap().unwrap();
            (stats, answers)
        };

        let (stats_first, answers_first) = serve_once("first");
        assert!(stats_first.contains("\"epoch\":1"), "{stats_first}");
        assert!(stats_first.contains("\"shard_count\":3"), "{stats_first}");
        // Second life: same snapshot, log now holds round 1 -> replayed.
        let (stats_second, answers_second) = serve_once("second");
        assert!(stats_second.contains("\"epoch\":1"), "{stats_second}");
        assert_eq!(
            answers_first, answers_second,
            "a replayed restart must serve byte-identical answers"
        );

        std::fs::remove_file(&graph_path).unwrap();
        std::fs::remove_file(&snap_path).unwrap();
        std::fs::remove_file(&log_path).unwrap();
    }

    #[test]
    fn cached_serve_round_trips_hot_pairs() {
        use std::io::{BufRead, BufReader, Write};

        let graph_path = temp("cached.tsv");
        std::fs::write(&graph_path, "0 2 0.8\n1 2 0.9\n2 0 0.7\n").unwrap();
        let port_file = temp("cached.port");
        let port_file_str = port_file.to_str().unwrap().to_string();
        let graph_str = graph_path.to_str().unwrap().to_string();
        let runner = std::thread::spawn(move || {
            run(&tokens(&[
                &graph_str,
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
                "--max-connections",
                "1",
                "--cache-capacity",
                "128",
                "--samples",
                "50",
            ]))
        });
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.trim().contains(':') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut ask = |frame: &str| {
            writeln!(conn, "{frame}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        // Same batch twice: the repeat is served from the cache and must be
        // byte-identical on the wire.
        let first = ask(r#"{"type":"batch","pairs":[[0,1],[1,2]]}"#);
        let second = ask(r#"{"type":"batch","pairs":[[0,1],[1,2]]}"#);
        assert_eq!(first, second);
        let stats = ask(r#"{"type":"stats"}"#);
        assert!(stats.contains("\"enabled\":true"), "{stats}");
        assert!(stats.contains("\"hits\":2"), "{stats}");
        drop((conn, reader));
        runner.join().unwrap().unwrap();
        std::fs::remove_file(&graph_path).unwrap();
    }

    #[test]
    fn traced_serve_exposes_stages_exporter_and_stats_view() {
        use std::io::{BufRead, BufReader, Read, Write};

        let graph_path = temp("traced.tsv");
        std::fs::write(&graph_path, "0 2 0.8\n1 2 0.9\n2 0 0.7\n").unwrap();
        let port_file = temp("traced.port");
        let metrics_port_file = temp("traced.mport");
        let port_file_str = port_file.to_str().unwrap().to_string();
        let metrics_port_file_str = metrics_port_file.to_str().unwrap().to_string();
        let graph_str = graph_path.to_str().unwrap().to_string();
        let runner = std::thread::spawn(move || {
            run(&tokens(&[
                &graph_str,
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
                "--max-connections",
                "2",
                "--trace-sample-rate",
                "1",
                "--slow-log",
                "8",
                "--metrics-port",
                "0",
                "--metrics-port-file",
                &metrics_port_file_str,
                "--samples",
                "50",
            ]))
        });
        let wait_for = |path: &std::path::Path| loop {
            if let Ok(text) = std::fs::read_to_string(path) {
                if text.trim().contains(':') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let addr = wait_for(&port_file);
        let metrics_addr = wait_for(&metrics_port_file);

        // Connection 1: traced query traffic.
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut ask = |frame: &str| {
            writeln!(conn, "{frame}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        let first = ask(r#"{"type":"similarity","source":0,"target":1}"#);
        let _ = ask(r#"{"type":"batch","pairs":[[0,1],[1,2]]}"#);
        assert!(first.contains("\"score\""), "{first}");
        drop((conn, reader));

        // The exporter answers plain HTTP scrapes with the exposition.
        let mut scrape = std::net::TcpStream::connect(&metrics_addr).unwrap();
        scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut exposition = String::new();
        scrape.read_to_string(&mut exposition).unwrap();
        assert!(
            exposition.contains("usim_requests_total{kind=\"similarity\"} 1"),
            "{exposition}"
        );
        assert!(exposition.contains("usim_walks_total"), "{exposition}");
        assert!(
            exposition.contains("usim_stage_duration_seconds_bucket{stage=\"walk_sample\""),
            "{exposition}"
        );

        // Connection 2: the `usim stats --server` live view.
        let view = crate::run(&tokens(&["stats", "--server", &addr])).unwrap();
        assert!(view.contains("epoch 0, 3 vertices"), "{view}");
        assert!(view.contains("tracing: every 1th request"), "{view}");
        assert!(view.contains("walk_sample"), "{view}");
        assert!(view.contains("slowest traced requests:"), "{view}");

        runner.join().unwrap().unwrap();
        assert!(
            !metrics_port_file.exists(),
            "metrics port file must be removed"
        );
        std::fs::remove_file(&graph_path).unwrap();
    }

    #[test]
    fn coalesced_serve_round_trips_and_reports_batches() {
        use std::io::{BufRead, BufReader, Write};

        let graph_path = temp("coalesce.tsv");
        std::fs::write(&graph_path, "0 2 0.8\n1 2 0.9\n2 0 0.7\n").unwrap();
        let port_file = temp("coalesce.port");
        let port_file_str = port_file.to_str().unwrap().to_string();
        let graph_str = graph_path.to_str().unwrap().to_string();
        let runner = std::thread::spawn(move || {
            run(&tokens(&[
                &graph_str,
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
                "--max-connections",
                "1",
                "--coalesce-window",
                "300",
                "--coalesce-max",
                "4",
                "--samples",
                "50",
            ]))
        });
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.trim().contains(':') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut ask = |frame: &str| {
            writeln!(conn, "{frame}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        // Coalesced answers remain byte-identical across repeats, and the
        // stats frame shows the coalescer at work plus the latency section.
        let first = ask(r#"{"type":"batch","pairs":[[0,1],[1,2]]}"#);
        let second = ask(r#"{"type":"batch","pairs":[[0,1],[1,2]]}"#);
        assert_eq!(first, second);
        let stats = ask(r#"{"type":"stats"}"#);
        assert!(
            stats.contains("\"coalescer\":{\"enabled\":true,\"window_us\":300,\"cap\":4"),
            "{stats}"
        );
        assert!(stats.contains("\"batches\":2"), "{stats}");
        assert!(stats.contains("\"latency\":{\"count\":2"), "{stats}");
        drop((conn, reader));
        runner.join().unwrap().unwrap();
        std::fs::remove_file(&graph_path).unwrap();
    }
}
