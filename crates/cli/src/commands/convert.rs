//! `usim convert` — convert a graph between the text and binary formats.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::{load_graph, save_graph};
use crate::CliError;

const SPEC: ArgSpec<'_> = ArgSpec {
    options: &["in-format", "out-format"],
    switches: &[],
};

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &SPEC)?;
    let input = args.require_positional(0, "the input graph file")?;
    let output = args.require_positional(1, "the output graph file")?;
    let loaded = load_graph(input, args.option("in-format"))?;
    let format = save_graph(&loaded.graph, output, args.option("out-format"))?;
    Ok(format!(
        "converted {input} -> {output} ({:?}, {} vertices, {} arcs)\n",
        format,
        loaded.graph.num_vertices(),
        loaded.graph.num_arcs(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("usim_cli_convert_{}_{name}", std::process::id()))
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn text_to_binary_and_back_preserves_the_graph() {
        let text_in = temp("in.tsv");
        let binary = temp("mid.bin");
        let text_out = temp("out.tsv");
        std::fs::write(&text_in, "0 1 0.5\n1 2 0.75\n2 0 0.9\n").unwrap();

        let summary = run(&tokens(&[
            text_in.to_str().unwrap(),
            binary.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(summary.contains("Binary"));
        run(&tokens(&[
            binary.to_str().unwrap(),
            text_out.to_str().unwrap(),
        ]))
        .unwrap();

        let original = load_graph(text_in.to_str().unwrap(), None).unwrap();
        let roundtripped = load_graph(text_out.to_str().unwrap(), None).unwrap();
        assert_eq!(original.graph.num_arcs(), roundtripped.graph.num_arcs());
        for path in [&text_in, &binary, &text_out] {
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn missing_arguments_are_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&tokens(&["only_one_file.tsv"])).is_err());
    }
}
