//! `usim snapshot` — write and verify compiled CSR snapshots.
//!
//! ```text
//! usim snapshot write GRAPH OUT [--format text|binary]
//! usim snapshot verify PATH
//! ```
//!
//! `write` loads a graph (text or binary, like every other subcommand),
//! compiles it into the CSR form the query engine runs on, and serialises
//! the result — **with** the file's label table — in the checksummed
//! `USIMCSR1` format of [`ugraph::snapshot`].  `usim serve --snapshot`
//! boots from that file without re-parsing, re-sorting or re-validating a
//! single edge, which is what makes restart latency independent of graph
//! text size (the `cold_start` bench gates the speedup).
//!
//! `verify` reads a snapshot back, re-checking the header arithmetic, the
//! offset monotonicity and the trailing checksum, and reports its shape —
//! the preflight a deploy runs before pointing a server at the file.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::load_graph;
use crate::CliError;
use ugraph::snapshot::{read_snapshot_file, write_snapshot_file};
use ugraph::CsrGraph;

fn spec() -> ArgSpec<'static> {
    ArgSpec {
        options: &["format"],
        switches: &[],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    match args.require_positional(0, "the snapshot action (\"write\" or \"verify\")")? {
        "write" => write(&args),
        "verify" => verify(&args),
        other => Err(CliError::new(format!(
            "unknown snapshot action {other:?}; expected \"write\" or \"verify\""
        ))),
    }
}

fn write(args: &Arguments) -> Result<String, CliError> {
    let input = args.require_positional(1, "the graph file")?;
    let output = args.require_positional(2, "the snapshot output path")?;
    let loaded = load_graph(input, args.option("format"))?;
    let csr = CsrGraph::from_uncertain(&loaded.graph);
    write_snapshot_file(&csr, &loaded.labels, output)
        .map_err(|e| CliError::new(format!("{output}: {e}")))?;
    Ok(format!(
        "wrote snapshot {output}: {} vertices, {} arcs, {} labels\n",
        csr.num_vertices(),
        csr.num_arcs(),
        loaded.labels.len(),
    ))
}

fn verify(args: &Arguments) -> Result<String, CliError> {
    let path = args.require_positional(1, "the snapshot file")?;
    let snapshot = read_snapshot_file(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    Ok(format!(
        "snapshot {path} OK: {} vertices, {} arcs, labels {}\n",
        snapshot.graph.num_vertices(),
        snapshot.graph.num_arcs(),
        if snapshot.labels.is_empty() {
            "identity".to_string()
        } else {
            format!("{} stored", snapshot.labels.len())
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "usim_cli_snapshot_{}_{:?}_{name}",
            std::process::id(),
            std::thread::current().id(),
        ))
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn write_then_verify_round_trips() {
        let graph_path = temp("g.tsv");
        std::fs::write(&graph_path, "10 20 0.5\n20 30 0.75\n30 10 1.0\n").unwrap();
        let snap_path = temp("g.csr");
        let out = run(&tokens(&[
            "write",
            graph_path.to_str().unwrap(),
            snap_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("3 vertices, 3 arcs, 3 labels"), "{out}");
        let out = run(&tokens(&["verify", snap_path.to_str().unwrap()])).unwrap();
        assert!(out.contains("OK: 3 vertices, 3 arcs"), "{out}");
        assert!(out.contains("3 stored"), "{out}");

        // The stored snapshot carries the original wire labels.
        let snapshot = read_snapshot_file(&snap_path).unwrap();
        assert_eq!(snapshot.labels, vec![10, 20, 30]);

        std::fs::remove_file(&graph_path).unwrap();
        std::fs::remove_file(&snap_path).unwrap();
    }

    #[test]
    fn verify_rejects_corruption_with_a_clean_error() {
        let graph_path = temp("c.tsv");
        std::fs::write(&graph_path, "0 1 0.5\n1 2 0.9\n").unwrap();
        let snap_path = temp("c.csr");
        run(&tokens(&[
            "write",
            graph_path.to_str().unwrap(),
            snap_path.to_str().unwrap(),
        ]))
        .unwrap();
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap_path, &bytes).unwrap();
        let err = run(&tokens(&["verify", snap_path.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains(snap_path.to_str().unwrap()));
        std::fs::remove_file(&graph_path).unwrap();
        std::fs::remove_file(&snap_path).unwrap();
    }

    #[test]
    fn bad_actions_and_missing_arguments_are_clean_errors() {
        assert!(run(&tokens(&[])).is_err());
        let err = run(&tokens(&["freeze", "a", "b"])).unwrap_err();
        assert!(err.to_string().contains("freeze"), "{err}");
        let err = run(&tokens(&["write", "only-input"])).unwrap_err();
        assert!(err.to_string().contains("output"), "{err}");
    }
}
