//! `usim stats` — topology and probability statistics of a graph file.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::load_graph;
use crate::table::TextTable;
use crate::CliError;
use ugraph::stats::uncertain_graph_stats;

const SPEC: ArgSpec<'_> = ArgSpec {
    options: &["format"],
    switches: &[],
};

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &SPEC)?;
    let path = args.require_positional(0, "the graph file")?;
    let loaded = load_graph(path, args.option("format"))?;
    let stats = uncertain_graph_stats(&loaded.graph);

    let mut table = TextTable::new(&["statistic", "value"]);
    let mut push = |name: &str, value: String| {
        table.row(vec![name.to_string(), value]);
    };
    push("vertices", stats.topology.num_vertices.to_string());
    push("arcs", stats.topology.num_arcs.to_string());
    push(
        "average out-degree",
        format!("{:.3}", stats.topology.average_out_degree),
    );
    push("max out-degree", stats.topology.max_out_degree.to_string());
    push("max in-degree", stats.topology.max_in_degree.to_string());
    push(
        "sink vertices (no out-arcs)",
        stats.topology.num_sinks.to_string(),
    );
    push(
        "source vertices (no in-arcs)",
        stats.topology.num_sources.to_string(),
    );
    push(
        "mean arc probability",
        format!("{:.4}", stats.mean_probability),
    );
    push(
        "min arc probability",
        format!("{:.4}", stats.min_probability),
    );
    push(
        "max arc probability",
        format!("{:.4}", stats.max_probability),
    );
    push(
        "expected arcs Σ P(e)",
        format!("{:.1}", stats.expected_num_arcs),
    );

    let mut output = format!("{path}\n\n");
    output.push_str(&table.render());
    output.push_str("\narc probability histogram (10 equal-width buckets over (0, 1]):\n");
    let max_count = stats
        .probability_histogram
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    for (bucket, &count) in stats.probability_histogram.iter().enumerate() {
        let low = bucket as f64 / 10.0;
        let high = low + 0.1;
        let bar_width = if max_count == 0 {
            0
        } else {
            (count * 40).div_ceil(max_count)
        };
        output.push_str(&format!(
            "  ({low:.1}, {high:.1}]  {count:>8}  {}\n",
            "#".repeat(bar_width)
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("usim_cli_stats_{}_{name}", std::process::id()))
    }

    #[test]
    fn reports_counts_and_histogram() {
        let path = temp_file("g.tsv");
        std::fs::write(&path, "0 1 0.25\n1 2 0.75\n2 0 1.0\n2 1 0.95\n").unwrap();
        let output = run(&[path.to_str().unwrap().to_string()]).unwrap();
        assert!(output.contains("vertices"));
        assert!(output.contains('3'));
        assert!(output.contains("histogram"));
        assert!(output.contains('#'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_argument_is_an_error() {
        let err = run(&[]).unwrap_err();
        assert!(err.to_string().contains("graph file"));
    }
}
