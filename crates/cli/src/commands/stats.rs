//! `usim stats` — graph-file statistics, or a live view of a running server.
//!
//! ```text
//! usim stats GRAPH [--format text|binary]
//! usim stats --server HOST:PORT [--watch SECS] [--iterations N]
//! ```
//!
//! The file mode reports topology and probability statistics of a graph
//! file.  The server mode connects to a running `usim serve` instance,
//! drives one `stats` + `slow_queries` frame round-trip over the wire
//! protocol, and renders the counters as text: serving totals, latency
//! quantiles, cache/coalescer counters, per-stage trace histograms and the
//! slow-query log (the latter two populated when the server runs with
//! `--trace-sample-rate`).  `--watch SECS` repeats the round-trip every
//! SECS seconds — forever, or `--iterations N` times.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::load_graph;
use crate::table::TextTable;
use crate::CliError;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use ugraph::stats::uncertain_graph_stats;

const SPEC: ArgSpec<'_> = ArgSpec {
    options: &["format", "server", "watch", "iterations"],
    switches: &[],
};

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &SPEC)?;
    if let Some(addr) = args.option("server") {
        if args.positional(0).is_some() {
            return Err(CliError::new(
                "give either a graph file or --server, not both",
            ));
        }
        let watch_secs: u64 = args.parse_option("watch", 0u64)?;
        let iterations: u64 = args.parse_option("iterations", 1u64)?;
        return run_server_view(addr, watch_secs, iterations);
    }
    if args.option("watch").is_some() || args.option("iterations").is_some() {
        return Err(CliError::new("--watch/--iterations require --server"));
    }
    let path = args.require_positional(0, "the graph file (or --server)")?;
    let loaded = load_graph(path, args.option("format"))?;
    let stats = uncertain_graph_stats(&loaded.graph);

    let mut table = TextTable::new(&["statistic", "value"]);
    let mut push = |name: &str, value: String| {
        table.row(vec![name.to_string(), value]);
    };
    push("vertices", stats.topology.num_vertices.to_string());
    push("arcs", stats.topology.num_arcs.to_string());
    push(
        "average out-degree",
        format!("{:.3}", stats.topology.average_out_degree),
    );
    push("max out-degree", stats.topology.max_out_degree.to_string());
    push("max in-degree", stats.topology.max_in_degree.to_string());
    push(
        "sink vertices (no out-arcs)",
        stats.topology.num_sinks.to_string(),
    );
    push(
        "source vertices (no in-arcs)",
        stats.topology.num_sources.to_string(),
    );
    push(
        "mean arc probability",
        format!("{:.4}", stats.mean_probability),
    );
    push(
        "min arc probability",
        format!("{:.4}", stats.min_probability),
    );
    push(
        "max arc probability",
        format!("{:.4}", stats.max_probability),
    );
    push(
        "expected arcs Σ P(e)",
        format!("{:.1}", stats.expected_num_arcs),
    );

    let mut output = format!("{path}\n\n");
    output.push_str(&table.render());
    output.push_str("\narc probability histogram (10 equal-width buckets over (0, 1]):\n");
    let max_count = stats
        .probability_histogram
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    for (bucket, &count) in stats.probability_histogram.iter().enumerate() {
        let low = bucket as f64 / 10.0;
        let high = low + 0.1;
        let bar_width = if max_count == 0 {
            0
        } else {
            (count * 40).div_ceil(max_count)
        };
        output.push_str(&format!(
            "  ({low:.1}, {high:.1}]  {count:>8}  {}\n",
            "#".repeat(bar_width)
        ));
    }
    Ok(output)
}

/// One `stats` + `slow_queries` round-trip per iteration, rendered as text.
///
/// `iterations == 0` (only reachable with `--watch`) repeats forever; the
/// intermediate views are printed (and flushed) directly, and the final
/// view is returned as the command output like any other subcommand.
fn run_server_view(addr: &str, watch_secs: u64, iterations: u64) -> Result<String, CliError> {
    if iterations == 0 && watch_secs == 0 {
        return Err(CliError::new("--iterations 0 (forever) requires --watch"));
    }
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::new(format!("cannot connect to {addr}: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::new(format!("{addr}: {e}")))?,
    );
    let mut writer = stream;
    let mut ask = |frame: &str| -> Result<Value, CliError> {
        writeln!(writer, "{frame}").map_err(|e| CliError::new(format!("{addr}: {e}")))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| CliError::new(format!("{addr}: {e}")))?;
        serde_json::from_str(&line)
            .map_err(|e| CliError::new(format!("{addr}: malformed response: {e}")))
    };

    let mut round = 0u64;
    loop {
        let stats = ask(r#"{"type":"stats"}"#)?;
        let slow = ask(r#"{"type":"slow_queries"}"#)?;
        let view = render_server_view(addr, &stats, &slow);
        round += 1;
        if iterations != 0 && round >= iterations {
            return Ok(view);
        }
        println!("{view}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_secs(watch_secs));
    }
}

/// Walks a `Value::Map` tree by key path.
fn lookup<'a>(value: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut current = value;
    for key in path {
        current = current
            .as_map()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))?;
    }
    Some(current)
}

/// The integer at `path`, or 0 (absent fields render as zeroed counters).
fn uint_at(value: &Value, path: &[&str]) -> u64 {
    match lookup(value, path) {
        Some(Value::Uint(n)) => *n,
        Some(Value::Int(n)) => u64::try_from(*n).unwrap_or(0),
        _ => 0,
    }
}

fn bool_at(value: &Value, path: &[&str]) -> bool {
    matches!(lookup(value, path), Some(Value::Bool(true)))
}

fn str_at<'a>(value: &'a Value, path: &[&str]) -> &'a str {
    lookup(value, path).and_then(Value::as_str).unwrap_or("?")
}

fn render_server_view(addr: &str, stats: &Value, slow: &Value) -> String {
    let mut out = format!(
        "{addr}: epoch {}, {} vertices, {} arcs, {} shards, sampler {}\n",
        uint_at(stats, &["epoch"]),
        uint_at(stats, &["vertices"]),
        uint_at(stats, &["arcs"]),
        uint_at(stats, &["shard_count"]),
        str_at(stats, &["sampler"]),
    );

    out.push_str(&format!(
        "\nlatency: {} requests, p50 <= {}us, p90 <= {}us, p99 <= {}us\n",
        uint_at(stats, &["latency", "count"]),
        uint_at(stats, &["latency", "p50_us"]),
        uint_at(stats, &["latency", "p90_us"]),
        uint_at(stats, &["latency", "p99_us"]),
    ));
    if let Some(requests) = lookup(stats, &["latency", "requests"]).and_then(Value::as_map) {
        let counts: Vec<String> = requests
            .iter()
            .filter(|(_, v)| !matches!(v, Value::Uint(0)))
            .map(|(kind, count)| format!("{kind} {}", uint_at(count, &[])))
            .collect();
        if !counts.is_empty() {
            out.push_str(&format!("requests: {}\n", counts.join(", ")));
        }
    }

    if bool_at(stats, &["cache", "enabled"]) {
        out.push_str(&format!(
            "cache: {} entries (capacity {}), {} hits, {} misses, {} stale, {} evictions\n",
            uint_at(stats, &["cache", "entries"]),
            uint_at(stats, &["cache", "capacity"]),
            uint_at(stats, &["cache", "hits"]),
            uint_at(stats, &["cache", "misses"]),
            uint_at(stats, &["cache", "stale"]),
            uint_at(stats, &["cache", "evictions"]),
        ));
    }
    if bool_at(stats, &["coalescer", "enabled"]) {
        out.push_str(&format!(
            "coalescer: {} requests in {} batches ({} window / {} cap flushes)\n",
            uint_at(stats, &["coalescer", "requests"]),
            uint_at(stats, &["coalescer", "batches"]),
            uint_at(stats, &["coalescer", "window_flushes"]),
            uint_at(stats, &["coalescer", "cap_flushes"]),
        ));
    }

    if bool_at(stats, &["walks", "enabled"]) {
        out.push_str(&format!(
            "walks: {} walks, {} steps ({} alias), {} deaths, {} meetings, \
             {} patched / {} base row reads\n",
            uint_at(stats, &["walks", "walks"]),
            uint_at(stats, &["walks", "steps_legacy"]) + uint_at(stats, &["walks", "steps_alias"]),
            uint_at(stats, &["walks", "steps_alias"]),
            uint_at(stats, &["walks", "deaths"]),
            uint_at(stats, &["walks", "meetings"]),
            uint_at(stats, &["walks", "rows_patched"]),
            uint_at(stats, &["walks", "rows_base"]),
        ));
    }

    if bool_at(stats, &["tracing", "enabled"]) {
        out.push_str(&format!(
            "\ntracing: every {}th request, {} traced\n",
            uint_at(stats, &["tracing", "sample_every"]),
            uint_at(stats, &["tracing", "traced"]),
        ));
        if let Some(stages) = lookup(stats, &["tracing", "stages"]).and_then(Value::as_seq) {
            let mut table = TextTable::new(&["stage", "count", "p50 (us)", "p99 (us)"]);
            for stage in stages {
                if uint_at(stage, &["count"]) == 0 {
                    continue;
                }
                table.row(vec![
                    str_at(stage, &["stage"]).to_string(),
                    uint_at(stage, &["count"]).to_string(),
                    uint_at(stage, &["p50_us"]).to_string(),
                    uint_at(stage, &["p99_us"]).to_string(),
                ]);
            }
            out.push_str(&table.render());
        }
        if let Some(entries) = lookup(slow, &["entries"]).and_then(Value::as_seq) {
            if !entries.is_empty() {
                out.push_str("\nslowest traced requests:\n");
                let mut table = TextTable::new(&["trace", "kind", "total (us)", "stages (us)"]);
                for entry in entries {
                    let stages = lookup(entry, &["stages_us"])
                        .and_then(Value::as_map)
                        .map(|stages| {
                            stages
                                .iter()
                                .filter(|(_, v)| !matches!(v, Value::Uint(0)))
                                .map(|(stage, us)| format!("{stage}={}", uint_at(us, &[])))
                                .collect::<Vec<_>>()
                                .join(" ")
                        })
                        .unwrap_or_default();
                    table.row(vec![
                        uint_at(entry, &["trace_id"]).to_string(),
                        str_at(entry, &["kind"]).to_string(),
                        uint_at(entry, &["total_us"]).to_string(),
                        stages,
                    ]);
                }
                out.push_str(&table.render());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("usim_cli_stats_{}_{name}", std::process::id()))
    }

    #[test]
    fn reports_counts_and_histogram() {
        let path = temp_file("g.tsv");
        std::fs::write(&path, "0 1 0.25\n1 2 0.75\n2 0 1.0\n2 1 0.95\n").unwrap();
        let output = run(&[path.to_str().unwrap().to_string()]).unwrap();
        assert!(output.contains("vertices"));
        assert!(output.contains('3'));
        assert!(output.contains("histogram"));
        assert!(output.contains('#'));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_argument_is_an_error() {
        let err = run(&[]).unwrap_err();
        assert!(err.to_string().contains("graph file"));
    }
}
