//! `usim simrank` — SimRank similarity of one vertex pair, or of a whole
//! batch of pairs.
//!
//! By default the two-phase (SR-TS) estimator answers the query; `--algorithm`
//! selects another family, and `--compare` runs every family (including the
//! uncertainty-blind SimRank-II and Du et al.'s SimRank-III baselines) and
//! prints a comparison table with per-algorithm timings.
//!
//! `--batch FILE` switches to the CSR batch engine
//! ([`usim_core::QueryEngine`]): the file lists one `source target` pair per
//! line (original file labels; blank lines and `#` comments are skipped),
//! all pairs are answered in one thread-sharded pass, and `--threads N` pins
//! the worker count (`--threads 0`, the default, uses the rayon default
//! pool).  Batch output is bit-identical at any thread count.
//!
//! `--batch FILE --updates UPDATES` is the interleaved *churn mode* for
//! dynamic graphs: the update file (format in [`crate::updates`]) is split
//! into rounds at `---` separators, and the whole pair batch is answered
//! before any update and again after each round — one engine, mutated in
//! place through [`usim_core::QueryEngine::apply_updates`], never rebuilt.
//!
//! `--cache-capacity N` (batch mode only) puts the same epoch-validated
//! result cache in front of the engine that `usim serve` uses: repeated
//! pairs within a round are served from the cache, update rounds invalidate
//! it by epoch, the score table is bit-identical either way, and a summary
//! line reports the hit/miss/stale/eviction counters.

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, AlgorithmKind, CONFIG_OPTIONS};
use crate::graphio::{load_graph, LoadedGraph};
use crate::table::{fmt_millis, fmt_score, TextTable};
use crate::updates::read_update_rounds;
use crate::CliError;
use std::time::Instant;
use ugraph::VertexId;
use usim_core::{CachedQueryEngine, SharedQueryEngine};

const BASE_OPTIONS: &[&str] = &[
    "source",
    "target",
    "algorithm",
    "format",
    "batch",
    "threads",
    "updates",
    "cache-capacity",
];

fn spec() -> ArgSpec<'static> {
    // The full option list is the union of the command's own options and the
    // shared SimRank configuration options.
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &["compare"],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let config = config_from_args(&args)?;

    if let Some(batch_path) = args.option("batch") {
        if let Some(algorithm) = args.option("algorithm") {
            return Err(CliError::new(format!(
                "--batch always uses the CSR batch engine (sampling algorithm); \
                 --algorithm {algorithm:?} cannot be combined with it"
            )));
        }
        let loaded = load_graph(path, args.option("format"))?;
        return run_batch(&args, path, batch_path, &loaded, config);
    }
    if args.option("updates").is_some() {
        return Err(CliError::new(
            "--updates requires --batch (churn mode interleaves update rounds \
             with batch queries); use `usim update` to mutate a graph file",
        ));
    }
    if args.option("cache-capacity").is_some() {
        return Err(CliError::new(
            "--cache-capacity requires --batch (the result cache fronts the \
             batch engine; single-pair queries sample once regardless)",
        ));
    }

    let source_label: u64 = args.require_option("source")?;
    let target_label: u64 = args.require_option("target")?;
    let loaded = load_graph(path, args.option("format"))?;
    let u = loaded.vertex_for_label(source_label)?;
    let v = loaded.vertex_for_label(target_label)?;

    if args.switch("compare") {
        let mut table = TextTable::new(&["algorithm", "s(u, v)", "time (ms)"]);
        for kind in AlgorithmKind::all() {
            let start = Instant::now();
            let mut estimator = kind.build(&loaded.graph, config);
            let score = estimator.similarity(u, v);
            table.row(vec![
                kind.display_name().to_string(),
                fmt_score(score),
                fmt_millis(start.elapsed()),
            ]);
        }
        let mut output = format!(
            "s({source_label}, {target_label}) on {path} (c = {}, n = {}, N = {})\n\n",
            config.decay, config.horizon, config.num_samples
        );
        output.push_str(&table.render());
        return Ok(output);
    }

    let kind = AlgorithmKind::parse(args.option("algorithm").unwrap_or("two-phase"))?;
    let start = Instant::now();
    let mut estimator = kind.build(&loaded.graph, config);
    let score = estimator.similarity(u, v);
    Ok(format!(
        "s({source_label}, {target_label}) = {} [{}; {} ms]\n",
        fmt_score(score),
        kind.display_name(),
        fmt_millis(start.elapsed()),
    ))
}

/// A parsed pairs file: the original file labels of every pair, and the
/// corresponding compacted vertex ids.
type ParsedPairs = (Vec<(u64, u64)>, Vec<(VertexId, VertexId)>);

/// Reads a pairs file: one `source target` pair of file labels per line;
/// blank lines and lines starting with `#` are skipped.  Every malformed
/// line — missing or extra fields, unparsable labels, labels that do not
/// appear in the graph — is a parse error carrying its 1-based line number.
fn read_pairs_file(batch_path: &str, loaded: &LoadedGraph) -> Result<ParsedPairs, CliError> {
    let text = std::fs::read_to_string(batch_path)
        .map_err(|e| CliError::new(format!("cannot read pairs file {batch_path}: {e}")))?;
    let mut labels = Vec::new();
    let mut pairs = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fail =
            |message: String| CliError::new(format!("{batch_path}:{}: {message}", number + 1));
        let fields: Vec<&str> = line.split_whitespace().collect();
        let &[a, b] = fields.as_slice() else {
            return Err(fail(format!(
                "expected \"source target\", got {} fields in {line:?}",
                fields.len()
            )));
        };
        let parse = |s: &str| -> Result<u64, CliError> {
            s.parse().map_err(|_| fail(format!("bad label {s:?}")))
        };
        let resolve = |label: u64| -> Result<VertexId, CliError> {
            loaded
                .vertex_for_label(label)
                .map_err(|_| fail(format!("vertex {label} does not appear in the graph")))
        };
        let (a, b) = (parse(a)?, parse(b)?);
        pairs.push((resolve(a)?, resolve(b)?));
        labels.push((a, b));
    }
    if pairs.is_empty() {
        return Err(CliError::new(format!(
            "pairs file {batch_path} contains no pairs"
        )));
    }
    Ok((labels, pairs))
}

/// Answers a whole pairs file with the CSR batch engine; with `--updates`
/// the batch is re-answered after every update round (churn mode).
fn run_batch(
    args: &Arguments,
    path: &str,
    batch_path: &str,
    loaded: &LoadedGraph,
    config: usim_core::SimRankConfig,
) -> Result<String, CliError> {
    let (labels, pairs) = read_pairs_file(batch_path, loaded)?;
    let threads: usize = args.parse_option("threads", 0usize)?;
    let cache_capacity: usize = args.parse_option("cache-capacity", 0usize)?;
    let rounds = match args.option("updates") {
        Some(updates_path) => read_update_rounds(updates_path, loaded)?,
        None => Vec::new(),
    };
    // One pool for the whole run; rounds must not re-spawn worker threads.
    let pool = crate::exec::build_thread_pool(threads)?;

    let start = Instant::now();
    // The same caching wrapper `usim serve` uses; capacity 0 (the default)
    // is a pass-through to the raw engine.
    let engine = CachedQueryEngine::new(
        SharedQueryEngine::new(&loaded.graph, config),
        cache_capacity,
    );
    let build_time = start.elapsed();

    // Round 0 answers the pristine graph; each update round appends one
    // more score column (same engine, mutated in place).  Query time is
    // accumulated around the batch calls only, so the reported ms/pair is
    // pure query latency even when rounds trigger compactions.
    let mut query_time = std::time::Duration::ZERO;
    let mut score_columns: Vec<Vec<f64>> = Vec::with_capacity(rounds.len() + 1);
    let mut round_notes: Vec<String> = Vec::new();
    let answer_batch = |engine: &CachedQueryEngine,
                        query_time: &mut std::time::Duration|
     -> Result<Vec<f64>, CliError> {
        let start = Instant::now();
        let (_, scores) =
            crate::exec::install_in(pool.as_ref(), || engine.batch_similarities(&pairs))
                .map_err(|e| CliError::new(format!("{batch_path}: {e}")))?;
        *query_time += start.elapsed();
        Ok(scores)
    };
    score_columns.push(answer_batch(&engine, &mut query_time)?);
    for (index, round) in rounds.iter().enumerate() {
        let (summary, _) = engine.apply_updates(round).map_err(|e| {
            CliError::new(format!(
                "update round {}: {}",
                index + 1,
                crate::updates::describe_update_error(&e, loaded)
            ))
        })?;
        round_notes.push(crate::updates::format_round_summary(index + 1, &summary));
        score_columns.push(answer_batch(&engine, &mut query_time)?);
    }

    let mut header: Vec<String> = vec!["source".into(), "target".into()];
    if rounds.is_empty() {
        header.push("s(u, v)".into());
    } else {
        header.extend((0..score_columns.len()).map(|r| format!("s@r{r}")));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for (row, &(a, b)) in labels.iter().enumerate() {
        let mut cells = vec![a.to_string(), b.to_string()];
        cells.extend(score_columns.iter().map(|column| fmt_score(column[row])));
        table.row(cells);
    }
    let total_queries = pairs.len() * score_columns.len();
    let per_pair = query_time.as_secs_f64() * 1000.0 / total_queries as f64;
    let mut output = format!(
        "{} pairs from {batch_path} on {path} \
         (N = {}, n = {}, threads = {}, CSR build {} ms, queries {} ms, {per_pair:.3} ms/pair{})\n",
        pairs.len(),
        config.num_samples,
        config.horizon,
        crate::exec::describe_threads(threads),
        fmt_millis(build_time),
        fmt_millis(query_time),
        if rounds.is_empty() {
            String::new()
        } else {
            format!(
                ", {} update rounds, final epoch {}",
                rounds.len(),
                engine.update_epoch()
            )
        },
    );
    for note in &round_notes {
        output.push_str(note);
        output.push('\n');
    }
    if let Some(stats) = engine.cache_stats() {
        output.push_str(&format!(
            "cache: capacity {}, {} hits, {} misses, {} stale, {} evictions, \
             {} survived, {} killed\n",
            engine.cache_capacity(),
            stats.hits,
            stats.misses,
            stats.stale,
            stats.evictions,
            stats.survived,
            stats.killed,
        ));
    }
    output.push('\n');
    output.push_str(&table.render());
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_simrank_{}_{name}", std::process::id()));
        std::fs::write(
            &path,
            "0 2 0.8\n0 3 0.5\n1 0 0.8\n1 2 0.9\n2 0 0.7\n2 3 0.6\n3 4 0.6\n3 1 0.8\n",
        )
        .unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_algorithm_query_prints_a_score() {
        let path = fig1_file("single.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "1",
            "--algorithm",
            "baseline",
        ]))
        .unwrap();
        assert!(output.starts_with("s(0, 1) = 0."));
        assert!(output.contains("Baseline"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn comparison_table_lists_every_algorithm() {
        let path = fig1_file("compare.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "1",
            "--target",
            "2",
            "--samples",
            "100",
            "--compare",
        ]))
        .unwrap();
        for name in [
            "Baseline",
            "Sampling",
            "SR-TS",
            "SR-SP",
            "SimRank-III",
            "SimRank-II",
        ] {
            assert!(output.contains(name), "missing {name} in:\n{output}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_vertex_label_is_a_clean_error() {
        let path = fig1_file("badvertex.tsv");
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "999",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("999"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_mode_answers_every_pair_and_is_thread_invariant() {
        let path = fig1_file("batch.tsv");
        let pairs_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_pairs_{}", std::process::id()));
        std::fs::write(&pairs_path, "# pairs\n0 1\n1 2\n\n2 3\n").unwrap();
        let base = vec![
            path.to_str().unwrap().to_string(),
            "--batch".to_string(),
            pairs_path.to_str().unwrap().to_string(),
            "--samples".to_string(),
            "200".to_string(),
            "--seed".to_string(),
            "9".to_string(),
        ];
        let mut one_thread = base.clone();
        one_thread.extend(["--threads".to_string(), "1".to_string()]);
        let mut four_threads = base.clone();
        four_threads.extend(["--threads".to_string(), "4".to_string()]);
        let out_1 = run(&one_thread).unwrap();
        let out_4 = run(&four_threads).unwrap();
        assert!(out_1.contains("3 pairs"), "{out_1}");
        // The score table must be identical at any thread count.
        let table = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
        assert_eq!(table(&out_1), table(&out_4));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
    }

    #[test]
    fn churn_mode_reanswers_the_batch_after_every_round() {
        let path = fig1_file("churn.tsv");
        let pairs_path = std::env::temp_dir().join(format!(
            "usim_cli_simrank_churnpairs_{}",
            std::process::id()
        ));
        std::fs::write(&pairs_path, "0 1\n2 3\n").unwrap();
        let updates_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_churnupd_{}", std::process::id()));
        std::fs::write(&updates_path, "= 0 2 0.05\n- 0 3\n---\n+ 4 0 0.9\n").unwrap();
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
            "--updates",
            updates_path.to_str().unwrap(),
            "--samples",
            "150",
            "--seed",
            "4",
        ]))
        .unwrap();
        // One score column per round (pristine + 2 update rounds).
        assert!(output.contains("s@r0"), "{output}");
        assert!(output.contains("s@r2"), "{output}");
        assert!(output.contains("2 update rounds"), "{output}");
        assert!(
            output.contains("round 1: +0 -1 =1 arcs -> 7 live"),
            "{output}"
        );
        assert!(
            output.contains("round 2: +1 -0 =0 arcs -> 8 live"),
            "{output}"
        );

        // A round referencing a missing arc is a clean, located error.
        std::fs::write(&updates_path, "- 0 4\n").unwrap();
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
            "--updates",
            updates_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("round 1") && err.to_string().contains("does not exist"),
            "{err}"
        );

        // --updates without --batch is rejected with a pointer to `update`.
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "1",
            "--updates",
            updates_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("requires --batch"), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
        std::fs::remove_file(&updates_path).unwrap();
    }

    #[test]
    fn cached_churn_mode_is_bit_identical_and_reports_counters() {
        let path = fig1_file("cachedchurn.tsv");
        let pairs_path = std::env::temp_dir().join(format!(
            "usim_cli_simrank_cachepairs_{}",
            std::process::id()
        ));
        // Duplicates on purpose: the cache (and the engine's own dedup)
        // must not change a single table cell.
        std::fs::write(&pairs_path, "0 1\n2 3\n0 1\n").unwrap();
        let updates_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_cacheupd_{}", std::process::id()));
        std::fs::write(&updates_path, "= 0 2 0.05\n---\n+ 4 0 0.9\n").unwrap();
        let base = vec![
            path.to_str().unwrap().to_string(),
            "--batch".to_string(),
            pairs_path.to_str().unwrap().to_string(),
            "--updates".to_string(),
            updates_path.to_str().unwrap().to_string(),
            "--samples".to_string(),
            "120".to_string(),
            "--seed".to_string(),
            "6".to_string(),
        ];
        let mut cached = base.clone();
        cached.extend(["--cache-capacity".to_string(), "64".to_string()]);
        let plain_out = run(&base).unwrap();
        let cached_out = run(&cached).unwrap();
        assert!(cached_out.contains("cache: capacity 64"), "{cached_out}");
        assert!(!plain_out.contains("cache:"), "{plain_out}");
        // The score tables (everything from the header row on) are equal.
        let table = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("source"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(table(&plain_out), table(&cached_out));

        // --cache-capacity without --batch is rejected.
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "1",
            "--cache-capacity",
            "64",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("requires --batch"), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
        std::fs::remove_file(&updates_path).unwrap();
    }

    #[test]
    fn pair_file_errors_carry_line_numbers() {
        let path = fig1_file("linenos.tsv");
        let pairs_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_linenos_{}", std::process::id()));
        let cases = [
            ("0 1\n0 1 2\n", "expected \"source target\", got 3 fields"),
            ("0 1\n0 x\n", "bad label \"x\""),
            ("0 1\n0 777\n", "vertex 777 does not appear"),
        ];
        for (content, expected) in cases {
            std::fs::write(&pairs_path, content).unwrap();
            let err = run(&tokens(&[
                path.to_str().unwrap(),
                "--batch",
                pairs_path.to_str().unwrap(),
            ]))
            .unwrap_err();
            let message = err.to_string();
            assert!(
                message.contains(":2:") && message.contains(expected),
                "{content:?}: {message}"
            );
        }
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
    }

    #[test]
    fn batch_mode_rejects_bad_pair_files() {
        let path = fig1_file("badbatch.tsv");
        let pairs_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_badpairs_{}", std::process::id()));
        std::fs::write(&pairs_path, "0\n").unwrap();
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("source target"), "{err}");
        std::fs::write(&pairs_path, "# only comments\n").unwrap();
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no pairs"), "{err}");
        // --algorithm conflicts with --batch (the engine is sampling-only).
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
            "--algorithm",
            "sr-ts",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--algorithm"), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
    }

    #[test]
    fn missing_required_options_are_errors() {
        let path = fig1_file("missing.tsv");
        assert!(run(&tokens(&[path.to_str().unwrap()])).is_err());
        assert!(run(&tokens(&[path.to_str().unwrap(), "--source", "0"])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
