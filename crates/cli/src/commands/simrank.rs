//! `usim simrank` — SimRank similarity of one vertex pair.
//!
//! By default the two-phase (SR-TS) estimator answers the query; `--algorithm`
//! selects another family, and `--compare` runs every family (including the
//! uncertainty-blind SimRank-II and Du et al.'s SimRank-III baselines) and
//! prints a comparison table with per-algorithm timings.

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, AlgorithmKind, CONFIG_OPTIONS};
use crate::graphio::load_graph;
use crate::table::{fmt_millis, fmt_score, TextTable};
use crate::CliError;
use std::time::Instant;

const BASE_OPTIONS: &[&str] = &["source", "target", "algorithm", "format"];

fn spec() -> ArgSpec<'static> {
    // The full option list is the union of the command's own options and the
    // shared SimRank configuration options.
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &["compare"],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let source_label: u64 = args.require_option("source")?;
    let target_label: u64 = args.require_option("target")?;
    let config = config_from_args(&args)?;

    let loaded = load_graph(path, args.option("format"))?;
    let u = loaded.vertex_for_label(source_label)?;
    let v = loaded.vertex_for_label(target_label)?;

    if args.switch("compare") {
        let mut table = TextTable::new(&["algorithm", "s(u, v)", "time (ms)"]);
        for kind in AlgorithmKind::all() {
            let start = Instant::now();
            let mut estimator = kind.build(&loaded.graph, config);
            let score = estimator.similarity(u, v);
            table.row(vec![
                kind.display_name().to_string(),
                fmt_score(score),
                fmt_millis(start.elapsed()),
            ]);
        }
        let mut output = format!(
            "s({source_label}, {target_label}) on {path} (c = {}, n = {}, N = {})\n\n",
            config.decay, config.horizon, config.num_samples
        );
        output.push_str(&table.render());
        return Ok(output);
    }

    let kind = AlgorithmKind::parse(args.option("algorithm").unwrap_or("two-phase"))?;
    let start = Instant::now();
    let mut estimator = kind.build(&loaded.graph, config);
    let score = estimator.similarity(u, v);
    Ok(format!(
        "s({source_label}, {target_label}) = {} [{}; {} ms]\n",
        fmt_score(score),
        kind.display_name(),
        fmt_millis(start.elapsed()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_simrank_{}_{name}", std::process::id()));
        std::fs::write(
            &path,
            "0 2 0.8\n0 3 0.5\n1 0 0.8\n1 2 0.9\n2 0 0.7\n2 3 0.6\n3 4 0.6\n3 1 0.8\n",
        )
        .unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_algorithm_query_prints_a_score() {
        let path = fig1_file("single.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "1",
            "--algorithm",
            "baseline",
        ]))
        .unwrap();
        assert!(output.starts_with("s(0, 1) = 0."));
        assert!(output.contains("Baseline"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn comparison_table_lists_every_algorithm() {
        let path = fig1_file("compare.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "1",
            "--target",
            "2",
            "--samples",
            "100",
            "--compare",
        ]))
        .unwrap();
        for name in [
            "Baseline",
            "Sampling",
            "SR-TS",
            "SR-SP",
            "SimRank-III",
            "SimRank-II",
        ] {
            assert!(output.contains(name), "missing {name} in:\n{output}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_vertex_label_is_a_clean_error() {
        let path = fig1_file("badvertex.tsv");
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "999",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("999"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_required_options_are_errors() {
        let path = fig1_file("missing.tsv");
        assert!(run(&tokens(&[path.to_str().unwrap()])).is_err());
        assert!(run(&tokens(&[path.to_str().unwrap(), "--source", "0"])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
