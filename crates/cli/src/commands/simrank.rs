//! `usim simrank` — SimRank similarity of one vertex pair, or of a whole
//! batch of pairs.
//!
//! By default the two-phase (SR-TS) estimator answers the query; `--algorithm`
//! selects another family, and `--compare` runs every family (including the
//! uncertainty-blind SimRank-II and Du et al.'s SimRank-III baselines) and
//! prints a comparison table with per-algorithm timings.
//!
//! `--batch FILE` switches to the CSR batch engine
//! ([`usim_core::QueryEngine`]): the file lists one `source target` pair per
//! line (original file labels; blank lines and `#` comments are skipped),
//! all pairs are answered in one thread-sharded pass, and `--threads N` pins
//! the worker count.  Batch output is bit-identical at any thread count.

use crate::args::{ArgSpec, Arguments};
use crate::estimators::{config_from_args, AlgorithmKind, CONFIG_OPTIONS};
use crate::graphio::{load_graph, LoadedGraph};
use crate::table::{fmt_millis, fmt_score, TextTable};
use crate::CliError;
use std::time::Instant;
use ugraph::VertexId;
use usim_core::QueryEngine;

const BASE_OPTIONS: &[&str] = &[
    "source",
    "target",
    "algorithm",
    "format",
    "batch",
    "threads",
];

fn spec() -> ArgSpec<'static> {
    // The full option list is the union of the command's own options and the
    // shared SimRank configuration options.
    static ALL: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let options = ALL.get_or_init(|| {
        let mut all = BASE_OPTIONS.to_vec();
        all.extend_from_slice(CONFIG_OPTIONS);
        all
    });
    ArgSpec {
        options,
        switches: &["compare"],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let config = config_from_args(&args)?;

    if let Some(batch_path) = args.option("batch") {
        if let Some(algorithm) = args.option("algorithm") {
            return Err(CliError::new(format!(
                "--batch always uses the CSR batch engine (sampling algorithm); \
                 --algorithm {algorithm:?} cannot be combined with it"
            )));
        }
        let loaded = load_graph(path, args.option("format"))?;
        return run_batch(&args, path, batch_path, &loaded, config);
    }

    let source_label: u64 = args.require_option("source")?;
    let target_label: u64 = args.require_option("target")?;
    let loaded = load_graph(path, args.option("format"))?;
    let u = loaded.vertex_for_label(source_label)?;
    let v = loaded.vertex_for_label(target_label)?;

    if args.switch("compare") {
        let mut table = TextTable::new(&["algorithm", "s(u, v)", "time (ms)"]);
        for kind in AlgorithmKind::all() {
            let start = Instant::now();
            let mut estimator = kind.build(&loaded.graph, config);
            let score = estimator.similarity(u, v);
            table.row(vec![
                kind.display_name().to_string(),
                fmt_score(score),
                fmt_millis(start.elapsed()),
            ]);
        }
        let mut output = format!(
            "s({source_label}, {target_label}) on {path} (c = {}, n = {}, N = {})\n\n",
            config.decay, config.horizon, config.num_samples
        );
        output.push_str(&table.render());
        return Ok(output);
    }

    let kind = AlgorithmKind::parse(args.option("algorithm").unwrap_or("two-phase"))?;
    let start = Instant::now();
    let mut estimator = kind.build(&loaded.graph, config);
    let score = estimator.similarity(u, v);
    Ok(format!(
        "s({source_label}, {target_label}) = {} [{}; {} ms]\n",
        fmt_score(score),
        kind.display_name(),
        fmt_millis(start.elapsed()),
    ))
}

/// A parsed pairs file: the original file labels of every pair, and the
/// corresponding compacted vertex ids.
type ParsedPairs = (Vec<(u64, u64)>, Vec<(VertexId, VertexId)>);

/// Reads a pairs file: one `source target` pair of file labels per line;
/// blank lines and lines starting with `#` are skipped.
fn read_pairs_file(batch_path: &str, loaded: &LoadedGraph) -> Result<ParsedPairs, CliError> {
    let text = std::fs::read_to_string(batch_path)
        .map_err(|e| CliError::new(format!("cannot read pairs file {batch_path}: {e}")))?;
    let mut labels = Vec::new();
    let mut pairs = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
            return Err(CliError::new(format!(
                "{batch_path}:{}: expected \"source target\", got {line:?}",
                number + 1
            )));
        };
        let parse = |s: &str| -> Result<u64, CliError> {
            s.parse()
                .map_err(|_| CliError::new(format!("{batch_path}:{}: bad label {s:?}", number + 1)))
        };
        let (a, b) = (parse(a)?, parse(b)?);
        pairs.push((loaded.vertex_for_label(a)?, loaded.vertex_for_label(b)?));
        labels.push((a, b));
    }
    if pairs.is_empty() {
        return Err(CliError::new(format!(
            "pairs file {batch_path} contains no pairs"
        )));
    }
    Ok((labels, pairs))
}

/// Answers a whole pairs file with the CSR batch engine.
fn run_batch(
    args: &Arguments,
    path: &str,
    batch_path: &str,
    loaded: &LoadedGraph,
    config: usim_core::SimRankConfig,
) -> Result<String, CliError> {
    let (labels, pairs) = read_pairs_file(batch_path, loaded)?;
    let threads: usize = args.parse_option("threads", 0usize)?;

    let start = Instant::now();
    let engine = QueryEngine::new(&loaded.graph, config);
    let build_time = start.elapsed();

    let start = Instant::now();
    let scores = if threads > 0 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| CliError::new(format!("cannot build thread pool: {e}")))?;
        pool.install(|| engine.batch_similarities(&pairs))
    } else {
        engine.batch_similarities(&pairs)
    };
    let query_time = start.elapsed();

    let mut table = TextTable::new(&["source", "target", "s(u, v)"]);
    for (&(a, b), score) in labels.iter().zip(&scores) {
        table.row(vec![a.to_string(), b.to_string(), fmt_score(*score)]);
    }
    let per_pair = query_time.as_secs_f64() * 1000.0 / pairs.len() as f64;
    let mut output = format!(
        "{} pairs from {batch_path} on {path} \
         (N = {}, n = {}, threads = {}, CSR build {} ms, queries {} ms, {per_pair:.3} ms/pair)\n\n",
        pairs.len(),
        config.num_samples,
        config.horizon,
        if threads > 0 {
            threads.to_string()
        } else {
            "auto".to_string()
        },
        fmt_millis(build_time),
        fmt_millis(query_time),
    );
    output.push_str(&table.render());
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_simrank_{}_{name}", std::process::id()));
        std::fs::write(
            &path,
            "0 2 0.8\n0 3 0.5\n1 0 0.8\n1 2 0.9\n2 0 0.7\n2 3 0.6\n3 4 0.6\n3 1 0.8\n",
        )
        .unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_algorithm_query_prints_a_score() {
        let path = fig1_file("single.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "1",
            "--algorithm",
            "baseline",
        ]))
        .unwrap();
        assert!(output.starts_with("s(0, 1) = 0."));
        assert!(output.contains("Baseline"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn comparison_table_lists_every_algorithm() {
        let path = fig1_file("compare.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "1",
            "--target",
            "2",
            "--samples",
            "100",
            "--compare",
        ]))
        .unwrap();
        for name in [
            "Baseline",
            "Sampling",
            "SR-TS",
            "SR-SP",
            "SimRank-III",
            "SimRank-II",
        ] {
            assert!(output.contains(name), "missing {name} in:\n{output}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_vertex_label_is_a_clean_error() {
        let path = fig1_file("badvertex.tsv");
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "999",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("999"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_mode_answers_every_pair_and_is_thread_invariant() {
        let path = fig1_file("batch.tsv");
        let pairs_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_pairs_{}", std::process::id()));
        std::fs::write(&pairs_path, "# pairs\n0 1\n1 2\n\n2 3\n").unwrap();
        let base = vec![
            path.to_str().unwrap().to_string(),
            "--batch".to_string(),
            pairs_path.to_str().unwrap().to_string(),
            "--samples".to_string(),
            "200".to_string(),
            "--seed".to_string(),
            "9".to_string(),
        ];
        let mut one_thread = base.clone();
        one_thread.extend(["--threads".to_string(), "1".to_string()]);
        let mut four_threads = base.clone();
        four_threads.extend(["--threads".to_string(), "4".to_string()]);
        let out_1 = run(&one_thread).unwrap();
        let out_4 = run(&four_threads).unwrap();
        assert!(out_1.contains("3 pairs"), "{out_1}");
        // The score table must be identical at any thread count.
        let table = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
        assert_eq!(table(&out_1), table(&out_4));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
    }

    #[test]
    fn batch_mode_rejects_bad_pair_files() {
        let path = fig1_file("badbatch.tsv");
        let pairs_path =
            std::env::temp_dir().join(format!("usim_cli_simrank_badpairs_{}", std::process::id()));
        std::fs::write(&pairs_path, "0\n").unwrap();
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("source target"), "{err}");
        std::fs::write(&pairs_path, "# only comments\n").unwrap();
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no pairs"), "{err}");
        // --algorithm conflicts with --batch (the engine is sampling-only).
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--batch",
            pairs_path.to_str().unwrap(),
            "--algorithm",
            "sr-ts",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--algorithm"), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&pairs_path).unwrap();
    }

    #[test]
    fn missing_required_options_are_errors() {
        let path = fig1_file("missing.tsv");
        assert!(run(&tokens(&[path.to_str().unwrap()])).is_err());
        assert!(run(&tokens(&[path.to_str().unwrap(), "--source", "0"])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
