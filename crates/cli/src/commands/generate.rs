//! `usim generate` — generate a synthetic uncertain graph and write it to a
//! file.
//!
//! Two sources are supported: a named dataset from the Table II registry
//! (`--dataset Net --scale ci|paper`) or a custom R-MAT graph
//! (`--rmat-scale 13 --edges 50000`), matching the generators used by the
//! paper's scalability experiment.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::save_graph;
use crate::CliError;
use ugraph::stats::uncertain_graph_stats;
use ugraph::UncertainGraph;
use usim_datasets::registry::find_spec;
use usim_datasets::{ci_registry, paper_registry, RmatGenerator};

const SPEC: ArgSpec<'_> = ArgSpec {
    options: &[
        "dataset",
        "scale",
        "rmat-scale",
        "edges",
        "seed",
        "out",
        "format",
    ],
    switches: &[],
};

fn generate_graph(args: &Arguments) -> Result<(UncertainGraph, String), CliError> {
    match (args.option("dataset"), args.option("rmat-scale")) {
        (Some(_), Some(_)) => Err(CliError::new(
            "--dataset and --rmat-scale are mutually exclusive",
        )),
        (Some(name), None) => {
            let registry = match args.option("scale").unwrap_or("ci") {
                "ci" => ci_registry(),
                "paper" => paper_registry(),
                other => {
                    return Err(CliError::new(format!(
                        "unknown scale {other:?}; expected \"ci\" or \"paper\""
                    )))
                }
            };
            let spec = find_spec(&registry, name).ok_or_else(|| {
                CliError::new(format!(
                    "unknown dataset {name:?}; run `usim datasets` for the available names"
                ))
            })?;
            Ok((spec.generate(), format!("dataset {}", spec.name)))
        }
        (None, Some(_)) => {
            let scale: u32 = args.require_option("rmat-scale")?;
            if scale > 28 {
                return Err(CliError::new(
                    "--rmat-scale larger than 28 is not supported",
                ));
            }
            let edges: usize = args.parse_option("edges", 1usize << (scale + 2))?;
            let seed: u64 = args.parse_option("seed", 0x0a7u64)?;
            let generator = RmatGenerator {
                scale,
                num_edges: edges,
                seed,
                ..Default::default()
            };
            Ok((
                generator.generate(),
                format!("R-MAT scale {scale}, {edges} staged edges"),
            ))
        }
        (None, None) => Err(CliError::new(
            "specify either --dataset <name> or --rmat-scale <s>",
        )),
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &SPEC)?;
    let out: String = args.require_option("out")?;
    let (graph, description) = generate_graph(&args)?;
    let format = save_graph(&graph, &out, args.option("format"))?;
    let stats = uncertain_graph_stats(&graph);
    Ok(format!(
        "generated {description}: {} vertices, {} arcs (mean probability {:.3}) -> {} ({:?})\n",
        graph.num_vertices(),
        graph.num_arcs(),
        stats.mean_probability,
        out,
        format,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphio::load_graph;

    fn temp_file(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("usim_cli_generate_{}_{name}", std::process::id()))
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generates_a_registry_dataset_to_text() {
        let path = temp_file("net.tsv");
        let out = run(&tokens(&[
            "--dataset",
            "Net",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("dataset Net"));
        let loaded = load_graph(path.to_str().unwrap(), None).unwrap();
        assert!(loaded.graph.num_vertices() > 100);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generates_a_custom_rmat_graph_to_binary() {
        let path = temp_file("rmat.bin");
        let out = run(&tokens(&[
            "--rmat-scale",
            "8",
            "--edges",
            "2000",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("R-MAT"));
        let loaded = load_graph(path.to_str().unwrap(), None).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 256);
        assert!(loaded.graph.num_arcs() > 500);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn conflicting_and_missing_sources_are_rejected() {
        assert!(run(&tokens(&["--out", "x.tsv"])).is_err());
        assert!(run(&tokens(&[
            "--dataset",
            "Net",
            "--rmat-scale",
            "8",
            "--out",
            "x.tsv"
        ]))
        .is_err());
        assert!(run(&tokens(&["--dataset", "NoSuchDataset", "--out", "x.tsv"])).is_err());
        assert!(run(&tokens(&[
            "--dataset",
            "Net",
            "--scale",
            "huge",
            "--out",
            "x.tsv"
        ]))
        .is_err());
        // --out is required.
        assert!(run(&tokens(&["--dataset", "Net"])).is_err());
    }
}
