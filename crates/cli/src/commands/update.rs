//! `usim update` — apply an arc-update file to a graph through the dynamic
//! [`ugraph::DeltaOverlay`] and write the mutated graph back out.
//!
//! ```text
//! usim update GRAPH --updates FILE --out OUT [--format text|binary]
//! ```
//!
//! The update file format is documented in [`crate::updates`]: `+ u v p`
//! inserts, `- u v` deletes, `= u v p` re-weights, `---` separates rounds,
//! all in the graph file's original labels.  Rounds are applied as atomic
//! batches in order — a rejected round (duplicate insert, missing arc,
//! invalid probability, …) aborts the command and nothing is written.
//!
//! Text output preserves the input file's original vertex labels; the
//! binary format stores compact ids (labels `0..n`), exactly like
//! `usim convert`.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::{load_graph, save_graph, GraphFormat, LoadedGraph};
use crate::updates::read_update_rounds;
use crate::CliError;
use ugraph::DeltaOverlay;

fn spec() -> ArgSpec<'static> {
    ArgSpec {
        options: &["updates", "out", "format"],
        switches: &[],
    }
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &spec())?;
    let path = args.require_positional(0, "the graph file")?;
    let updates_path = args.require_option::<String>("updates")?;
    let out_path = args.require_option::<String>("out")?;

    let loaded = load_graph(path, args.option("format"))?;
    let rounds = read_update_rounds(&updates_path, &loaded)?;

    let mut overlay = DeltaOverlay::from_graph(&loaded.graph);
    let arcs_before = overlay.num_arcs();
    let mut output = String::new();
    let (mut inserted, mut deleted, mut reweighted, mut compactions) = (0usize, 0usize, 0usize, 0);
    for (index, round) in rounds.iter().enumerate() {
        let summary = overlay.apply_all(round).map_err(|e| {
            CliError::new(format!(
                "{updates_path}: round {}: {}",
                index + 1,
                crate::updates::describe_update_error(&e, &loaded)
            ))
        })?;
        inserted += summary.inserted;
        deleted += summary.deleted;
        reweighted += summary.reweighted;
        compactions += usize::from(summary.compacted);
        output.push_str(&crate::updates::format_round_summary(index + 1, &summary));
        output.push('\n');
    }

    // to_uncertain reads through the merged overlay views, so no final
    // compaction is needed to serialise the live graph.
    let mutated = overlay.to_uncertain();
    let format = write_with_labels(&mutated, &loaded, &out_path, args.option("format"))?;
    output.push_str(&format!(
        "applied {} updates in {} rounds to {path} ({arcs_before} -> {} arcs, \
         {inserted} inserted, {deleted} deleted, {reweighted} reweighted, \
         {compactions} compactions)\n",
        inserted + deleted + reweighted,
        rounds.len(),
        mutated.num_arcs(),
    ));
    output.push_str(&format!(
        "wrote {out_path} ({})\n",
        match format {
            GraphFormat::Text => "text, original labels",
            GraphFormat::Binary => "binary, compact ids",
        }
    ));
    Ok(output)
}

/// Writes the mutated graph: text output maps compact ids back to the input
/// file's original labels, binary output goes through the standard writer.
fn write_with_labels(
    graph: &ugraph::UncertainGraph,
    loaded: &LoadedGraph,
    out_path: &str,
    explicit_format: Option<&str>,
) -> Result<GraphFormat, CliError> {
    match GraphFormat::detect(out_path, explicit_format)? {
        GraphFormat::Binary => save_graph(graph, out_path, Some("binary")),
        GraphFormat::Text => {
            let mut text = String::new();
            for arc in graph.arcs() {
                text.push_str(&format!(
                    "{} {} {}\n",
                    loaded.label_of(arc.source),
                    loaded.label_of(arc.target),
                    arc.probability,
                ));
            }
            std::fs::write(out_path, text)
                .map_err(|e| CliError::new(format!("{out_path}: {e}")))?;
            Ok(GraphFormat::Text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "usim_cli_update_{}_{}_{:?}",
            name,
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn applies_rounds_and_writes_labeled_text() {
        let graph_path = temp("g.tsv");
        std::fs::write(&graph_path, "10 20 0.5\n20 30 0.9\n30 10 0.2\n").unwrap();
        let updates_path = temp("u.txt");
        std::fs::write(&updates_path, "+ 10 30 0.4\n= 10 20 0.6\n---\n- 20 30\n").unwrap();
        let out_path = temp("out.tsv");
        let output = run(&tokens(&[
            graph_path.to_str().unwrap(),
            "--updates",
            updates_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(output.contains("round 1: +1 -0 =1"), "{output}");
        assert!(output.contains("round 2: +0 -1 =0"), "{output}");
        assert!(output.contains("3 -> 3 arcs"), "{output}");

        // The written file speaks the original labels and reloads cleanly.
        let text = std::fs::read_to_string(&out_path).unwrap();
        assert!(text.contains("10 30 0.4"), "{text}");
        assert!(text.contains("10 20 0.6"), "{text}");
        assert!(!text.contains("20 30"), "{text}");
        let reloaded = load_graph(out_path.to_str().unwrap(), None).unwrap();
        assert_eq!(reloaded.graph.num_arcs(), 3);
        let (u, v) = (
            reloaded.vertex_for_label(10).unwrap(),
            reloaded.vertex_for_label(20).unwrap(),
        );
        assert_eq!(reloaded.graph.arc_probability(u, v), Some(0.6));
        for p in [&graph_path, &updates_path, &out_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn rejected_rounds_abort_without_writing() {
        let graph_path = temp("bad_g.tsv");
        std::fs::write(&graph_path, "0 1 0.5\n").unwrap();
        let updates_path = temp("bad_u.txt");
        // Second round deletes a missing arc.
        std::fs::write(&updates_path, "+ 1 0 0.5\n---\n- 0 9999\n").unwrap();
        let out_path = temp("bad_out.tsv");
        let err = run(&tokens(&[
            graph_path.to_str().unwrap(),
            "--updates",
            updates_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("9999"), "{err}");
        assert!(!out_path.exists(), "nothing must be written on failure");

        // An invalid probability surfaces the typed overlay error.
        std::fs::write(&updates_path, "+ 1 0 1.5\n").unwrap();
        let err = run(&tokens(&[
            graph_path.to_str().unwrap(),
            "--updates",
            updates_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("round 1") && err.to_string().contains("(0, 1]"),
            "{err}"
        );
        std::fs::remove_file(&graph_path).unwrap();
        std::fs::remove_file(&updates_path).unwrap();
    }

    #[test]
    fn missing_required_options_are_errors() {
        let graph_path = temp("opts_g.tsv");
        std::fs::write(&graph_path, "0 1 0.5\n").unwrap();
        assert!(run(&tokens(&[graph_path.to_str().unwrap()])).is_err());
        assert!(run(&tokens(&[
            graph_path.to_str().unwrap(),
            "--updates",
            "x.txt"
        ]))
        .is_err());
        std::fs::remove_file(&graph_path).unwrap();
    }
}
