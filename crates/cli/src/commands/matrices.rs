//! `usim matrices` — k-step transition probability matrices of an uncertain
//! graph.
//!
//! With `--source U` only the rows `Pr(U →ₖ ·)` are computed (the
//! single-source restriction the Baseline estimator uses); without it the
//! full matrices `W(1)..W(K)` are enumerated, which is only feasible on small
//! graphs.  `--out DIR` additionally writes each full matrix to an on-disk
//! column store, mirroring the paper's external-memory layout.

use crate::args::{ArgSpec, Arguments};
use crate::graphio::load_graph;
use crate::table::TextTable;
use crate::CliError;
use rwalk::transpr::{transition_matrices, transition_rows_from, TransPrOptions};
use umatrix::ColumnStore;

const SPEC: ArgSpec<'_> = ArgSpec {
    options: &[
        "steps",
        "source",
        "out",
        "block-size",
        "max-walks",
        "prune",
        "format",
    ],
    switches: &["no-shortcut"],
};

fn options_from_args(args: &Arguments) -> Result<TransPrOptions, CliError> {
    let defaults = TransPrOptions::default();
    Ok(TransPrOptions {
        max_walks: args.parse_option("max-walks", defaults.max_walks)?,
        use_shortcut: !args.switch("no-shortcut"),
        prune_threshold: args.parse_option("prune", defaults.prune_threshold)?,
    })
}

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let args = Arguments::parse(tokens, &SPEC)?;
    let path = args.require_positional(0, "the graph file")?;
    let steps: usize = args.parse_option("steps", 3usize)?;
    if steps == 0 {
        return Err(CliError::new("--steps must be at least 1"));
    }
    let options = options_from_args(&args)?;
    let loaded = load_graph(path, args.option("format"))?;
    let graph = &loaded.graph;

    if let Some(source_raw) = args.option("source") {
        let source_label: u64 = source_raw
            .parse()
            .map_err(|e| CliError::new(format!("invalid value for --source: {e}")))?;
        let source = loaded.vertex_for_label(source_label)?;
        let rows = transition_rows_from(graph, source, steps, &options)?;
        let mut table = TextTable::new(&[
            "k",
            "reachable vertices",
            "survival Σ_v Pr(u→k v)",
            "max entry",
        ]);
        for (k, row) in rows.iter().enumerate().skip(1) {
            let max_entry = row.iter().map(|(_, p)| p).fold(0.0f64, f64::max);
            table.row(vec![
                k.to_string(),
                row.nnz().to_string(),
                format!("{:.6}", row.sum()),
                format!("{:.6}", max_entry),
            ]);
        }
        let mut output = format!(
            "single-source transition rows Pr({source_label} →k ·) on {path} (prune = {}, shortcut = {})\n\n",
            options.prune_threshold, options.use_shortcut
        );
        output.push_str(&table.render());
        return Ok(output);
    }

    let matrices = transition_matrices(graph, steps, &options)?;
    let mut table = TextTable::new(&["k", "min row survival", "max row survival", "max entry"]);
    for k in 1..=steps {
        let sums = matrices.step(k).row_sums();
        let min = sums.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sums.iter().copied().fold(0.0f64, f64::max);
        let max_entry = matrices
            .step(k)
            .as_slice()
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        table.row(vec![
            k.to_string(),
            format!("{min:.6}"),
            format!("{max:.6}"),
            format!("{max_entry:.6}"),
        ]);
    }
    let mut output = format!(
        "transition probability matrices W(1)..W({steps}) on {path} ({} vertices)\n\n",
        graph.num_vertices()
    );
    output.push_str(&table.render());

    if let Some(dir) = args.option("out") {
        let block_size: usize = args.parse_option("block-size", 8192usize)?;
        std::fs::create_dir_all(dir)?;
        let n = graph.num_vertices();
        for k in 1..=steps {
            let store_path = std::path::Path::new(dir).join(format!("transition_step_{k}.col"));
            let store = ColumnStore::create(&store_path, n, n, block_size)?;
            store.write_dense(matrices.step(k))?;
        }
        output.push_str(&format!(
            "\nwrote {steps} column-store file(s) ({n} x {n}, block size {block_size}) to {dir}\n"
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_file(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("usim_cli_matrices_{}_{name}", std::process::id()));
        std::fs::write(
            &path,
            "0 2 0.8\n0 3 0.5\n1 0 0.8\n1 2 0.9\n2 0 0.7\n2 3 0.6\n3 4 0.6\n3 1 0.8\n",
        )
        .unwrap();
        path
    }

    fn tokens(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_matrices_report_survival_ranges() {
        let path = fig1_file("full.tsv");
        let output = run(&tokens(&[path.to_str().unwrap(), "--steps", "3"])).unwrap();
        assert!(output.contains("W(1)..W(3)"));
        assert_eq!(
            output
                .lines()
                .filter(|l| l.trim_start().starts_with(['1', '2', '3']))
                .count(),
            3
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_source_rows_report_reachability() {
        let path = fig1_file("rows.tsv");
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--steps",
            "4",
            "--source",
            "1",
        ]))
        .unwrap();
        assert!(output.contains("Pr(1 →k ·)"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn column_store_export_writes_one_file_per_step() {
        let path = fig1_file("export.tsv");
        let dir =
            std::env::temp_dir().join(format!("usim_cli_matrices_out_{}", std::process::id()));
        let output = run(&tokens(&[
            path.to_str().unwrap(),
            "--steps",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(output.contains("wrote 2 column-store"));
        for k in 1..=2 {
            assert!(dir.join(format!("transition_step_{k}.col")).exists());
        }
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_steps_and_tiny_walk_budget_are_reported() {
        let path = fig1_file("budget.tsv");
        assert!(run(&tokens(&[path.to_str().unwrap(), "--steps", "0"])).is_err());
        let err = run(&tokens(&[
            path.to_str().unwrap(),
            "--steps",
            "4",
            "--max-walks",
            "2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("budget"));
        std::fs::remove_file(&path).unwrap();
    }
}
