//! One module per `usim` subcommand.
//!
//! Every command exposes `run(tokens) -> Result<String, CliError>`: it parses
//! its own options with [`crate::args::Arguments`], does the work, and
//! returns the text to print.

pub mod convert;
pub mod datasets;
pub mod er;
pub mod generate;
pub mod matrices;
pub mod pairs;
pub mod serve;
pub mod simrank;
pub mod snapshot;
pub mod stats;
pub mod topk;
pub mod update;
