//! `usim datasets` — list the synthetic dataset registry.

use crate::args::{ArgSpec, Arguments};
use crate::table::TextTable;
use crate::CliError;
use usim_datasets::{ci_registry, paper_registry};

/// Runs the command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    let _ = Arguments::parse(tokens, &ArgSpec::default())?;
    let ci = ci_registry();
    let paper = paper_registry();
    let mut table = TextTable::new(&[
        "name",
        "generator",
        "|V| (ci)",
        "~|E| (ci)",
        "|V| (paper)",
        "|E| (paper)",
    ]);
    for spec in &ci {
        let published = paper.iter().find(|p| p.name == spec.name).unwrap_or(spec);
        table.row(vec![
            spec.name.to_string(),
            format!("{:?}", spec.generator),
            spec.num_vertices.to_string(),
            spec.num_edges.to_string(),
            published.paper_vertices.to_string(),
            published.paper_edges.to_string(),
        ]);
    }
    let mut output = String::from(
        "Synthetic stand-ins for the datasets of Table II (see DESIGN.md §4 for the substitutions)\n\n",
    );
    output.push_str(&table.render());
    output.push_str("\nUse `usim generate --dataset <name> --scale ci|paper --out <file>` to materialise one.\n");
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_every_registry_entry() {
        let output = run(&[]).unwrap();
        for name in ["PPI1", "PPI2", "PPI3", "Condmat", "Net", "DBLP"] {
            assert!(output.contains(name), "missing {name} in:\n{output}");
        }
    }

    #[test]
    fn rejects_unknown_options() {
        let err = run(&["--bogus".to_string(), "1".to_string()]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }
}
