//! Rayon thread-pool plumbing shared by the batch-mode commands.
//!
//! Commands take a `--threads N` option where `N > 0` pins a dedicated
//! worker pool and `0` (the default) means "use the rayon default pool".
//! Batch output is bit-identical either way (pair-keyed RNG streams), so
//! the choice is purely about resource control.

use crate::CliError;

/// Builds the pinned pool for `--threads N`, or `None` for `N == 0` (run in
/// the rayon default pool).  Build the pool **once** per command run and
/// reuse it across rounds — pools spawn OS threads.
pub fn build_thread_pool(threads: usize) -> Result<Option<rayon::ThreadPool>, CliError> {
    if threads == 0 {
        return Ok(None);
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map(Some)
        .map_err(|e| CliError::new(format!("cannot build thread pool: {e}")))
}

/// Runs `f` inside the pinned pool when one was built, or inline (rayon
/// default pool) otherwise.
pub fn install_in<R>(pool: Option<&rayon::ThreadPool>, f: impl FnOnce() -> R) -> R {
    match pool {
        Some(pool) => pool.install(f),
        None => f(),
    }
}

/// The human-readable `threads = …` description used in command output.
pub fn describe_threads(threads: usize) -> String {
    if threads > 0 {
        threads.to_string()
    } else {
        "rayon default".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_means_no_pinned_pool() {
        assert!(build_thread_pool(0).unwrap().is_none());
        assert_eq!(describe_threads(0), "rayon default");
    }

    #[test]
    fn pinned_pool_runs_the_closure() {
        let pool = build_thread_pool(2).unwrap();
        assert!(pool.is_some());
        assert_eq!(install_in(pool.as_ref(), || 21 * 2), 42);
        assert_eq!(install_in(None, || 7), 7);
        assert_eq!(describe_threads(2), "2");
    }
}
