//! The `usim` command-line tool.
//!
//! All logic lives in the `usim_cli` library crate so it can be unit-tested;
//! this binary only forwards the process arguments and sets the exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match usim_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
        }
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("run `usim help` for usage");
            std::process::exit(2);
        }
    }
}
