//! Mapping CLI options onto [`SimRankConfig`] values and estimator instances.

use crate::args::Arguments;
use crate::CliError;
use ugraph::{UncertainGraph, VertexId};
use usim_core::{
    BaselineEstimator, DeterministicSimRank, DuEtAlEstimator, SamplerKind, SamplingEstimator,
    SimRankConfig, SimRankEstimator, SpeedupEstimator, TwoPhaseEstimator, WalkDirection,
};

/// Option names shared by every command that takes SimRank parameters; splice
/// these into the command's [`crate::args::ArgSpec`].
pub const CONFIG_OPTIONS: &[&str] = &[
    "decay",
    "horizon",
    "samples",
    "phase-switch",
    "seed",
    "direction",
    "sampler",
];

/// Builds a [`SimRankConfig`] from the shared CLI options, starting from the
/// paper's defaults (`c = 0.6`, `n = 5`, `N = 1000`, `l = 1`).
pub fn config_from_args(args: &Arguments) -> Result<SimRankConfig, CliError> {
    let defaults = SimRankConfig::default();
    let decay: f64 = args.parse_option("decay", defaults.decay)?;
    if !(decay > 0.0 && decay < 1.0) {
        return Err(CliError::new(format!(
            "--decay must lie strictly between 0 and 1, got {decay}"
        )));
    }
    let horizon: usize = args.parse_option("horizon", defaults.horizon)?;
    if horizon == 0 {
        return Err(CliError::new("--horizon must be at least 1"));
    }
    let samples: usize = args.parse_option("samples", defaults.num_samples)?;
    if samples == 0 {
        return Err(CliError::new("--samples must be at least 1"));
    }
    let phase_switch: usize = args.parse_option("phase-switch", defaults.phase_switch)?;
    let seed: u64 = args.parse_option("seed", defaults.seed)?;
    let direction = match args.option("direction").unwrap_or("in") {
        "in" => WalkDirection::InNeighbors,
        "out" => WalkDirection::OutNeighbors,
        other => {
            return Err(CliError::new(format!(
                "unknown walk direction {other:?}; expected \"in\" or \"out\""
            )))
        }
    };
    let sampler: SamplerKind = args
        .option("sampler")
        .unwrap_or(SamplerKind::Legacy.as_str())
        .parse()
        .map_err(|message: String| CliError::new(format!("--sampler: {message}")))?;
    Ok(SimRankConfig {
        decay,
        horizon,
        num_samples: samples,
        phase_switch,
        seed,
        direction,
        sampler,
    })
}

/// The estimator families the CLI can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Exact Baseline (Section VI-A).
    Baseline,
    /// Monte-Carlo Sampling (Section VI-B).
    Sampling,
    /// Two-phase SR-TS (Section VI-C).
    TwoPhase,
    /// Bit-vector SR-SP (Section VI-D).
    Speedup,
    /// Du et al.'s prior-work estimator (SimRank-III).
    DuEtAl,
    /// Classic SimRank on the skeleton, ignoring uncertainty (SimRank-II).
    Deterministic,
}

impl AlgorithmKind {
    /// Parses the `--algorithm` value.
    pub fn parse(name: &str) -> Result<Self, CliError> {
        match name.to_ascii_lowercase().as_str() {
            "baseline" => Ok(AlgorithmKind::Baseline),
            "sampling" => Ok(AlgorithmKind::Sampling),
            "two-phase" | "twophase" | "sr-ts" | "srts" => Ok(AlgorithmKind::TwoPhase),
            "speedup" | "sr-sp" | "srsp" => Ok(AlgorithmKind::Speedup),
            "du" | "du-et-al" | "simrank-iii" => Ok(AlgorithmKind::DuEtAl),
            "deterministic" | "simrank-ii" => Ok(AlgorithmKind::Deterministic),
            other => Err(CliError::new(format!(
                "unknown algorithm {other:?}; expected one of baseline, sampling, two-phase, \
                 speedup, du, deterministic"
            ))),
        }
    }

    /// All algorithm families, in the order the comparison table prints them.
    pub fn all() -> [AlgorithmKind; 6] {
        [
            AlgorithmKind::Baseline,
            AlgorithmKind::Sampling,
            AlgorithmKind::TwoPhase,
            AlgorithmKind::Speedup,
            AlgorithmKind::DuEtAl,
            AlgorithmKind::Deterministic,
        ]
    }

    /// The display name used in CLI output.
    pub fn display_name(self) -> &'static str {
        match self {
            AlgorithmKind::Baseline => "Baseline",
            AlgorithmKind::Sampling => "Sampling",
            AlgorithmKind::TwoPhase => "SR-TS",
            AlgorithmKind::Speedup => "SR-SP",
            AlgorithmKind::DuEtAl => "SimRank-III (Du et al.)",
            AlgorithmKind::Deterministic => "SimRank-II (no uncertainty)",
        }
    }

    /// Instantiates an estimator of this family for `graph` under `config`.
    pub fn build(self, graph: &UncertainGraph, config: SimRankConfig) -> Box<dyn SimRankEstimator> {
        match self {
            AlgorithmKind::Baseline => Box::new(BaselineEstimator::new(graph, config)),
            AlgorithmKind::Sampling => Box::new(SamplingEstimator::new(graph, config)),
            AlgorithmKind::TwoPhase => Box::new(TwoPhaseEstimator::new(graph, config)),
            AlgorithmKind::Speedup => Box::new(SpeedupEstimator::new(graph, config)),
            AlgorithmKind::DuEtAl => Box::new(DuEtAlEstimator::new(graph, config)),
            AlgorithmKind::Deterministic => Box::new(DeterministicAdapter::new(graph, config)),
        }
    }
}

/// Adapter exposing classic deterministic SimRank (on the skeleton of the
/// uncertain graph, all probabilities ignored) through the shared
/// [`SimRankEstimator`] interface — the paper's SimRank-II / DSIM baseline.
#[derive(Debug)]
pub struct DeterministicAdapter {
    inner: DeterministicSimRank,
}

impl DeterministicAdapter {
    /// Precomputes the all-pairs deterministic SimRank matrix of the skeleton.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        DeterministicAdapter {
            inner: DeterministicSimRank::new(graph.skeleton(), config.decay, config.horizon),
        }
    }
}

impl SimRankEstimator for DeterministicAdapter {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.inner.similarity(u, v)
    }

    fn name(&self) -> &'static str {
        "SimRank-II (no uncertainty)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{ArgSpec, Arguments};
    use ugraph::UncertainGraphBuilder;

    fn parse(tokens: &[&str]) -> Arguments {
        let owned: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Arguments::parse(
            &owned,
            &ArgSpec {
                options: CONFIG_OPTIONS,
                switches: &[],
            },
        )
        .unwrap()
    }

    fn small_graph() -> ugraph::UncertainGraph {
        UncertainGraphBuilder::new(3)
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.8)
            .arc(0, 2, 0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn defaults_match_the_paper_and_overrides_apply() {
        let config = config_from_args(&parse(&[])).unwrap();
        assert_eq!(config, SimRankConfig::default());
        let config = config_from_args(&parse(&[
            "--decay",
            "0.8",
            "--horizon",
            "7",
            "--samples",
            "50",
            "--phase-switch",
            "2",
            "--seed",
            "11",
            "--direction",
            "out",
            "--sampler",
            "alias",
        ]))
        .unwrap();
        assert_eq!(config.decay, 0.8);
        assert_eq!(config.horizon, 7);
        assert_eq!(config.num_samples, 50);
        assert_eq!(config.phase_switch, 2);
        assert_eq!(config.seed, 11);
        assert_eq!(config.direction, WalkDirection::OutNeighbors);
        assert_eq!(config.sampler, SamplerKind::Alias);
    }

    #[test]
    fn invalid_config_values_are_rejected() {
        assert!(config_from_args(&parse(&["--decay", "1.5"])).is_err());
        assert!(config_from_args(&parse(&["--horizon", "0"])).is_err());
        assert!(config_from_args(&parse(&["--samples", "0"])).is_err());
        assert!(config_from_args(&parse(&["--direction", "sideways"])).is_err());
        assert!(config_from_args(&parse(&["--sampler", "vose"])).is_err());
    }

    #[test]
    fn algorithm_names_parse_including_aliases() {
        assert_eq!(
            AlgorithmKind::parse("baseline").unwrap(),
            AlgorithmKind::Baseline
        );
        assert_eq!(
            AlgorithmKind::parse("SR-SP").unwrap(),
            AlgorithmKind::Speedup
        );
        assert_eq!(
            AlgorithmKind::parse("two-phase").unwrap(),
            AlgorithmKind::TwoPhase
        );
        assert_eq!(AlgorithmKind::parse("du").unwrap(), AlgorithmKind::DuEtAl);
        assert_eq!(
            AlgorithmKind::parse("deterministic").unwrap(),
            AlgorithmKind::Deterministic
        );
        assert!(AlgorithmKind::parse("pagerank").is_err());
        assert_eq!(AlgorithmKind::all().len(), 6);
    }

    #[test]
    fn every_algorithm_family_builds_and_answers_queries() {
        let graph = small_graph();
        let config = SimRankConfig::default().with_samples(100).with_seed(1);
        for kind in AlgorithmKind::all() {
            let mut estimator = kind.build(&graph, config);
            let score = estimator.similarity(0, 1);
            assert!(
                (0.0..=1.0 + 1e-9).contains(&score),
                "{}: s(0,1) = {score}",
                kind.display_name()
            );
        }
    }
}
