//! The serve acceptance contract: `usim serve` answers `similarity`,
//! `top_k`, `batch` and `update` frames with scores **bit-identical** to
//! the equivalent CLI invocations on the same graph file and RNG seed —
//! at 1 and at N worker threads — and the formatted CLI tables agree cell
//! for cell with the wire floats pushed through the same formatter.

use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use usim_cli::table::fmt_score;
use usim_server::ServerOptions;

const SAMPLES: &str = "180";
const SEED: &str = "23";

/// Fig. 1 graph under non-compact file labels (10, 20, 30, 40, 50).
const GRAPH: &str = "10 30 0.8\n10 40 0.5\n20 10 0.8\n20 30 0.9\n\
                     30 10 0.7\n30 40 0.6\n40 50 0.6\n40 20 0.8\n";
const PAIRS: &str = "10 20\n20 30\n30 40\n40 50\n";

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "usim_serve_equiv_{}_{}_{:?}",
        name,
        std::process::id(),
        std::thread::current().id()
    ))
}

fn cli(args: &[&str]) -> String {
    usim_cli::run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

/// Extracts the score cells (last column) of a CLI table, skipping the
/// header block.
fn score_column(table: &str, rows: usize) -> Vec<String> {
    let cells: Vec<String> = table
        .lines()
        .filter_map(|line| {
            let fields: Vec<&str> = line.split_whitespace().collect();
            let last = fields.last()?;
            // Score cells look like 0.123456 — a digit, a dot, six digits.
            (last.contains('.') && last.chars().next().is_some_and(|c| c.is_ascii_digit()))
                .then(|| last.to_string())
        })
        .collect();
    assert_eq!(cells.len(), rows, "unexpected table shape:\n{table}");
    cells
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        Client { conn, reader }
    }

    /// Sends one frame and parses the one-line response into map entries.
    fn ask(&mut self, frame: &str) -> Vec<(String, Value)> {
        writeln!(self.conn, "{frame}").unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        let value: Value = serde_json::from_str(line.trim()).unwrap();
        value.as_map().unwrap().to_vec()
    }
}

fn get<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .unwrap_or_else(|| panic!("missing field {name} in {entries:?}"))
}

fn float(value: &Value) -> f64 {
    match value {
        Value::Float(x) => *x,
        Value::Uint(n) => *n as f64,
        other => panic!("expected a number, got {other:?}"),
    }
}

fn floats(value: &Value) -> Vec<f64> {
    value.as_seq().unwrap().iter().map(float).collect()
}

#[test]
fn server_answers_are_bit_identical_to_the_cli_at_any_worker_count() {
    let graph_path = temp("g.tsv");
    std::fs::write(&graph_path, GRAPH).unwrap();
    let pairs_path = temp("pairs.txt");
    std::fs::write(&pairs_path, PAIRS).unwrap();
    let updates_path = temp("updates.txt");
    // One round: re-weight, delete, insert — mirrored below as a wire frame.
    std::fs::write(&updates_path, "= 10 30 0.1\n- 40 50\n+ 50 30 0.9\n").unwrap();
    let graph = graph_path.to_str().unwrap();

    // -- CLI ground truth, all through the public `usim` entry point -------
    let batch_table = cli(&[
        "simrank",
        graph,
        "--batch",
        pairs_path.to_str().unwrap(),
        "--samples",
        SAMPLES,
        "--seed",
        SEED,
    ]);
    let cli_batch = score_column(&batch_table, 4);

    let topk_table = cli(&[
        "topk",
        graph,
        "--engine",
        "batch",
        "--source",
        "20",
        "--k",
        "3",
        "--samples",
        SAMPLES,
        "--seed",
        SEED,
    ]);
    let cli_topk = score_column(&topk_table, 3);

    // Churn mode re-answers the batch after the update round: column s@r1.
    let churn_table = cli(&[
        "simrank",
        graph,
        "--batch",
        pairs_path.to_str().unwrap(),
        "--updates",
        updates_path.to_str().unwrap(),
        "--samples",
        SAMPLES,
        "--seed",
        SEED,
    ]);
    let cli_after_update = score_column(&churn_table, 4);

    // -- the same questions over the wire, at 1 and at 4 workers -----------
    for workers in [1usize, 4] {
        let loaded = usim_cli::graphio::load_graph(graph, None).unwrap();
        let config = usim_core::SimRankConfig::default()
            .with_samples(SAMPLES.parse().unwrap())
            .with_seed(SEED.parse().unwrap());
        let handler = usim_server::RequestHandler::new(
            usim_core::SharedQueryEngine::new(&loaded.graph, config),
            loaded.labels,
            usim_server::DEFAULT_MAX_BATCH,
        );
        let handle = usim_server::Server::bind(
            "127.0.0.1:0",
            handler,
            ServerOptions {
                workers,
                queue_depth: 8,
                max_connections: None,
            },
        )
        .unwrap()
        .spawn();
        let mut client = Client::connect(handle.addr());

        // batch == `usim simrank --batch` (same pairs, same order).
        let response = client.ask(r#"{"type":"batch","pairs":[[10,20],[20,30],[30,40],[40,50]]}"#);
        assert_eq!(get(&response, "ok"), &Value::Bool(true));
        let wire_batch = floats(get(&response, "scores"));
        let formatted: Vec<String> = wire_batch.iter().map(|&s| fmt_score(s)).collect();
        assert_eq!(formatted, cli_batch, "workers = {workers}");

        // similarity frames == the batch's individual entries (the engine
        // contract: batch is bit-identical to sequential single pairs).
        let response = client.ask(r#"{"type":"similarity","source":10,"target":20}"#);
        assert_eq!(float(get(&response, "score")), wire_batch[0]);

        // top_k == `usim topk --engine batch` rank for rank.
        let response = client.ask(r#"{"type":"top_k","source":20,"k":3}"#);
        let results = get(&response, "results").as_seq().unwrap().to_vec();
        assert_eq!(results.len(), 3);
        let formatted: Vec<String> = results
            .iter()
            .map(|r| fmt_score(float(get(r.as_map().unwrap(), "score"))))
            .collect();
        assert_eq!(formatted, cli_topk, "workers = {workers}");

        // update frame == the CLI churn round, then the re-asked batch must
        // match the churn table's post-round column.
        let response = client.ask(
            r#"{"type":"update","updates":[
                {"op":"set","source":10,"target":30,"probability":0.1},
                {"op":"delete","source":40,"target":50},
                {"op":"insert","source":50,"target":30,"probability":0.9}]}"#
                .replace('\n', " ")
                .trim(),
        );
        assert_eq!(get(&response, "ok"), &Value::Bool(true), "{response:?}");
        assert_eq!(get(&response, "epoch"), &Value::Uint(1));
        let response = client.ask(r#"{"type":"batch","pairs":[[10,20],[20,30],[30,40],[40,50]]}"#);
        assert_eq!(get(&response, "epoch"), &Value::Uint(1));
        let formatted: Vec<String> = floats(get(&response, "scores"))
            .iter()
            .map(|&s| fmt_score(s))
            .collect();
        assert_eq!(formatted, cli_after_update, "workers = {workers}");

        drop(client);
        handle.shutdown().unwrap();
    }

    for p in [&graph_path, &pairs_path, &updates_path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn wire_floats_survive_the_round_trip_exactly() {
    // The raw f64s behind the formatted tables: the wire must not lose a
    // single bit.  Ask the same server twice and a fresh engine once.
    let graph_path = temp("bits.tsv");
    std::fs::write(&graph_path, GRAPH).unwrap();
    let loaded = usim_cli::graphio::load_graph(graph_path.to_str().unwrap(), None).unwrap();
    let config = usim_core::SimRankConfig::default()
        .with_samples(170)
        .with_seed(99);
    let engine = usim_core::QueryEngine::new(&loaded.graph, config);
    // Labels are compacted in order of first appearance, so resolve them
    // through the same table the server speaks.
    let v = |label: u64| loaded.vertex_for_label(label).unwrap();
    let expected: Vec<f64> = vec![
        engine.similarity(v(10), v(20)),
        engine.similarity(v(20), v(30)),
        engine.similarity(v(30), v(40)),
    ];

    let handler = usim_server::RequestHandler::new(
        usim_core::SharedQueryEngine::new(&loaded.graph, config),
        loaded.labels,
        usim_server::DEFAULT_MAX_BATCH,
    );
    let handle = usim_server::Server::bind(
        "127.0.0.1:0",
        handler,
        ServerOptions {
            workers: 2,
            queue_depth: 2,
            max_connections: None,
        },
    )
    .unwrap()
    .spawn();
    let mut client = Client::connect(handle.addr());
    for round in 0..2 {
        let response = client.ask(r#"{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}"#);
        assert_eq!(
            floats(get(&response, "scores")),
            expected,
            "round {round}: wire floats must be bit-exact"
        );
    }
    drop(client);
    handle.shutdown().unwrap();
    std::fs::remove_file(&graph_path).unwrap();
}
