//! End-to-end tests of the `usim` binary: spawn the compiled executable and
//! check its output and exit codes, covering the full
//! generate → inspect → query → convert workflow a user would run.

use std::path::PathBuf;
use std::process::{Command, Output};

fn usim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_usim"))
        .args(args)
        .output()
        .expect("failed to spawn the usim binary")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("usim_cli_e2e_{}_{name}", std::process::id()))
}

fn write_fig1(path: &PathBuf) {
    std::fs::write(
        path,
        "0 2 0.8\n0 3 0.5\n1 0 0.8\n1 2 0.9\n2 0 0.7\n2 3 0.6\n3 4 0.6\n3 1 0.8\n",
    )
    .unwrap();
}

#[test]
fn help_is_printed_without_arguments_and_on_request() {
    let bare = usim(&[]);
    assert!(bare.status.success());
    assert!(stdout(&bare).contains("USAGE"));

    let help = usim(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("COMMANDS"));
}

#[test]
fn unknown_commands_fail_with_a_helpful_message_and_nonzero_exit() {
    let output = usim(&["frobnicate"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("frobnicate"));
    assert!(stderr(&output).contains("usim help"));
}

#[test]
fn datasets_lists_the_registry() {
    let output = usim(&["datasets"]);
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("PPI1"));
    assert!(text.contains("DBLP"));
}

#[test]
fn simrank_and_topk_queries_work_on_a_text_graph() {
    let graph = temp("fig1.tsv");
    write_fig1(&graph);
    let graph_path = graph.to_str().unwrap();

    let single = usim(&[
        "simrank",
        graph_path,
        "--source",
        "0",
        "--target",
        "1",
        "--algorithm",
        "baseline",
    ]);
    assert!(single.status.success(), "stderr: {}", stderr(&single));
    assert!(stdout(&single).contains("s(0, 1) = 0."));

    let compare = usim(&[
        "simrank",
        graph_path,
        "--source",
        "1",
        "--target",
        "2",
        "--samples",
        "100",
        "--compare",
    ]);
    assert!(compare.status.success());
    assert!(stdout(&compare).contains("SR-SP"));

    let topk = usim(&[
        "topk",
        graph_path,
        "--source",
        "0",
        "--k",
        "3",
        "--samples",
        "300",
    ]);
    assert!(topk.status.success(), "stderr: {}", stderr(&topk));
    assert!(stdout(&topk).contains("top-3"));

    let pairs = usim(&[
        "topk-pairs",
        graph_path,
        "--k",
        "2",
        "--algorithm",
        "baseline",
    ]);
    assert!(pairs.status.success());
    assert!(stdout(&pairs).contains("most similar pairs"));

    std::fs::remove_file(&graph).unwrap();
}

#[test]
fn generate_stats_convert_pipeline() {
    let text = temp("generated.tsv");
    let binary = temp("generated.bin");

    let generate = usim(&[
        "generate",
        "--rmat-scale",
        "7",
        "--edges",
        "600",
        "--seed",
        "5",
        "--out",
        text.to_str().unwrap(),
    ]);
    assert!(generate.status.success(), "stderr: {}", stderr(&generate));
    assert!(stdout(&generate).contains("R-MAT"));

    let stats = usim(&["stats", text.to_str().unwrap()]);
    assert!(stats.status.success());
    assert!(stdout(&stats).contains("mean arc probability"));

    let convert = usim(&["convert", text.to_str().unwrap(), binary.to_str().unwrap()]);
    assert!(convert.status.success());
    assert!(stdout(&convert).contains("Binary"));

    let stats_binary = usim(&["stats", binary.to_str().unwrap()]);
    assert!(stats_binary.status.success());
    // The binary file describes the same graph, so the arc count lines match.
    let arcs_line = |s: &str| {
        s.lines()
            .find(|l| l.trim_start().starts_with("arcs"))
            .unwrap()
            .to_string()
    };
    assert_eq!(
        arcs_line(&stdout(&stats)),
        arcs_line(&stdout(&stats_binary))
    );

    std::fs::remove_file(&text).unwrap();
    std::fs::remove_file(&binary).unwrap();
}

#[test]
fn matrices_command_reports_transition_structure() {
    let graph = temp("matrices.tsv");
    write_fig1(&graph);
    let output = usim(&["matrices", graph.to_str().unwrap(), "--steps", "3"]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("W(1)..W(3)"));
    std::fs::remove_file(&graph).unwrap();
}

#[test]
fn query_against_a_missing_file_fails_cleanly() {
    let output = usim(&[
        "simrank",
        "/nonexistent/usim/graph.tsv",
        "--source",
        "0",
        "--target",
        "1",
    ]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("error:"));
}
