//! Named dataset configurations mirroring Table II of the paper.
//!
//! Each entry records the published vertex/edge counts and which generator we
//! use as the stand-in.  Two registries are provided: [`paper_registry`]
//! (full published sizes — generating the largest entries takes minutes and
//! plenty of memory) and [`ci_registry`] (each dataset scaled down so the
//! whole experiment suite finishes on a laptop; the scaling factors are
//! reported in EXPERIMENTS.md next to every measurement).

use crate::coauthor::CoauthorGenerator;
use crate::ppi::PpiGenerator;
use crate::rmat::RmatGenerator;
use ugraph::UncertainGraph;

/// Which generator family a dataset uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Planted-complex PPI generator.
    Ppi,
    /// Preferential-attachment co-authorship generator.
    Coauthor,
    /// R-MAT generator.
    Rmat,
}

/// A named dataset configuration.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper ("PPI1", "Condmat", "DBLP", …).
    pub name: &'static str,
    /// Vertex count of this configuration.
    pub num_vertices: usize,
    /// Approximate target edge count of this configuration.
    pub num_edges: usize,
    /// Vertex count reported in Table II of the paper (for the report).
    pub paper_vertices: usize,
    /// Edge count reported in Table II of the paper.
    pub paper_edges: usize,
    /// Which generator produces the stand-in.
    pub generator: GeneratorKind,
    /// Seed used for generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the uncertain graph for this specification.
    pub fn generate(&self) -> UncertainGraph {
        match self.generator {
            GeneratorKind::Ppi => {
                let average_degree = (self.num_edges / self.num_vertices.max(1)).max(2);
                PpiGenerator {
                    num_proteins: self.num_vertices,
                    num_complexes: (self.num_vertices / 15).max(4),
                    complex_size: (3, 8),
                    intra_complex_density: (average_degree as f64 / 8.0).clamp(0.3, 0.95),
                    noise_edges: self.num_edges / 2,
                    seed: self.seed,
                    ..Default::default()
                }
                .generate()
                .graph
            }
            GeneratorKind::Coauthor => {
                let per_author = (self.num_edges / (2 * self.num_vertices.max(1))).max(1);
                CoauthorGenerator {
                    num_authors: self.num_vertices,
                    edges_per_author: per_author,
                    seed: self.seed,
                    ..Default::default()
                }
                .generate()
            }
            GeneratorKind::Rmat => {
                let scale = (self.num_vertices.max(2) as f64).log2().ceil() as u32;
                RmatGenerator {
                    scale,
                    num_edges: self.num_edges,
                    seed: self.seed,
                    ..Default::default()
                }
                .generate()
            }
        }
    }
}

/// The datasets of Table II at their published sizes.
pub fn paper_registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "PPI1",
            num_vertices: 2708,
            num_edges: 7123,
            paper_vertices: 2708,
            paper_edges: 7123,
            generator: GeneratorKind::Ppi,
            seed: 101,
        },
        DatasetSpec {
            name: "PPI2",
            num_vertices: 2369,
            num_edges: 249_080,
            paper_vertices: 2369,
            paper_edges: 249_080,
            generator: GeneratorKind::Ppi,
            seed: 102,
        },
        DatasetSpec {
            name: "PPI3",
            num_vertices: 19_247,
            num_edges: 17_096_006,
            paper_vertices: 19_247,
            paper_edges: 17_096_006,
            generator: GeneratorKind::Ppi,
            seed: 103,
        },
        DatasetSpec {
            name: "Condmat",
            num_vertices: 31_163,
            num_edges: 240_058,
            paper_vertices: 31_163,
            paper_edges: 240_058,
            generator: GeneratorKind::Coauthor,
            seed: 104,
        },
        DatasetSpec {
            name: "Net",
            num_vertices: 1588,
            num_edges: 5484,
            paper_vertices: 1588,
            paper_edges: 5484,
            generator: GeneratorKind::Coauthor,
            seed: 105,
        },
        DatasetSpec {
            name: "DBLP",
            num_vertices: 1_560_640,
            num_edges: 8_517_894,
            paper_vertices: 1_560_640,
            paper_edges: 8_517_894,
            generator: GeneratorKind::Coauthor,
            seed: 106,
        },
    ]
}

/// The same datasets scaled down (vertices and edges divided by roughly 10 to
/// 100 for the largest entries) so that the full experiment harness completes
/// quickly; the published sizes remain available in each entry's
/// `paper_vertices` / `paper_edges` fields for reporting.
pub fn ci_registry() -> Vec<DatasetSpec> {
    paper_registry()
        .into_iter()
        .map(|mut spec| {
            let (v, e) = match spec.name {
                "PPI1" => (spec.num_vertices, spec.num_edges),
                "PPI2" => (spec.num_vertices, spec.num_edges / 4),
                "PPI3" => (spec.num_vertices / 4, spec.num_edges / 100),
                "Condmat" => (spec.num_vertices / 4, spec.num_edges / 4),
                "Net" => (spec.num_vertices, spec.num_edges),
                "DBLP" => (spec.num_vertices / 50, spec.num_edges / 50),
                _ => (spec.num_vertices, spec.num_edges),
            };
            spec.num_vertices = v;
            spec.num_edges = e;
            spec
        })
        .collect()
}

/// Looks a dataset up by name in a registry (case-insensitive).
pub fn find_spec<'a>(registry: &'a [DatasetSpec], name: &str) -> Option<&'a DatasetSpec> {
    registry
        .iter()
        .find(|spec| spec.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_table2() {
        let names: Vec<&str> = paper_registry().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["PPI1", "PPI2", "PPI3", "Condmat", "Net", "DBLP"]
        );
        assert_eq!(ci_registry().len(), 6);
    }

    #[test]
    fn ci_registry_is_never_larger_than_the_paper_sizes() {
        for (ci, paper) in ci_registry().iter().zip(paper_registry()) {
            assert!(ci.num_vertices <= paper.num_vertices);
            assert!(ci.num_edges <= paper.num_edges);
            assert_eq!(ci.paper_vertices, paper.paper_vertices);
            assert_eq!(ci.paper_edges, paper.paper_edges);
        }
    }

    #[test]
    fn find_spec_is_case_insensitive() {
        let registry = ci_registry();
        assert!(find_spec(&registry, "ppi1").is_some());
        assert!(find_spec(&registry, "CONDMAT").is_some());
        assert!(find_spec(&registry, "unknown").is_none());
    }

    #[test]
    fn small_specs_generate_graphs_of_roughly_the_requested_size() {
        let registry = ci_registry();
        for name in ["PPI1", "Net"] {
            let spec = find_spec(&registry, name).unwrap();
            let graph = spec.generate();
            assert_eq!(graph.num_vertices(), spec.num_vertices);
            assert!(graph.num_arcs() > 0);
            // Within a factor of ~4 of the target (generators are stochastic
            // and arcs are stored in both directions).
            assert!(
                graph.num_arcs() < spec.num_edges * 4,
                "{name}: {} arcs vs target {}",
                graph.num_arcs(),
                spec.num_edges
            );
        }
    }
}
