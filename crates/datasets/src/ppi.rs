//! Planted-complex protein-protein interaction (PPI) network generator.
//!
//! Real PPI networks (the paper's PPI1–PPI3) consist of proteins whose
//! interactions were detected by noisy high-throughput experiments, so each
//! edge carries a confidence value in (0, 1].  Proteins participating in a
//! common *protein complex* interact densely and with high confidence; the
//! MIPS database of known complexes is the paper's ground truth for the
//! "detecting similar proteins" case study (Fig. 13 / Fig. 14).
//!
//! This generator plants complexes explicitly: it partitions a subset of the
//! proteins into complexes, wires each complex densely with high-confidence
//! edges, and adds sparse low-confidence noise edges between random protein
//! pairs.  The planted complexes play the role of the MIPS ground truth: a
//! good similarity measure should rank within-complex pairs above
//! cross-complex pairs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugraph::{DuplicatePolicy, UncertainGraph, UncertainGraphBuilder, VertexId};

/// Configuration of the planted-complex PPI generator.
#[derive(Debug, Clone)]
pub struct PpiGenerator {
    /// Total number of proteins (vertices).
    pub num_proteins: usize,
    /// Number of planted complexes.
    pub num_complexes: usize,
    /// Inclusive range of complex sizes.
    pub complex_size: (usize, usize),
    /// Probability that a pair of proteins within the same complex interacts.
    pub intra_complex_density: f64,
    /// Range of confidence values for intra-complex interactions.
    pub intra_complex_confidence: (f64, f64),
    /// Number of random noise interactions between arbitrary protein pairs.
    pub noise_edges: usize,
    /// Range of confidence values for noise interactions.
    pub noise_confidence: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for PpiGenerator {
    fn default() -> Self {
        PpiGenerator {
            num_proteins: 2708, // PPI1 of Table II
            num_complexes: 150,
            complex_size: (3, 8),
            intra_complex_density: 0.8,
            intra_complex_confidence: (0.6, 0.99),
            noise_edges: 4000,
            noise_confidence: (0.05, 0.5),
            seed: 0xbead,
        }
    }
}

/// A generated PPI dataset: the uncertain interaction network plus the
/// planted-complex ground truth.
#[derive(Debug, Clone)]
pub struct PpiDataset {
    /// The uncertain interaction network (interactions are symmetric, so both
    /// arc directions are present with the same confidence).
    pub graph: UncertainGraph,
    /// The planted complexes, each a sorted list of member proteins.
    pub complexes: Vec<Vec<VertexId>>,
    /// `complex_of[v]` is the index of the complex protein `v` belongs to, if
    /// any.
    pub complex_of: Vec<Option<usize>>,
}

impl PpiDataset {
    /// Whether two proteins belong to the same planted complex (the ground
    /// truth relation of the case study).
    pub fn same_complex(&self, u: VertexId, v: VertexId) -> bool {
        match (self.complex_of[u as usize], self.complex_of[v as usize]) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// All unordered within-complex protein pairs.
    pub fn within_complex_pairs(&self) -> Vec<(VertexId, VertexId)> {
        let mut pairs = Vec::new();
        for complex in &self.complexes {
            for (i, &u) in complex.iter().enumerate() {
                for &v in &complex[i + 1..] {
                    pairs.push((u, v));
                }
            }
        }
        pairs
    }
}

impl PpiGenerator {
    /// A small configuration (hundreds of vertices) for tests and quick runs.
    pub fn small(seed: u64) -> Self {
        PpiGenerator {
            num_proteins: 300,
            num_complexes: 30,
            complex_size: (3, 6),
            noise_edges: 400,
            seed,
            ..Default::default()
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> PpiDataset {
        assert!(self.num_proteins >= 2, "need at least two proteins");
        assert!(
            self.complex_size.0 >= 2 && self.complex_size.1 >= self.complex_size.0,
            "complex sizes must be at least 2 and the range must be ordered"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut complex_of = vec![None; self.num_proteins];
        let mut complexes = Vec::with_capacity(self.num_complexes);

        // Assign complex members from a shuffled pool so complexes are
        // disjoint, as MIPS complexes (mostly) are.
        let mut pool: Vec<VertexId> = (0..self.num_proteins as VertexId).collect();
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        let mut cursor = 0usize;
        for complex_index in 0..self.num_complexes {
            let size = rng.gen_range(self.complex_size.0..=self.complex_size.1);
            if cursor + size > pool.len() {
                break;
            }
            let mut members: Vec<VertexId> = pool[cursor..cursor + size].to_vec();
            cursor += size;
            members.sort_unstable();
            for &m in &members {
                complex_of[m as usize] = Some(complex_index);
            }
            complexes.push(members);
        }

        let mut builder = UncertainGraphBuilder::new(self.num_proteins)
            .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
            .forbid_self_loops();
        let mut staged: Vec<(VertexId, VertexId, f64)> = Vec::new();
        let add_interaction =
            |staged: &mut Vec<(VertexId, VertexId, f64)>, u: VertexId, v: VertexId, p: f64| {
                staged.push((u, v, p));
                staged.push((v, u, p));
            };

        // Dense, high-confidence interactions within each complex.
        for complex in &complexes {
            for (i, &u) in complex.iter().enumerate() {
                for &v in &complex[i + 1..] {
                    if rng.gen::<f64>() < self.intra_complex_density {
                        let p = rng.gen_range(
                            self.intra_complex_confidence.0..self.intra_complex_confidence.1,
                        );
                        add_interaction(&mut staged, u, v, p);
                    }
                }
            }
        }
        // Sparse low-confidence noise.
        for _ in 0..self.noise_edges {
            let u = rng.gen_range(0..self.num_proteins) as VertexId;
            let v = rng.gen_range(0..self.num_proteins) as VertexId;
            if u == v {
                continue;
            }
            let p = rng.gen_range(self.noise_confidence.0..self.noise_confidence.1);
            add_interaction(&mut staged, u, v, p);
        }
        builder = builder.arcs(staged);
        let graph = builder.build().expect("generator produces valid arcs");
        PpiDataset {
            graph,
            complexes,
            complex_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let dataset = PpiGenerator::small(7).generate();
        assert_eq!(dataset.graph.num_vertices(), 300);
        assert!(dataset.graph.num_arcs() > 500);
        assert_eq!(dataset.complexes.len(), 30);
        assert_eq!(dataset.complex_of.len(), 300);
    }

    #[test]
    fn interactions_are_symmetric() {
        let dataset = PpiGenerator::small(11).generate();
        for arc in dataset.graph.arcs() {
            let reverse = dataset.graph.arc_probability(arc.target, arc.source);
            assert!(reverse.is_some(), "missing reverse of {:?}", arc);
        }
    }

    #[test]
    fn complexes_are_disjoint_and_ground_truth_is_consistent() {
        let dataset = PpiGenerator::small(13).generate();
        let mut seen = vec![false; dataset.graph.num_vertices()];
        for complex in &dataset.complexes {
            assert!(complex.len() >= 2);
            for &m in complex {
                assert!(!seen[m as usize], "protein {m} in two complexes");
                seen[m as usize] = true;
            }
        }
        for pair in dataset.within_complex_pairs() {
            assert!(dataset.same_complex(pair.0, pair.1));
        }
        // A protein outside every complex matches nothing.
        if let Some(outside) = dataset.complex_of.iter().position(|c| c.is_none()) {
            assert!(!dataset.same_complex(outside as VertexId, dataset.complexes[0][0]));
        }
    }

    #[test]
    fn intra_complex_confidences_are_higher_than_noise_on_average() {
        let dataset = PpiGenerator::small(17).generate();
        let mut intra = Vec::new();
        let mut noise = Vec::new();
        for arc in dataset.graph.arcs() {
            if dataset.same_complex(arc.source, arc.target) {
                intra.push(arc.probability);
            } else {
                noise.push(arc.probability);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(!intra.is_empty() && !noise.is_empty());
        assert!(mean(&intra) > mean(&noise) + 0.2);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = PpiGenerator::small(23).generate();
        let b = PpiGenerator::small(23).generate();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.complexes, b.complexes);
        let c = PpiGenerator::small(24).generate();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_complexes() {
        let mut generator = PpiGenerator::small(1);
        generator.complex_size = (1, 1);
        let _ = generator.generate();
    }
}
