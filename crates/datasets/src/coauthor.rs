//! Preferential-attachment co-authorship network generator (the Net, Condmat
//! and DBLP stand-ins).
//!
//! Co-authorship networks have heavy-tailed degree distributions, which a
//! Barabási–Albert style preferential-attachment process reproduces.  The
//! paper assigns uncertainty to the (deterministic) co-authorship edges
//! "using the method in \[44\]", which derives an edge probability from the
//! collaboration strength; we model the number of joint papers `w` as a
//! geometric variable and set `p = 1 − exp(−w/μ)`, the standard exponential
//! soft-threshold used in the uncertain-graph literature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugraph::{DuplicatePolicy, UncertainGraph, UncertainGraphBuilder, VertexId};

/// Configuration of the co-authorship generator.
#[derive(Debug, Clone)]
pub struct CoauthorGenerator {
    /// Number of authors (vertices).
    pub num_authors: usize,
    /// Number of earlier authors each new author collaborates with
    /// (preferential attachment parameter `m`).
    pub edges_per_author: usize,
    /// Mean of the geometric distribution of joint-paper counts.
    pub mean_joint_papers: f64,
    /// The `μ` of the `p = 1 − exp(−w/μ)` uncertainty assigner.
    pub mu: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoauthorGenerator {
    fn default() -> Self {
        CoauthorGenerator {
            num_authors: 1588, // "Net" of Table II
            edges_per_author: 3,
            mean_joint_papers: 2.0,
            mu: 2.0,
            seed: 0xc0a0,
        }
    }
}

impl CoauthorGenerator {
    /// A small configuration for tests and quick runs.
    pub fn small(seed: u64) -> Self {
        CoauthorGenerator {
            num_authors: 400,
            seed,
            ..Default::default()
        }
    }

    /// The uncertainty assigner of \[44\]: collaboration strength `w` maps to
    /// existence probability `1 − exp(−w/μ)`.
    pub fn weight_to_probability(&self, weight: f64) -> f64 {
        (1.0 - (-weight / self.mu).exp()).clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Generates the uncertain co-authorship network (symmetric arcs).
    pub fn generate(&self) -> UncertainGraph {
        assert!(self.num_authors >= 2, "need at least two authors");
        assert!(
            self.edges_per_author >= 1,
            "each author needs a collaborator"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Preferential attachment: keep a multiset of endpoints; new vertices
        // attach to `edges_per_author` vertices sampled from it.
        let mut endpoint_pool: Vec<VertexId> = vec![0, 1];
        let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
        for v in 2..self.num_authors as VertexId {
            let mut attached: Vec<VertexId> = Vec::with_capacity(self.edges_per_author);
            let mut guard = 0usize;
            while attached.len() < self.edges_per_author.min(v as usize) && guard < 100 {
                guard += 1;
                let pick = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
                if pick != v && !attached.contains(&pick) {
                    attached.push(pick);
                }
            }
            for &u in &attached {
                edges.push((u, v));
                endpoint_pool.push(u);
                endpoint_pool.push(v);
            }
        }

        // Collaboration strength and uncertainty.
        let mut staged = Vec::with_capacity(edges.len() * 2);
        for (u, v) in edges {
            // Geometric number of joint papers with the configured mean.
            let q = 1.0 / self.mean_joint_papers.max(1.0);
            let mut papers = 1usize;
            while rng.gen::<f64>() > q && papers < 50 {
                papers += 1;
            }
            let p = self.weight_to_probability(papers as f64);
            staged.push((u, v, p));
            staged.push((v, u, p));
        }
        UncertainGraphBuilder::new(self.num_authors)
            .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
            .forbid_self_loops()
            .arcs(staged)
            .build()
            .expect("generator produces valid arcs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::stats::graph_stats;

    #[test]
    fn generates_connected_ish_network_of_requested_size() {
        let g = CoauthorGenerator::small(3).generate();
        assert_eq!(g.num_vertices(), 400);
        // Roughly edges_per_author * num_authors arcs in each direction.
        assert!(g.num_arcs() > 400);
        let stats = graph_stats(g.skeleton());
        assert!(stats.num_sinks < 5, "PA graphs should have almost no sinks");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = CoauthorGenerator::small(5).generate();
        let stats = graph_stats(g.skeleton());
        // The hubs of a preferential-attachment graph are far above the mean.
        assert!(
            stats.max_out_degree as f64 > 4.0 * stats.average_out_degree,
            "max degree {} vs average {}",
            stats.max_out_degree,
            stats.average_out_degree
        );
    }

    #[test]
    fn probabilities_follow_the_exponential_assigner() {
        let generator = CoauthorGenerator::small(7);
        assert!((generator.weight_to_probability(0.0) - 0.0).abs() < 1e-12);
        let p1 = generator.weight_to_probability(1.0);
        let p5 = generator.weight_to_probability(5.0);
        assert!(p1 > 0.3 && p1 < 0.5); // 1 - exp(-0.5) ≈ 0.393
        assert!(p5 > p1);
        assert!(p5 <= 1.0);
        let g = generator.generate();
        for arc in g.arcs() {
            assert!(arc.probability > 0.0 && arc.probability <= 1.0);
        }
    }

    #[test]
    fn symmetric_arcs() {
        let g = CoauthorGenerator::small(9).generate();
        for arc in g.arcs().take(500) {
            assert!(g.arc_probability(arc.target, arc.source).is_some());
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = CoauthorGenerator::small(42).generate();
        let b = CoauthorGenerator::small(42).generate();
        assert_eq!(a, b);
    }
}
