//! Synthetic uncertain-graph datasets standing in for the paper's evaluation
//! data.
//!
//! The paper evaluates on three protein-protein interaction networks
//! (PPI1–PPI3, from \[18\] and the STRING database), two co-authorship networks
//! (Net, Condmat), the DBLP co-authorship graph, R-MAT synthetic graphs for
//! the scalability experiment, and a DBLP author-disambiguation workload for
//! the entity-resolution case study.  None of those datasets ship with this
//! repository (they are external downloads, some behind licenses), so this
//! crate provides generators that reproduce their *relevant characteristics*
//! — vertex/edge counts, degree structure and probability distributions from
//! Table II — plus the ground truth each case study needs (planted protein
//! complexes, planted author identities).  DESIGN.md §4 documents each
//! substitution and why it preserves the behaviour being measured.
//!
//! * [`ppi`] — planted-complex PPI generator (Fig. 13 / Fig. 14 ground truth);
//! * [`coauthor`] — preferential-attachment co-authorship generator with the
//!   `p = 1 − exp(−w/μ)` uncertainty assigner of \[44\];
//! * [`rmat`] — R-MAT generator with uniform edge probabilities (Fig. 12);
//! * [`er_records`] — ambiguous-author record-graph generator (Table IV/V,
//!   Fig. 15);
//! * [`registry`] — named dataset configurations mirroring Table II, each
//!   with a CI-scale variant so the experiment harness runs on a laptop.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod coauthor;
pub mod er_records;
pub mod ppi;
pub mod registry;
pub mod rmat;

pub use coauthor::CoauthorGenerator;
pub use er_records::{ErDataset, ErGenerator, NameGroup};
pub use ppi::{PpiDataset, PpiGenerator};
pub use registry::{ci_registry, paper_registry, DatasetSpec, GeneratorKind};
pub use rmat::RmatGenerator;
