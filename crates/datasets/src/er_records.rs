//! Entity-resolution record-graph generator (the DBLP author-disambiguation
//! stand-in for Table IV, Table V and Fig. 15 of the paper).
//!
//! The paper's ER case study takes bibliographic records whose author field
//! is one of a handful of ambiguous names (e.g. "Wei Wang" denotes 14
//! distinct people across 177 records), builds a record-similarity graph
//! whose edge weights lie in [0, 1], and asks each algorithm to aggregate the
//! records into per-person clusters.  The generator below reproduces that
//! setting synthetically: a configurable list of name groups, each with a
//! number of distinct authors and a number of records, plus a noisy
//! record-pair similarity model — records of the same author get high
//! similarity, records of different authors sharing the name get low-to-
//! medium similarity, and a sprinkle of cross-name noise edges keeps the
//! graph from decomposing trivially.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugraph::{DuplicatePolicy, UncertainGraph, UncertainGraphBuilder, VertexId};

/// One ambiguous author name: how many distinct authors share it and how many
/// records carry it (the rows of Table IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameGroup {
    /// The ambiguous name (display only).
    pub name: String,
    /// Number of distinct real-world authors sharing the name.
    pub num_authors: usize,
    /// Number of records carrying the name.
    pub num_records: usize,
}

impl NameGroup {
    /// Convenience constructor.
    pub fn new(name: &str, num_authors: usize, num_records: usize) -> Self {
        NameGroup {
            name: name.to_string(),
            num_authors,
            num_records,
        }
    }
}

/// The eight ambiguous names of Table IV of the paper (author/record counts
/// as published; the duplicated "Wei Wang" row of the paper is replaced by
/// the "Bin Yu" row that its Table V actually evaluates).
pub fn table4_name_groups() -> Vec<NameGroup> {
    vec![
        NameGroup::new("Hui Fang", 3, 9),
        NameGroup::new("Ajay Gupta", 4, 16),
        NameGroup::new("Rakesh Kumar", 2, 38),
        NameGroup::new("Michael Wagner", 5, 24),
        NameGroup::new("Bing Liu", 6, 11),
        NameGroup::new("Jim Smith", 3, 19),
        NameGroup::new("Wei Wang", 14, 177),
        NameGroup::new("Bin Yu", 5, 42),
    ]
}

/// Configuration of the ER record-graph generator.
#[derive(Debug, Clone)]
pub struct ErGenerator {
    /// The ambiguous name groups to generate.
    pub groups: Vec<NameGroup>,
    /// Similarity range of record pairs belonging to the same author.
    pub same_author_similarity: (f64, f64),
    /// Probability that a same-author record pair is actually connected.
    pub same_author_density: f64,
    /// Similarity range of record pairs sharing only the name.
    pub same_name_similarity: (f64, f64),
    /// Probability that a same-name, different-author record pair is
    /// connected.
    pub same_name_density: f64,
    /// Number of random cross-name noise edges.
    pub noise_edges: usize,
    /// Similarity range of the noise edges.
    pub noise_similarity: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErGenerator {
    fn default() -> Self {
        ErGenerator {
            groups: table4_name_groups(),
            same_author_similarity: (0.55, 0.95),
            same_author_density: 0.8,
            same_name_similarity: (0.05, 0.45),
            same_name_density: 0.3,
            noise_edges: 50,
            noise_similarity: (0.02, 0.2),
            seed: 0xe12,
        }
    }
}

/// A generated ER dataset: the record-similarity graph (an uncertain graph),
/// the ground-truth author of every record, and the name group of every
/// record.
#[derive(Debug, Clone)]
pub struct ErDataset {
    /// The record-similarity graph; arc probability = normalised record-pair
    /// similarity.  Symmetric.
    pub graph: UncertainGraph,
    /// `author_of[r]` is the global id of the real-world author of record `r`.
    pub author_of: Vec<usize>,
    /// `group_of[r]` is the index (into [`ErDataset::groups`]) of the name
    /// group of record `r`.
    pub group_of: Vec<usize>,
    /// The name groups, in generation order.
    pub groups: Vec<NameGroup>,
}

impl ErDataset {
    /// Total number of records.
    pub fn num_records(&self) -> usize {
        self.author_of.len()
    }

    /// The record ids belonging to a name group.
    pub fn records_of_group(&self, group: usize) -> Vec<VertexId> {
        self.group_of
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g == group)
            .map(|(r, _)| r as VertexId)
            .collect()
    }

    /// Ground truth: whether two records refer to the same real-world author.
    pub fn same_author(&self, a: VertexId, b: VertexId) -> bool {
        self.author_of[a as usize] == self.author_of[b as usize]
    }
}

impl ErGenerator {
    /// A reduced configuration (fewer, smaller groups) for tests.
    pub fn small(seed: u64) -> Self {
        ErGenerator {
            groups: vec![
                NameGroup::new("A. Author", 2, 12),
                NameGroup::new("B. Writer", 3, 15),
            ],
            noise_edges: 10,
            seed,
            ..Default::default()
        }
    }

    /// Scales every group's record count so the total number of records is
    /// approximately `total_records` (used by the Fig. 15 running-time sweep).
    pub fn with_total_records(mut self, total_records: usize) -> Self {
        let current: usize = self.groups.iter().map(|g| g.num_records).sum();
        if current == 0 {
            return self;
        }
        let factor = total_records as f64 / current as f64;
        for group in &mut self.groups {
            group.num_records =
                ((group.num_records as f64 * factor).round() as usize).max(group.num_authors);
        }
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> ErDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut author_of = Vec::new();
        let mut group_of = Vec::new();
        let mut next_author = 0usize;
        for (group_index, group) in self.groups.iter().enumerate() {
            assert!(
                group.num_authors >= 1,
                "a name group needs at least one author"
            );
            assert!(
                group.num_records >= group.num_authors,
                "group {} has fewer records than authors",
                group.name
            );
            // Every author gets at least one record; the rest are assigned at
            // random (skewed towards the first authors, as in real data).
            let authors: Vec<usize> = (0..group.num_authors).map(|a| next_author + a).collect();
            next_author += group.num_authors;
            for (i, _) in (0..group.num_records).enumerate() {
                let author = if i < authors.len() {
                    authors[i]
                } else {
                    // Zipf-ish skew: earlier authors get more records.
                    let mut pick = rng
                        .gen_range(0..authors.len())
                        .min(rng.gen_range(0..authors.len()));
                    if rng.gen::<f64>() < 0.3 {
                        pick = 0;
                    }
                    authors[pick]
                };
                author_of.push(author);
                group_of.push(group_index);
            }
        }
        let num_records = author_of.len();

        let mut staged: Vec<(VertexId, VertexId, f64)> = Vec::new();
        let connect = |staged: &mut Vec<(VertexId, VertexId, f64)>, a: usize, b: usize, p: f64| {
            staged.push((a as VertexId, b as VertexId, p));
            staged.push((b as VertexId, a as VertexId, p));
        };
        for a in 0..num_records {
            for b in (a + 1)..num_records {
                if group_of[a] != group_of[b] {
                    continue;
                }
                if author_of[a] == author_of[b] {
                    if rng.gen::<f64>() < self.same_author_density {
                        let p = rng.gen_range(
                            self.same_author_similarity.0..self.same_author_similarity.1,
                        );
                        connect(&mut staged, a, b, p);
                    }
                } else if rng.gen::<f64>() < self.same_name_density {
                    let p = rng.gen_range(self.same_name_similarity.0..self.same_name_similarity.1);
                    connect(&mut staged, a, b, p);
                }
            }
        }
        for _ in 0..self.noise_edges {
            let a = rng.gen_range(0..num_records);
            let b = rng.gen_range(0..num_records);
            if a == b {
                continue;
            }
            let p = rng.gen_range(self.noise_similarity.0..self.noise_similarity.1);
            connect(&mut staged, a, b, p);
        }
        let graph = UncertainGraphBuilder::new(num_records)
            .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
            .forbid_self_loops()
            .arcs(staged)
            .build()
            .expect("generator produces valid arcs");
        ErDataset {
            graph,
            author_of,
            group_of,
            groups: self.groups.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_groups_match_the_paper() {
        let groups = table4_name_groups();
        assert_eq!(groups.len(), 8);
        let wei_wang = groups.iter().find(|g| g.name == "Wei Wang").unwrap();
        assert_eq!(wei_wang.num_authors, 14);
        assert_eq!(wei_wang.num_records, 177);
    }

    #[test]
    fn generated_counts_match_configuration() {
        let dataset = ErGenerator::small(3).generate();
        assert_eq!(dataset.num_records(), 27);
        assert_eq!(dataset.records_of_group(0).len(), 12);
        assert_eq!(dataset.records_of_group(1).len(), 15);
        // Authors are globally distinct across groups.
        let authors_in_group0: std::collections::HashSet<_> = dataset
            .records_of_group(0)
            .iter()
            .map(|&r| dataset.author_of[r as usize])
            .collect();
        let authors_in_group1: std::collections::HashSet<_> = dataset
            .records_of_group(1)
            .iter()
            .map(|&r| dataset.author_of[r as usize])
            .collect();
        assert!(authors_in_group0.is_disjoint(&authors_in_group1));
        assert_eq!(authors_in_group0.len(), 2);
        assert_eq!(authors_in_group1.len(), 3);
    }

    #[test]
    fn same_author_pairs_have_higher_similarity_on_average() {
        let dataset = ErGenerator::small(7).generate();
        let mut same = Vec::new();
        let mut different = Vec::new();
        for arc in dataset.graph.arcs() {
            if dataset.same_author(arc.source, arc.target) {
                same.push(arc.probability);
            } else {
                different.push(arc.probability);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(!same.is_empty() && !different.is_empty());
        assert!(mean(&same) > mean(&different) + 0.2);
    }

    #[test]
    fn scaling_total_records_scales_groups_proportionally() {
        let generator = ErGenerator::default().with_total_records(1000);
        let total: usize = generator.groups.iter().map(|g| g.num_records).sum();
        assert!((total as i64 - 1000).abs() < 60, "total = {total}");
        // Relative ordering preserved.
        assert!(
            generator
                .groups
                .iter()
                .find(|g| g.name == "Wei Wang")
                .unwrap()
                .num_records
                > generator
                    .groups
                    .iter()
                    .find(|g| g.name == "Hui Fang")
                    .unwrap()
                    .num_records
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = ErGenerator::small(11).generate();
        let b = ErGenerator::small(11).generate();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.author_of, b.author_of);
    }

    #[test]
    #[should_panic(expected = "fewer records than authors")]
    fn rejects_inconsistent_groups() {
        let generator = ErGenerator {
            groups: vec![NameGroup::new("X", 5, 3)],
            ..ErGenerator::small(1)
        };
        let _ = generator.generate();
    }
}
