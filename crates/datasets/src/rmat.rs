//! R-MAT synthetic graph generator (Chakrabarti, Zhan & Faloutsos, SDM 2004),
//! used by the paper's scalability experiment (Fig. 12): "the structures of
//! the uncertain graphs were generated using the R-MAT model, and the
//! probabilities of the edges were generated uniformly at random within
//! [0, 1]".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugraph::{DuplicatePolicy, UncertainGraph, UncertainGraphBuilder, VertexId};

/// Configuration of the R-MAT generator.
#[derive(Debug, Clone)]
pub struct RmatGenerator {
    /// `log2` of the number of vertices (the R-MAT "scale").
    pub scale: u32,
    /// Number of (directed) edges to generate before deduplication.
    pub num_edges: usize,
    /// The R-MAT quadrant probabilities `(a, b, c)`; `d = 1 − a − b − c`.
    pub partition: (f64, f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatGenerator {
    fn default() -> Self {
        RmatGenerator {
            scale: 16,
            num_edges: 1 << 18,
            partition: (0.57, 0.19, 0.19), // the canonical R-MAT parameters
            seed: 0x0a7,
        }
    }
}

impl RmatGenerator {
    /// A small configuration for tests.
    pub fn small(seed: u64) -> Self {
        RmatGenerator {
            scale: 10,
            num_edges: 4096,
            seed,
            ..Default::default()
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Generates the uncertain graph: R-MAT topology with uniform random
    /// arc probabilities.
    pub fn generate(&self) -> UncertainGraph {
        let (a, b, c) = self.partition;
        let d = 1.0 - a - b - c;
        assert!(
            a > 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
            "invalid R-MAT partition"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices();
        let mut staged = Vec::with_capacity(self.num_edges);
        for _ in 0..self.num_edges {
            let (mut row_low, mut row_high) = (0usize, n);
            let (mut col_low, mut col_high) = (0usize, n);
            while row_high - row_low > 1 {
                let r: f64 = rng.gen();
                let (right, down) = if r < a {
                    (false, false)
                } else if r < a + b {
                    (true, false)
                } else if r < a + b + c {
                    (false, true)
                } else {
                    (true, true)
                };
                let row_mid = (row_low + row_high) / 2;
                let col_mid = (col_low + col_high) / 2;
                if down {
                    row_low = row_mid;
                } else {
                    row_high = row_mid;
                }
                if right {
                    col_low = col_mid;
                } else {
                    col_high = col_mid;
                }
            }
            let u = row_low as VertexId;
            let v = col_low as VertexId;
            if u == v {
                continue;
            }
            // Edge probability uniform in (0, 1], as in the paper.
            let p: f64 = rng.gen_range(f64::EPSILON..=1.0);
            staged.push((u, v, p));
        }
        UncertainGraphBuilder::new(n)
            .duplicate_policy(DuplicatePolicy::KeepFirst)
            .arcs(staged)
            .build()
            .expect("generator produces valid arcs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::stats::graph_stats;

    #[test]
    fn generates_requested_scale() {
        let generator = RmatGenerator::small(1);
        let g = generator.generate();
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_arcs() > 3000, "deduplication should keep most edges");
        assert!(g.num_arcs() <= generator.num_edges);
    }

    #[test]
    fn probabilities_are_uniformly_spread() {
        let g = RmatGenerator::small(2).generate();
        let stats = ugraph::stats::uncertain_graph_stats(&g);
        assert!(stats.mean_probability > 0.4 && stats.mean_probability < 0.6);
        // Every decile of the histogram is populated.
        assert!(stats.probability_histogram.iter().all(|&count| count > 0));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = RmatGenerator::small(3).generate();
        let stats = graph_stats(g.skeleton());
        assert!(stats.max_out_degree as f64 > 5.0 * stats.average_out_degree);
    }

    #[test]
    fn deterministic_for_a_fixed_seed_and_scaling_in_edges() {
        let a = RmatGenerator::small(5).generate();
        let b = RmatGenerator::small(5).generate();
        assert_eq!(a, b);

        let mut bigger = RmatGenerator::small(5);
        bigger.num_edges *= 2;
        let c = bigger.generate();
        assert!(c.num_arcs() > a.num_arcs());
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT partition")]
    fn rejects_bad_partition() {
        let mut generator = RmatGenerator::small(1);
        generator.partition = (0.8, 0.2, 0.2);
        let _ = generator.generate();
    }
}
