//! Per-query stage tracing: sampled, lock-free, allocation-free.
//!
//! A request's life through the serving stack decomposes into the
//! [`Stage`]s below.  When the [`Tracer`]'s deterministic every-Nth sampler
//! picks a request, the transport stamps it with a trace id and carries a
//! stack-allocated [`StageTrace`] down the call chain as
//! `Option<&StageTrace>`; each layer adds the wall time it spent to its
//! stage with a relaxed `fetch_add`.  Un-sampled requests carry `None` and
//! pay a single branch per stage.  At the end, [`Tracer::finish`] folds the
//! trace into per-stage [`LatencyHistogram`]s and offers it to the
//! [`SlowQueryLog`].
//!
//! Stages never overlap on one request (each is a disjoint slice of the
//! handler's wall time), so the per-request stage sum is ≤ the transport's
//! end-to-end accept-read → flush sample — the invariant the `stats`
//! frame's `stages` section and the slow-query log rely on.  On the
//! sharded scatter path the engine stages (`cache_lookup`, `walk_sample`)
//! are timed from the router thread around the whole scatter, not summed
//! across shards, for the same reason.

use crate::histogram::LatencyHistogram;
use crate::slowlog::{SlowEntry, SlowQueryLog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The pipeline stages a traced request is split into, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// JSON line → request value (transport read excluded).
    Parse,
    /// Waiting in the coalescer for a leader's window or cap flush
    /// (follower wait, or the leader's own collection wait).
    CoalesceWait,
    /// Waiting between connection accept and a worker picking it up
    /// (recorded on the connection's first frame).
    QueueWait,
    /// Result-cache probes (hits and miss bookkeeping).
    CacheLookup,
    /// Validation + routing pairs to owning shards.
    ShardRoute,
    /// Running walks (the engine's sampling itself; on a K > 1 scatter this
    /// is the whole scatter-gather wall time, including the shards' cache
    /// probes).
    WalkSample,
    /// Gathering shard answers and ranking/assembling the response value.
    Merge,
    /// Response value → bytes on the output buffer.
    Serialize,
}

/// Number of stages ([`Stage::ALL`] length).
pub const NUM_STAGES: usize = 8;

impl Stage {
    /// Every stage, in wire order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Parse,
        Stage::CoalesceWait,
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::ShardRoute,
        Stage::WalkSample,
        Stage::Merge,
        Stage::Serialize,
    ];

    /// The snake_case exposition name of this stage.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::ShardRoute => "shard_route",
            Stage::WalkSample => "walk_sample",
            Stage::Merge => "merge",
            Stage::Serialize => "serialize",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::CoalesceWait => 1,
            Stage::QueueWait => 2,
            Stage::CacheLookup => 3,
            Stage::ShardRoute => 4,
            Stage::WalkSample => 5,
            Stage::Merge => 6,
            Stage::Serialize => 7,
        }
    }
}

/// One sampled request's stage timings, nanosecond resolution.
///
/// Stack-allocated by the transport and threaded down the handler chain by
/// shared reference; atomics (not `Cell`s) because shard worker closures
/// must be `Send`, and the coalescer's leader records engine stages while
/// followers concurrently record their own wait.
#[derive(Debug)]
pub struct StageTrace {
    id: u64,
    nanos: [AtomicU64; NUM_STAGES],
}

impl StageTrace {
    /// A zeroed trace with the given id.
    pub fn new(id: u64) -> Self {
        StageTrace {
            id,
            nanos: Default::default(),
        }
    }

    /// The trace id the transport stamped this request with.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Adds `elapsed` to `stage`.
    #[inline]
    pub fn add(&self, stage: Stage, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.nanos[stage.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Microseconds recorded for `stage` so far.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()].load(Ordering::Relaxed) / 1_000
    }

    /// All stage timings in [`Stage::ALL`] order, µs.
    pub fn stages_us(&self) -> [u64; NUM_STAGES] {
        let mut out = [0u64; NUM_STAGES];
        for (slot, nanos) in out.iter_mut().zip(self.nanos.iter()) {
            *slot = nanos.load(Ordering::Relaxed) / 1_000;
        }
        out
    }

    /// Sum of every stage, µs (computed from nanos, so it never exceeds the
    /// true summed wall time by rounding).
    pub fn total_stage_us(&self) -> u64 {
        self.nanos
            .iter()
            .map(|n| n.load(Ordering::Relaxed))
            .sum::<u64>()
            / 1_000
    }
}

/// Times `f` into `stage` of `trace` when one is attached; calls `f`
/// directly (no clock reads) when `trace` is `None`.
#[inline]
pub fn time_stage<T>(trace: Option<&StageTrace>, stage: Stage, f: impl FnOnce() -> T) -> T {
    match trace {
        None => f(),
        Some(trace) => {
            let started = Instant::now();
            let value = f();
            trace.add(stage, started.elapsed());
            value
        }
    }
}

/// A point-in-time view of one stage's histogram, for the `stats` frame.
#[derive(Debug, Clone, Copy)]
pub struct StageSnapshot {
    /// The stage.
    pub stage: Stage,
    /// Samples recorded (one per traced request that spent time here).
    pub count: u64,
    /// Median upper bound, µs.
    pub p50_us: u64,
    /// 99th-percentile upper bound, µs.
    pub p99_us: u64,
}

/// The per-server tracing state: the sampling decision, trace-id counter,
/// per-stage latency histograms, and the slow-query log.
///
/// Sampling is deterministic — every `every`-th request observed by
/// [`Tracer::begin`] is traced (`every = round(1 / rate)`), so trace
/// coverage does not depend on wall clock or RNG, and a fixed request
/// sequence always samples the same frames.
#[derive(Debug)]
pub struct Tracer {
    every: u64,
    seen: AtomicU64,
    next_id: AtomicU64,
    traced: AtomicU64,
    stages: [LatencyHistogram; NUM_STAGES],
    slow: SlowQueryLog,
}

impl Tracer {
    /// A tracer sampling at `rate` (clamped to `0.0 ..= 1.0`; `1.0` traces
    /// everything, values ≤ 0 trace nothing) with a slow-query log keeping
    /// the `slow_capacity` slowest traced requests.
    pub fn new(rate: f64, slow_capacity: usize) -> Self {
        let every = if rate <= 0.0 {
            0
        } else {
            (1.0 / rate.min(1.0)).round().max(1.0) as u64
        };
        Tracer {
            every,
            seen: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            traced: AtomicU64::new(0),
            stages: Default::default(),
            slow: SlowQueryLog::new(slow_capacity),
        }
    }

    /// Whether any request can ever be sampled.
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// The sampling period (`0` when disabled, `1` when tracing every
    /// request).
    pub fn sample_every(&self) -> u64 {
        self.every
    }

    /// How many requests have been traced.
    pub fn traced(&self) -> u64 {
        self.traced.load(Ordering::Relaxed)
    }

    /// The sampling decision for one incoming request: a fresh id-stamped
    /// trace for every `every`-th request, `None` otherwise.
    pub fn begin(&self) -> Option<StageTrace> {
        if self.every == 0 {
            return None;
        }
        let seen = self.seen.fetch_add(1, Ordering::Relaxed);
        if seen % self.every != 0 {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Some(StageTrace::new(id))
    }

    /// Folds a finished trace into the per-stage histograms and offers it
    /// (with the request's handler wall time `total` and its kind) to the
    /// slow-query log.
    pub fn finish(&self, trace: &StageTrace, kind: &'static str, total: Duration) {
        self.traced.fetch_add(1, Ordering::Relaxed);
        // Every stage records one sample per traced request — stages the
        // request never touched land in the 0µs bucket, so each stage's
        // count equals the traced count and its distribution is complete.
        let stages_us = trace.stages_us();
        for (stage, &us) in Stage::ALL.iter().zip(stages_us.iter()) {
            self.stages[stage.index()].record(Duration::from_micros(us));
        }
        let total_us = u64::try_from(total.as_micros()).unwrap_or(u64::MAX);
        self.slow.offer(SlowEntry {
            trace_id: trace.id(),
            kind,
            total_us,
            stages_us,
        });
    }

    /// The histogram behind `stage`.
    pub fn stage_histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }

    /// Snapshots every stage histogram, in [`Stage::ALL`] order.
    pub fn stage_snapshots(&self) -> [StageSnapshot; NUM_STAGES] {
        Stage::ALL.map(|stage| {
            let h = &self.stages[stage.index()];
            StageSnapshot {
                stage,
                count: h.count(),
                p50_us: h.quantile_upper_bound_us(0.5),
                p99_us: h.quantile_upper_bound_us(0.99),
            }
        })
    }

    /// The slow-query log.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_every_nth_and_deterministic() {
        let tracer = Tracer::new(0.25, 4);
        assert!(tracer.enabled());
        assert_eq!(tracer.sample_every(), 4);
        let decisions: Vec<bool> = (0..12).map(|_| tracer.begin().is_some()).collect();
        assert_eq!(
            decisions,
            [true, false, false, false, true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn rate_zero_disables_tracing() {
        let tracer = Tracer::new(0.0, 4);
        assert!(!tracer.enabled());
        assert!(tracer.begin().is_none());
        assert_eq!(tracer.sample_every(), 0);
    }

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let tracer = Tracer::new(1.0, 4);
        let a = tracer.begin().unwrap();
        let b = tracer.begin().unwrap();
        assert!(b.id() > a.id());
    }

    #[test]
    fn finish_feeds_histograms_and_slow_log() {
        let tracer = Tracer::new(1.0, 2);
        let trace = tracer.begin().unwrap();
        trace.add(Stage::Parse, Duration::from_micros(3));
        trace.add(Stage::WalkSample, Duration::from_micros(900));
        tracer.finish(&trace, "batch", Duration::from_micros(950));
        assert_eq!(tracer.traced(), 1);
        assert_eq!(tracer.stage_histogram(Stage::WalkSample).count(), 1);
        let entries = tracer.slow_log().snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "batch");
        assert_eq!(entries[0].total_us, 950);
        assert!(entries[0].stages_us[5] >= 900); // walk_sample slot
    }

    #[test]
    fn stage_sum_never_exceeds_the_true_total() {
        let trace = StageTrace::new(7);
        trace.add(Stage::Parse, Duration::from_nanos(1_400));
        trace.add(Stage::Serialize, Duration::from_nanos(1_400));
        // Per-stage µs truncate down (1µs each), and the sum is computed on
        // nanos then truncated (2µs), so sum(stages_us) <= total_stage_us
        // <= true wall sum.
        assert_eq!(trace.stages_us().iter().sum::<u64>(), 2);
        assert_eq!(trace.total_stage_us(), 2);
    }

    #[test]
    fn time_stage_is_transparent_without_a_trace() {
        assert_eq!(time_stage(None, Stage::Merge, || 41 + 1), 42);
        let trace = StageTrace::new(1);
        let out = time_stage(Some(&trace), Stage::Merge, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        assert!(trace.stage_us(Stage::Merge) >= 1_000);
    }
}
