//! Process-global engine/walk counters.
//!
//! The walk layers (`rwalk` samplers, the overlay, `usim_core`'s engine)
//! have no natural handle to thread a metrics struct through — samplers are
//! `Copy` values rebuilt per query — so the counters live in one global
//! [`WalkMetrics`] reached via [`walk_metrics`].  Two rules keep it honest
//! on the hot path:
//!
//! * **Gated**: everything is behind a relaxed `enabled` flag checked once
//!   per *query or arena operation*, never per step.  Disabled (the
//!   default), the whole subsystem costs one relaxed bool load per query.
//! * **Batched**: per-step quantities are accumulated in a plain
//!   [`WalkTally`] (registers, no atomics) and flushed as a handful of
//!   relaxed `fetch_add`s per query.
//!
//! Counting never consumes RNG draws and never branches on sampled values,
//! so answers stay bit-identical with metrics on or off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// A local, non-atomic accumulator for one query's walk work; flushed with
/// [`WalkMetrics::flush`].
#[derive(Debug, Default, Clone, Copy)]
pub struct WalkTally {
    /// Walks simulated (two per sample pair).
    pub walks: u64,
    /// Steps taken by the legacy (lazy-instantiation) sampler.
    pub steps_legacy: u64,
    /// Steps taken by the alias-table sampler.
    pub steps_alias: u64,
    /// Walks that died before the horizon (reached a vertex whose
    /// instantiated row was empty).
    pub deaths: u64,
    /// First-meeting events between paired walks.
    pub meetings: u64,
    /// Adjacency-row reads served by the overlay's patched rows.
    pub rows_patched: u64,
    /// Adjacency-row reads served by the immutable CSR base.
    pub rows_base: u64,
}

/// The global relaxed-atomic counters (see module docs); read them through
/// [`WalkMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct WalkMetrics {
    enabled: AtomicBool,
    walks: AtomicU64,
    steps_legacy: AtomicU64,
    steps_alias: AtomicU64,
    deaths: AtomicU64,
    meetings: AtomicU64,
    rows_patched: AtomicU64,
    rows_base: AtomicU64,
    rows_instantiated: AtomicU64,
    arena_invalidations: AtomicU64,
    compactions: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalkSnapshot {
    /// Walks simulated.
    pub walks: u64,
    /// Legacy-sampler steps.
    pub steps_legacy: u64,
    /// Alias-sampler steps.
    pub steps_alias: u64,
    /// Walks that died before the horizon.
    pub deaths: u64,
    /// First-meeting events.
    pub meetings: u64,
    /// Row reads served by patched overlay rows.
    pub rows_patched: u64,
    /// Row reads served by the CSR base.
    pub rows_base: u64,
    /// Possible-world rows lazily instantiated by the legacy sampler.
    pub rows_instantiated: u64,
    /// Walk-arena invalidations (update epochs crossing pooled scratch).
    pub arena_invalidations: u64,
    /// Delta-overlay compactions folded into a fresh CSR base.
    pub compactions: u64,
}

impl WalkMetrics {
    /// Whether counting is on (one relaxed load; call once per query, not
    /// per step).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns counting on or off (serving and benches flip this at boot).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Folds one query's tally into the globals (call once per query; does
    /// nothing when counting is off so callers can flush unconditionally).
    pub fn flush(&self, tally: &WalkTally) {
        if !self.enabled() {
            return;
        }
        self.walks.fetch_add(tally.walks, Ordering::Relaxed);
        self.steps_legacy
            .fetch_add(tally.steps_legacy, Ordering::Relaxed);
        self.steps_alias
            .fetch_add(tally.steps_alias, Ordering::Relaxed);
        self.deaths.fetch_add(tally.deaths, Ordering::Relaxed);
        self.meetings.fetch_add(tally.meetings, Ordering::Relaxed);
        self.rows_patched
            .fetch_add(tally.rows_patched, Ordering::Relaxed);
        self.rows_base.fetch_add(tally.rows_base, Ordering::Relaxed);
    }

    /// Counts `n` lazily instantiated possible-world rows (legacy sampler's
    /// arena, once per instantiation — already a slow operation).
    pub fn count_rows_instantiated(&self, n: u64) {
        if self.enabled() {
            self.rows_instantiated.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one walk-arena invalidation.
    pub fn count_arena_invalidation(&self) {
        if self.enabled() {
            self.arena_invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one delta-overlay compaction.
    pub fn count_compaction(&self) {
        if self.enabled() {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> WalkSnapshot {
        WalkSnapshot {
            walks: self.walks.load(Ordering::Relaxed),
            steps_legacy: self.steps_legacy.load(Ordering::Relaxed),
            steps_alias: self.steps_alias.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            meetings: self.meetings.load(Ordering::Relaxed),
            rows_patched: self.rows_patched.load(Ordering::Relaxed),
            rows_base: self.rows_base.load(Ordering::Relaxed),
            rows_instantiated: self.rows_instantiated.load(Ordering::Relaxed),
            arena_invalidations: self.arena_invalidations.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

/// The process-global [`WalkMetrics`] instance.
pub fn walk_metrics() -> &'static WalkMetrics {
    static GLOBAL: OnceLock<WalkMetrics> = OnceLock::new();
    GLOBAL.get_or_init(WalkMetrics::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_ignore_flushes() {
        // A fresh local instance, not the global (tests share the process).
        let metrics = WalkMetrics::default();
        assert!(!metrics.enabled());
        metrics.flush(&WalkTally {
            walks: 10,
            ..Default::default()
        });
        metrics.count_compaction();
        assert_eq!(metrics.snapshot(), WalkSnapshot::default());
    }

    #[test]
    fn enabled_metrics_accumulate_tallies() {
        let metrics = WalkMetrics::default();
        metrics.set_enabled(true);
        metrics.flush(&WalkTally {
            walks: 4,
            steps_legacy: 12,
            steps_alias: 0,
            deaths: 1,
            meetings: 2,
            rows_patched: 3,
            rows_base: 9,
        });
        metrics.flush(&WalkTally {
            walks: 2,
            steps_alias: 8,
            ..Default::default()
        });
        metrics.count_rows_instantiated(5);
        metrics.count_arena_invalidation();
        metrics.count_compaction();
        let snap = metrics.snapshot();
        assert_eq!(snap.walks, 6);
        assert_eq!(snap.steps_legacy, 12);
        assert_eq!(snap.steps_alias, 8);
        assert_eq!(snap.deaths, 1);
        assert_eq!(snap.meetings, 2);
        assert_eq!(snap.rows_patched, 3);
        assert_eq!(snap.rows_base, 9);
        assert_eq!(snap.rows_instantiated, 5);
        assert_eq!(snap.arena_invalidations, 1);
        assert_eq!(snap.compactions, 1);
    }
}
