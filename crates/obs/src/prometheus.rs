//! Prometheus text-exposition (format version 0.0.4) rendering.
//!
//! [`PromWriter`] builds the plaintext body the `metrics` request frame and
//! the `--metrics-port` listener serve.  It only writes — the metric
//! *choice* lives with the owners of the counters (`usim_server`'s stats
//! assembly), keeping this crate dependency-free.
//!
//! Emission follows the format rules the CI linter
//! (`scripts/lint_prometheus.sh`) checks: each metric is announced with
//! `# HELP` and `# TYPE` exactly once, sample lines match
//! `name{labels} value`, histograms emit cumulative `_bucket` series with
//! an `le="+Inf"` terminator plus `_sum`/`_count`, and the body ends with a
//! newline.

use crate::histogram::{LatencyHistogram, NUM_BUCKETS};
use std::fmt::Write as _;

/// An append-only Prometheus text-exposition builder.
#[derive(Debug, Default)]
pub struct PromWriter {
    body: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` header of `name`.
    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.body, "# HELP {name} {help}");
        let _ = writeln!(self.body, "# TYPE {name} {kind}");
    }

    /// Emits one unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.body, "{name} {value}");
    }

    /// Emits one counter family with a single label dimension: one sample
    /// line per `(label_value, value)` pair.
    pub fn counter_family(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, u64)]) {
        self.header(name, help, "counter");
        for (label_value, value) in samples {
            let _ = writeln!(self.body, "{name}{{{label}=\"{label_value}\"}} {value}");
        }
    }

    /// Emits one unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.body, "{name} {value}");
    }

    /// Emits a [`LatencyHistogram`] as a Prometheus histogram in
    /// **seconds** (the Prometheus base unit), with one optional label.
    ///
    /// Buckets are cumulative over the histogram's log-spaced upper bounds;
    /// empty tail buckets are folded into `le="+Inf"` to keep the body
    /// small.  `_sum` is approximated from bucket upper bounds (the
    /// histogram does not keep exact sums) — documented in the HELP text.
    pub fn latency_histogram(
        &mut self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
        histogram: &LatencyHistogram,
    ) {
        // One header per family: callers emitting several labelled series
        // use `latency_histogram_series` after announcing the family once.
        self.header(name, help, "histogram");
        self.latency_histogram_series(name, label, histogram);
    }

    /// Emits the sample lines of one labelled histogram series (the family
    /// header must already have been written).
    pub fn latency_histogram_series(
        &mut self,
        name: &str,
        label: Option<(&str, &str)>,
        histogram: &LatencyHistogram,
    ) {
        let counts = histogram.snapshot_counts();
        let total: u64 = counts.iter().sum();
        // Highest non-empty bucket; everything above it is only +Inf.
        let last = counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| (i + 1).min(NUM_BUCKETS - 1));
        let mut cumulative = 0u64;
        let mut sum_us = 0u64;
        for (index, &count) in counts.iter().enumerate().take(last + 1) {
            cumulative += count;
            sum_us += count * LatencyHistogram::bound_us(index);
            let le = LatencyHistogram::bound_us(index) as f64 / 1e6;
            let _ = writeln!(
                self.body,
                "{name}_bucket{{{}le=\"{le}\"}} {cumulative}",
                Self::label_prefix(label)
            );
        }
        let _ = writeln!(
            self.body,
            "{name}_bucket{{{}le=\"+Inf\"}} {total}",
            Self::label_prefix(label)
        );
        let _ = writeln!(
            self.body,
            "{name}_sum{} {}",
            Self::label_suffix(label),
            sum_us as f64 / 1e6
        );
        let _ = writeln!(
            self.body,
            "{name}_count{} {total}",
            Self::label_suffix(label)
        );
    }

    fn label_prefix(label: Option<(&str, &str)>) -> String {
        match label {
            Some((k, v)) => format!("{k}=\"{v}\","),
            None => String::new(),
        }
    }

    fn label_suffix(label: Option<(&str, &str)>) -> String {
        match label {
            Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
            None => String::new(),
        }
    }

    /// Announces a histogram family without emitting samples (pair with
    /// [`PromWriter::latency_histogram_series`]).
    pub fn histogram_family(&mut self, name: &str, help: &str) {
        self.header(name, help, "histogram");
    }

    /// The finished exposition body (always newline-terminated).
    pub fn finish(self) -> String {
        self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_render_headers_once() {
        let mut w = PromWriter::new();
        w.counter("usim_requests_total", "Requests served.", 7);
        w.counter_family(
            "usim_requests_by_kind_total",
            "Requests by kind.",
            "kind",
            &[("batch", 5), ("stats", 2)],
        );
        w.gauge("usim_cache_occupancy", "Live cache entries.", 3.0);
        let body = w.finish();
        assert!(body.contains("# HELP usim_requests_total Requests served.\n"));
        assert!(body.contains("# TYPE usim_requests_total counter\n"));
        assert!(body.contains("usim_requests_total 7\n"));
        assert!(body.contains("usim_requests_by_kind_total{kind=\"batch\"} 5\n"));
        assert!(body.contains("usim_requests_by_kind_total{kind=\"stats\"} 2\n"));
        assert!(body.contains("# TYPE usim_cache_occupancy gauge\n"));
        assert!(body.ends_with('\n'));
    }

    #[test]
    fn histograms_emit_cumulative_buckets_with_inf_terminator() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3)); // bucket 2, le 4µs
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100)); // bucket 7, le 128µs
        let mut w = PromWriter::new();
        w.latency_histogram("usim_latency_seconds", "End-to-end latency.", None, &h);
        let body = w.finish();
        assert!(body.contains("# TYPE usim_latency_seconds histogram\n"));
        assert!(body.contains("usim_latency_seconds_bucket{le=\"0.000004\"} 2\n"));
        assert!(body.contains("usim_latency_seconds_bucket{le=\"0.000128\"} 3\n"));
        assert!(body.contains("usim_latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(body.contains("usim_latency_seconds_count 3\n"));
        // Buckets are cumulative and monotone.
        let mut last = 0u64;
        for line in body.lines().filter(|l| l.contains("_bucket{")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "{line}");
            last = value;
        }
    }

    #[test]
    fn labelled_series_share_one_family_header() {
        let h1 = LatencyHistogram::new();
        h1.record(Duration::from_micros(1));
        let h2 = LatencyHistogram::new();
        let mut w = PromWriter::new();
        w.histogram_family("usim_stage_seconds", "Per-stage time.");
        w.latency_histogram_series("usim_stage_seconds", Some(("stage", "parse")), &h1);
        w.latency_histogram_series("usim_stage_seconds", Some(("stage", "merge")), &h2);
        let body = w.finish();
        assert_eq!(
            body.matches("# TYPE usim_stage_seconds histogram").count(),
            1
        );
        assert!(body.contains("usim_stage_seconds_bucket{stage=\"parse\",le=\"0.000002\"} 1\n"));
        assert!(body.contains("usim_stage_seconds_bucket{stage=\"merge\",le=\"+Inf\"} 0\n"));
        assert!(body.contains("usim_stage_seconds_count{stage=\"parse\"} 1\n"));
    }
}
