//! A bounded ring of the N slowest traced requests with their stage
//! breakdown.
//!
//! Admission is gated by an atomic threshold — once the log is full, a
//! request cheaper than the cheapest kept entry is rejected with one
//! relaxed load and never takes the lock, so the hot path stays lock-free
//! in the steady state (most requests are fast; that is the point of a
//! slow-query log).  Entries are fixed-size (`&'static str` kind, stage
//! array), so offers allocate nothing.

use crate::stage::NUM_STAGES;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One slow request: its trace id, request kind, handler wall time, and
/// per-stage breakdown in [`crate::Stage::ALL`] order, µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowEntry {
    /// The id the transport stamped the request with.
    pub trace_id: u64,
    /// The request's wire type (`"batch"`, `"similarity"`, …).
    pub kind: &'static str,
    /// Handler wall time (parse → serialize), µs.
    pub total_us: u64,
    /// Stage timings in [`crate::Stage::ALL`] order, µs.
    pub stages_us: [u64; NUM_STAGES],
}

/// The bounded slow-query ring (see module docs).
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    /// Admission floor: a new entry must beat this to take the lock.  `0`
    /// while the log is not full, then the cheapest kept entry's total.
    threshold_us: AtomicU64,
    /// Kept entries, sorted slowest-first.  Locked only on admission (rare
    /// by construction) and snapshot (the `slow_queries` frame).
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowQueryLog {
    /// An empty log keeping the `capacity` slowest entries (`0` disables
    /// the log — every offer is rejected at the threshold gate).
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            capacity,
            threshold_us: AtomicU64::new(if capacity == 0 { u64::MAX } else { 0 }),
            entries: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    /// How many entries the log keeps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one finished trace; keeps it only if it is among the
    /// `capacity` slowest seen so far.
    pub fn offer(&self, entry: SlowEntry) {
        // Lock-free rejection: strictly-slower-than-the-floor is required
        // once the ring is full, so ties never churn the lock.
        if entry.total_us <= self.threshold_us.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().expect("slow log lock");
        // Recheck under the lock: a racing offer may have raised the floor.
        if entries.len() == self.capacity
            && entry.total_us <= entries.last().map_or(0, |e| e.total_us)
        {
            return;
        }
        let at = entries
            .partition_point(|kept| kept.total_us >= entry.total_us)
            .min(entries.len());
        entries.insert(at, entry);
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            let floor = entries.last().map_or(0, |e| e.total_us);
            self.threshold_us.store(floor, Ordering::Relaxed);
        }
    }

    /// The kept entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries.lock().expect("slow log lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, total_us: u64) -> SlowEntry {
        SlowEntry {
            trace_id: id,
            kind: "batch",
            total_us,
            stages_us: [0; NUM_STAGES],
        }
    }

    #[test]
    fn keeps_the_slowest_n_in_descending_order() {
        let log = SlowQueryLog::new(3);
        for (id, total) in [(1, 50), (2, 10), (3, 400), (4, 90), (5, 200)] {
            log.offer(entry(id, total));
        }
        let kept = log.snapshot();
        assert_eq!(
            kept.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            [3, 5, 4]
        );
        assert_eq!(
            kept.iter().map(|e| e.total_us).collect::<Vec<_>>(),
            [400, 200, 90]
        );
    }

    #[test]
    fn threshold_rejects_fast_requests_once_full() {
        let log = SlowQueryLog::new(2);
        log.offer(entry(1, 100));
        log.offer(entry(2, 300));
        // Full: the floor is 100; an 80µs request is rejected, a 100µs tie
        // too, a 150µs one displaces the floor entry.
        log.offer(entry(3, 80));
        log.offer(entry(4, 100));
        log.offer(entry(5, 150));
        let kept = log.snapshot();
        assert_eq!(kept.iter().map(|e| e.trace_id).collect::<Vec<_>>(), [2, 5]);
    }

    #[test]
    fn zero_capacity_never_keeps_anything() {
        let log = SlowQueryLog::new(0);
        log.offer(entry(1, u64::MAX - 1));
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn concurrent_offers_keep_the_global_slowest() {
        let log = std::sync::Arc::new(SlowQueryLog::new(8));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let log = log.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let total = t * 1000 + i;
                    log.offer(entry(total, total));
                }
            }));
        }
        for join in joins {
            join.join().unwrap();
        }
        let kept = log.snapshot();
        let totals: Vec<u64> = kept.iter().map(|e| e.total_us).collect();
        assert_eq!(totals, (3242..=3249).rev().collect::<Vec<_>>());
    }
}
