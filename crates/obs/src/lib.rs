//! Stack-wide observability for the uncertain-SimRank serving stack.
//!
//! This crate is the **leaf** every other layer hangs its instrumentation
//! on — it depends on nothing but `std`, so `rwalk`, `ugraph`, `usim_core`,
//! `usim_server`, the CLI and the benches can all share one vocabulary:
//!
//! * [`LatencyHistogram`] — a lock-free, fixed-bucket, log-spaced latency
//!   histogram (moved here from `usim_server::metrics`, which re-exports
//!   it).  Recording is one relaxed `fetch_add`; quantile reads are
//!   allocation-free.
//! * [`Stage`] / [`StageTrace`] / [`Tracer`] — per-query stage tracing.
//!   A [`Tracer`] stamps sampled requests with a trace id and hands out a
//!   stack-allocated [`StageTrace`]; each serving layer adds wall time to
//!   its stage; [`Tracer::finish`] folds the trace into per-stage
//!   histograms and offers it to the slow-query log.  Off by default,
//!   deterministic every-Nth sampling, zero allocation on the hot path.
//! * [`SlowQueryLog`] — a bounded ring of the N slowest traced requests
//!   with their stage breakdown, admission-gated by an atomic threshold so
//!   fast requests never take the lock.
//! * [`WalkMetrics`] — process-global relaxed-atomic counters for the walk
//!   layers (walks, steps per backend, deaths, meetings, patched- vs
//!   base-row reads, lazy row instantiations, arena invalidations,
//!   compactions).  Disabled they cost one relaxed load per *query*;
//!   enabled they are flushed in register-accumulated batches, never per
//!   step.
//! * [`PromWriter`] — Prometheus text-exposition (version 0.0.4) rendering
//!   helpers shared by the `metrics` request frame and the
//!   `--metrics-port` listener.
//!
//! The cardinal rule, inherited from the engine's pair-keyed RNG streams:
//! **instrumentation never touches the sampling path's RNG or output** —
//! answers are bit-identical with tracing and metrics on or off.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod histogram;
mod prometheus;
mod slowlog;
mod stage;
mod walk;

pub use histogram::LatencyHistogram;
pub use prometheus::PromWriter;
pub use slowlog::{SlowEntry, SlowQueryLog};
pub use stage::{time_stage, Stage, StageSnapshot, StageTrace, Tracer, NUM_STAGES};
pub use walk::{walk_metrics, WalkMetrics, WalkSnapshot, WalkTally};
