//! A lock-free, fixed-bucket, log-spaced latency histogram.
//!
//! Recording sits on serving hot paths (one increment per response frame,
//! one per traced stage), so there are no locks, no allocation, and no
//! synchronisation beyond the counter itself.  Snapshots read the counters
//! without stopping writers: quantiles are an observability view, not a
//! linearisable read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log-spaced buckets (`2^31` µs ≈ 36 minutes in the last one).
pub(crate) const NUM_BUCKETS: usize = 32;

/// A lock-free fixed-bucket latency histogram (log-spaced, microseconds).
///
/// Bucket layout (driven by `leading_zeros` on the sample's µs value):
/// bucket 0 counts **exactly-0µs** samples, bucket `i` for `i >= 1` covers
/// `[2^(i-1), 2^i)` µs, and the last bucket (31) is a catch-all for
/// everything at or above `2^30` µs.  Quantiles report the bucket's upper
/// bound `2^i` — exact enough to alarm on, two orders of magnitude cheaper
/// than recording every sample.  (For the catch-all bucket the reported
/// `2^31` is a lower bound on the true upper bound.)
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a sample of `micros` µs lands in: 0 for a 0µs sample,
    /// otherwise `floor(log2(micros)) + 1`, clamped to the catch-all.
    #[inline]
    pub fn bucket_index(micros: u64) -> usize {
        (64 - micros.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the per-bucket counts (stack-allocated;
    /// the exposition path iterates it with [`LatencyHistogram::bound_us`]).
    pub fn snapshot_counts(&self) -> [u64; NUM_BUCKETS] {
        let mut counts = [0u64; NUM_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        counts
    }

    /// The upper bound of bucket `index`, µs (`1` for bucket 0: its only
    /// content is 0µs samples, which are `< 1`).
    #[inline]
    pub fn bound_us(index: usize) -> u64 {
        1u64 << index.min(NUM_BUCKETS - 1)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds: the upper bound of
    /// the bucket the rank falls in, `0` when nothing was recorded.
    ///
    /// Allocation-free: the counts are snapshotted into a fixed-size stack
    /// array, so the single snapshot also keeps the rank and the scan
    /// consistent under concurrent recording.
    pub fn quantile_upper_bound_us(&self, q: f64) -> u64 {
        let counts = self.snapshot_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based; ceil so q = 1.0 lands on
        // the last sample and q = 0.0 on the first.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bound_us(index);
            }
        }
        Self::bound_us(NUM_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound_us(0.5), 0);
        for micros in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 7);
        // All samples fit under 2^17 µs = 131072 µs.
        assert!(h.quantile_upper_bound_us(1.0) <= 1 << 17);
        // The median of {0,1,2,3,100,1000,100000} is 3 -> bucket [2,4).
        assert_eq!(h.quantile_upper_bound_us(0.5), 4);
        // Monotone in q.
        let p50 = h.quantile_upper_bound_us(0.5);
        let p90 = h.quantile_upper_bound_us(0.9);
        let p99 = h.quantile_upper_bound_us(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
    }

    #[test]
    fn histogram_survives_extreme_samples() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(60 * 60 * 24)); // a day -> top bucket
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_upper_bound_us(0.0), 1); // the 0µs sample
        assert_eq!(h.quantile_upper_bound_us(1.0), 1u64 << 31);
    }

    #[test]
    fn bucket_layout_matches_the_documented_bounds() {
        // Bucket 0 is exactly {0}; bucket i >= 1 covers [2^(i-1), 2^i).
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        for i in 1..NUM_BUCKETS - 1 {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(LatencyHistogram::bucket_index(low), i, "low edge of {i}");
            assert_eq!(LatencyHistogram::bucket_index(high), i, "high edge of {i}");
        }
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn snapshot_counts_sees_every_record() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(5));
        let counts = h.snapshot_counts();
        assert_eq!(counts.iter().sum::<u64>(), 2);
        assert_eq!(counts[LatencyHistogram::bucket_index(5)], 2);
    }
}
