//! Property tests pinning [`LatencyHistogram`] against a sorted-sample
//! oracle, plus counter coherence under concurrent recording.
//!
//! The oracle: with every sample in hand, the `q`-quantile's true value is
//! the `clamp(ceil(q·n), 1, n)`-th smallest sample, and the histogram —
//! which only keeps per-bucket counts — must report exactly that sample's
//! bucket upper bound.  This holds for *any* sample distribution because
//! the bucket index is monotone in the sample value, so the rank-th sample
//! in bucket-scan order is the rank-th sample in sorted order.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use usim_obs::LatencyHistogram;

/// Samples biased toward bucket boundaries: the strategy draws a shape
/// selector and a raw value, and maps a quarter of the draws each to
/// uniform values, exact powers of two, and the values one below/above a
/// power — the edges where an off-by-one in `bucket_index` would hide.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..4, 0u64..1_000_000_000u64), 1..200).prop_map(|draws| {
        draws
            .into_iter()
            .map(|(shape, raw)| match shape {
                0 => raw,
                1 => 1u64 << (raw % 40),
                2 => (1u64 << (raw % 40)).saturating_sub(1),
                _ => (1u64 << (raw % 40)).saturating_add(1),
            })
            .collect()
    })
}

/// What the histogram must answer for quantile `q` over `sorted` samples.
fn oracle_upper_bound_us(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as u64;
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let sample = sorted[rank as usize - 1];
    LatencyHistogram::bound_us(LatencyHistogram::bucket_index(sample))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_match_the_sorted_sample_oracle(micros in samples()) {
        let histogram = LatencyHistogram::new();
        for &us in &micros {
            histogram.record(Duration::from_micros(us));
        }
        let mut sorted = micros.clone();
        sorted.sort_unstable();
        prop_assert_eq!(histogram.count(), micros.len() as u64);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(
                histogram.quantile_upper_bound_us(q),
                oracle_upper_bound_us(&sorted, q),
                "q = {} over {} samples",
                q,
                sorted.len()
            );
        }
        // Quantiles are monotone in q even between the pinned points.
        let mut previous = 0u64;
        for percent in 0..=100u32 {
            let value = histogram.quantile_upper_bound_us(f64::from(percent) / 100.0);
            prop_assert!(value >= previous, "quantile regressed at q={}", percent);
            previous = value;
        }
    }

    #[test]
    fn snapshot_counts_agree_with_count_and_the_samples(micros in samples()) {
        let histogram = LatencyHistogram::new();
        for &us in &micros {
            histogram.record(Duration::from_micros(us));
        }
        let counts = histogram.snapshot_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), micros.len() as u64);
        // Per-bucket: the snapshot count equals the number of samples whose
        // bucket_index maps there.
        for (index, &count) in counts.iter().enumerate() {
            let expected = micros
                .iter()
                .filter(|&&us| LatencyHistogram::bucket_index(us) == index)
                .count() as u64;
            prop_assert_eq!(count, expected, "bucket {}", index);
        }
    }

    #[test]
    fn concurrent_recording_loses_no_samples(
        micros in samples(),
        threads in 2usize..6,
    ) {
        let histogram = Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for chunk in micros.chunks(micros.len().div_ceil(threads)) {
                let histogram = Arc::clone(&histogram);
                scope.spawn(move || {
                    for &us in chunk {
                        histogram.record(Duration::from_micros(us));
                    }
                });
            }
        });
        // Every recorded sample is visible once all writers joined: counts
        // are relaxed atomics, but the join is a synchronisation point.
        prop_assert_eq!(histogram.count(), micros.len() as u64);
        prop_assert_eq!(
            histogram.snapshot_counts().iter().sum::<u64>(),
            micros.len() as u64
        );
        let mut sorted = micros.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(
                histogram.quantile_upper_bound_us(q),
                oracle_upper_bound_us(&sorted, q),
                "q = {} after concurrent recording",
                q
            );
        }
    }
}
