//! Sparse vectors and CSR sparse matrices over `f64`.

use crate::DenseMatrix;

/// A sparse vector: sorted `(index, value)` pairs with non-zero values.
///
/// Transition rows `Pr(u →ₖ ·)` of an uncertain graph start extremely sparse
/// (only out-neighbors of `u` after one step) and fill in as `k` grows; the
/// estimators keep them sparse for as long as that pays off.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// The empty vector.
    pub fn new() -> Self {
        SparseVector {
            entries: Vec::new(),
        }
    }

    /// Builds a sparse vector from unsorted `(index, value)` pairs, summing
    /// duplicates and dropping zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f64)>) -> Self {
        let mut entries: Vec<(u32, f64)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match merged.last_mut() {
                Some((last_i, last_v)) if *last_i == i => *last_v += v,
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        SparseVector { entries: merged }
    }

    /// Builds a sparse vector from a dense slice, dropping zeros.
    pub fn from_dense(values: &[f64]) -> Self {
        SparseVector {
            entries: values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect(),
        }
    }

    /// A one-hot vector with `value` at `index`.
    pub fn unit(index: u32, value: f64) -> Self {
        if value == 0.0 {
            Self::new()
        } else {
            SparseVector {
                entries: vec![(index, value)],
            }
        }
    }

    /// Number of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value at `index` (0.0 if structurally zero).
    pub fn get(&self, index: u32) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut a, mut b) = (
            self.entries.iter().peekable(),
            other.entries.iter().peekable(),
        );
        let mut total = 0.0;
        while let (Some(&&(ia, va)), Some(&&(ib, vb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    total += va * vb;
                    a.next();
                    b.next();
                }
            }
        }
        total
    }

    /// Adds `factor * other` into this vector.
    pub fn add_scaled(&mut self, other: &SparseVector, factor: f64) {
        if factor == 0.0 || other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut a, mut b) = (
            self.entries.iter().peekable(),
            other.entries.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, va)), Some(&&(ib, vb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        merged.push((ia, va));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ib, factor * vb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        let v = va + factor * vb;
                        if v != 0.0 {
                            merged.push((ia, v));
                        }
                        a.next();
                        b.next();
                    }
                },
                (Some(&&(ia, va)), None) => {
                    merged.push((ia, va));
                    a.next();
                }
                (None, Some(&&(ib, vb))) => {
                    merged.push((ib, factor * vb));
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.entries = merged;
    }

    /// Multiplies every value by `factor`.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
        } else {
            for (_, v) in &mut self.entries {
                *v *= factor;
            }
        }
    }

    /// Converts to a dense vector of length `len`.
    pub fn to_dense(&self, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }
}

impl FromIterator<(u32, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

/// A CSR sparse matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a matrix from `(row, col, value)` triplets, summing duplicates
    /// and dropping explicit zeros.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let mut triplets: Vec<(u32, u32, f64)> =
            triplets.into_iter().filter(|&(_, _, v)| v != 0.0).collect();
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_offsets = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_offsets[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        let col_indices = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        SparseMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Builds a matrix whose rows are the given sparse vectors.
    pub fn from_rows(cols: usize, rows: &[SparseVector]) -> Self {
        Self::from_triplets(
            rows.len(),
            cols,
            rows.iter()
                .enumerate()
                .flat_map(|(r, vec)| vec.iter().map(move |(c, v)| (r as u32, c, v))),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(i, j)` (0.0 if structurally zero).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (start, end) = (self.row_offsets[i], self.row_offsets[i + 1]);
        match self.col_indices[start..end].binary_search(&(j as u32)) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over the non-zero entries `(col, value)` of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (start, end) = (self.row_offsets[i], self.row_offsets[i + 1]);
        self.col_indices[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Row `i` as a [`SparseVector`].
    pub fn row(&self, i: usize) -> SparseVector {
        SparseVector {
            entries: self.row_iter(i).collect(),
        }
    }

    /// Sparse matrix × sparse vector: `self * x`.
    pub fn matvec(&self, x: &SparseVector) -> SparseVector {
        let mut out = Vec::new();
        for i in 0..self.rows {
            let mut total = 0.0;
            for (j, v) in self.row_iter(i) {
                total += v * x.get(j);
            }
            if total != 0.0 {
                out.push((i as u32, total));
            }
        }
        SparseVector { entries: out }
    }

    /// Sparse row-vector × matrix: `xᵀ * self`, returned as a sparse vector.
    ///
    /// This is the core step of walk-probability propagation: if `x` holds
    /// `Pr(u →ₖ ·)` and `self` is a one-step transition matrix, the result
    /// holds `Pr(u →ₖ₊₁ ·)` (valid only where the product form applies, e.g.
    /// on deterministic graphs or for Du et al.'s approximation).
    pub fn vecmat(&self, x: &SparseVector) -> SparseVector {
        let mut accum: Vec<f64> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        let mut dense: Vec<f64> = vec![0.0; self.cols];
        for (i, xv) in x.iter() {
            for (j, v) in self.row_iter(i as usize) {
                if dense[j as usize] == 0.0 {
                    touched.push(j);
                }
                dense[j as usize] += xv * v;
            }
        }
        touched.sort_unstable();
        accum.reserve(touched.len());
        let entries = touched
            .into_iter()
            .filter(|&j| dense[j as usize] != 0.0)
            .map(|j| (j, dense[j as usize]))
            .collect();
        drop(accum);
        SparseVector { entries }
    }

    /// Sparse × sparse matrix product.
    pub fn matmul(&self, other: &SparseMatrix) -> SparseMatrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut triplets = Vec::new();
        let mut dense = vec![0.0; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..self.rows {
            for (k, a) in self.row_iter(i) {
                for (j, b) in other.row_iter(k as usize) {
                    if dense[j as usize] == 0.0 {
                        touched.push(j);
                    }
                    dense[j as usize] += a * b;
                }
            }
            for &j in &touched {
                let v = dense[j as usize];
                if v != 0.0 {
                    triplets.push((i as u32, j, v));
                }
                dense[j as usize] = 0.0;
            }
            touched.clear();
        }
        SparseMatrix::from_triplets(self.rows, other.cols, triplets)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> SparseMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                triplets.push((j, i as u32, v));
            }
        }
        SparseMatrix::from_triplets(self.cols, self.rows, triplets)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                out[(i, j as usize)] = v;
            }
        }
        out
    }

    /// Sum of each row.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row_iter(i).map(|(_, v)| v).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_construction_and_lookup() {
        let v = SparseVector::from_pairs([(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(1), 2.0);
        assert_eq!(v.get(3), 1.5);
        assert_eq!(v.get(0), 0.0);
        assert!((v.sum() - 3.5).abs() < 1e-12);

        let d = SparseVector::from_dense(&[0.0, 2.0, 0.0, 1.5]);
        assert_eq!(d, v);
        assert_eq!(v.to_dense(5), vec![0.0, 2.0, 0.0, 1.5, 0.0]);
    }

    #[test]
    fn unit_and_empty() {
        let u = SparseVector::unit(4, 0.25);
        assert_eq!(u.nnz(), 1);
        assert_eq!(u.get(4), 0.25);
        assert!(SparseVector::unit(4, 0.0).is_empty());
        assert!(SparseVector::new().is_empty());
    }

    #[test]
    fn dot_product() {
        let a = SparseVector::from_pairs([(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = SparseVector::from_pairs([(2, 4.0), (5, 0.5), (7, 9.0)]);
        assert!((a.dot(&b) - (2.0 * 4.0 + 3.0 * 0.5)).abs() < 1e-12);
        assert_eq!(a.dot(&SparseVector::new()), 0.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = SparseVector::from_pairs([(0, 1.0), (2, 2.0)]);
        let b = SparseVector::from_pairs([(2, 1.0), (3, 4.0)]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.to_dense(4), vec![1.0, 0.0, 2.5, 2.0]);
        a.scale(2.0);
        assert_eq!(a.to_dense(4), vec![2.0, 0.0, 5.0, 4.0]);
        a.scale(0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn add_scaled_cancellation_drops_entry() {
        let mut a = SparseVector::from_pairs([(1, 1.0)]);
        let b = SparseVector::from_pairs([(1, 1.0)]);
        a.add_scaled(&b, -1.0);
        assert_eq!(a.get(1), 0.0);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn sparse_matrix_from_triplets() {
        let m =
            SparseMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 2, 2.0), (0, 1, 0.5), (2, 0, 0.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 1.5);
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.row(0).to_dense(3), vec![0.0, 1.5, 0.0]);
    }

    #[test]
    fn from_rows_matches_triplets() {
        let rows = vec![
            SparseVector::from_pairs([(1, 1.0)]),
            SparseVector::new(),
            SparseVector::from_pairs([(0, 3.0), (2, 4.0)]),
        ];
        let m = SparseMatrix::from_rows(3, &rows);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(2, 2), 4.0);
        assert_eq!(m.row(1).nnz(), 0);
    }

    #[test]
    fn matvec_and_vecmat() {
        // m = [[1, 2], [0, 3]]
        let m = SparseMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        let x = SparseVector::from_pairs([(0, 1.0), (1, 1.0)]);
        // m * x = [3, 3]
        assert_eq!(m.matvec(&x).to_dense(2), vec![3.0, 3.0]);
        // x^T m = [1, 5]
        assert_eq!(m.vecmat(&x).to_dense(2), vec![1.0, 5.0]);
    }

    #[test]
    fn matmul_agrees_with_dense() {
        let a = SparseMatrix::from_triplets(2, 3, [(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let b = SparseMatrix::from_triplets(3, 2, [(0, 1, 1.0), (1, 0, 2.0), (2, 1, 4.0)]);
        let c = a.matmul(&b);
        let dense_c = a.to_dense().matmul(&b.to_dense());
        assert!(c.to_dense().max_abs_diff(&dense_c) < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = SparseMatrix::from_triplets(2, 3, [(0, 2, 5.0), (1, 0, 1.0)]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn row_sums() {
        let a = SparseMatrix::from_triplets(2, 3, [(0, 0, 0.25), (0, 1, 0.75), (1, 2, 1.0)]);
        let sums = a.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
    }
}
