//! Matrix and bit-vector primitives for uncertain-graph SimRank.
//!
//! The paper's algorithms need three storage shapes:
//!
//! * dense probability matrices (`W(k)` becomes dense quickly as `k` grows) —
//!   [`DenseMatrix`];
//! * sparse rows/matrices (per-source transition rows `Pr(u →ₖ ·)` and the
//!   one-step matrix `W(1)`, which has only `|E|` non-zeros) —
//!   [`SparseVector`] and [`SparseMatrix`];
//! * `N`-dimensional bit vectors with fast bitwise AND/OR and popcount — the
//!   counting tables `M_w[k]` and filter vectors `F_e` of the SR-SP speed-up
//!   technique (Section VI-D of the paper) — [`BitVec`];
//! * an external-memory column store mirroring the paper's disk layout of
//!   transition matrices ("store the elements of W(k) column-by-column in
//!   consecutive blocks on disk", Section VI-A) — [`ColumnStore`].
//!
//! All structures are self-contained (no linear-algebra dependencies) and are
//! written for clarity first, with the operations the estimators actually
//! need tuned for speed (row access, dot products, masked popcounts).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bitvec;
pub mod colstore;
pub mod dense;
pub mod sparse;

pub use bitvec::BitVec;
pub use colstore::{ColumnStore, IoStats};
pub use dense::DenseMatrix;
pub use sparse::{SparseMatrix, SparseVector};
