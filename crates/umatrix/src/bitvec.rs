//! Fixed-length bit vectors backed by `u64` words.
//!
//! The SR-SP speed-up technique (Section VI-D of the paper) represents which
//! of the `N` sampled walks pass through a vertex at step `k` as an
//! `N`-dimensional bit vector (`M_w[k]`), and which of the `N` sampling
//! processes traverse an arc as a *filter vector* (`F_e`).  The propagation
//! step is `M_x[k+1] |= M_w[k] & F_(w,x)` and the estimator needs
//! `‖M_w[k] ∧ M'_w[k]‖₁` (a masked popcount, Eq. 16).  Those three operations
//! are what this type optimises.

/// A fixed-length bit vector.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl BitVec {
    /// Creates a bit vector of `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0u64; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a bit vector of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        v.clear_trailing_bits();
        v
    }

    /// Creates a bit vector from an iterator of booleans.
    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    fn clear_trailing_bits(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gets bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits (the 1-norm `‖x‖₁` of the paper).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets all bits to zero.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Bitwise OR assignment: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bitwise AND assignment: `self &= other`.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns `self & other` as a new bit vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Returns `self | other` as a new bit vector.
    pub fn or(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// The fused update of the SR-SP propagation step:
    /// `self |= a & b`, without materialising `a & b`.
    pub fn or_and_assign(&mut self, a: &BitVec, b: &BitVec) {
        assert_eq!(self.len, a.len, "bit vector length mismatch");
        assert_eq!(self.len, b.len, "bit vector length mismatch");
        for ((s, x), y) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *s |= x & y;
        }
    }

    /// Popcount of `self & other` without materialising the intersection
    /// (Eq. 16 of the paper: `‖M_w[k] ∧ M'_w[k]‖₁`).
    pub fn and_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the indices of the set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());

        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.get(0));
        assert!(o.get(129));
        assert!(!o.is_zero());
        assert!(!o.is_empty());
        assert!(BitVec::zeros(0).is_empty());
    }

    #[test]
    fn set_and_get() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
        v.set(63, false);
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits = vec![true, false, true, true, false];
        let v = BitVec::from_bools(bits.clone());
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(v.get(i), *b);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn bitwise_operations() {
        let a = BitVec::from_bools([true, true, false, false, true]);
        let b = BitVec::from_bools([true, false, true, false, true]);

        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        assert_eq!(a.and_count(&b), 2);

        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c, a.and(&b));

        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d, a.or(&b));
    }

    #[test]
    fn or_and_assign_fused() {
        let a = BitVec::from_bools([true, true, false, true]);
        let b = BitVec::from_bools([true, false, false, true]);
        let mut target = BitVec::from_bools([false, false, true, false]);
        target.or_and_assign(&a, &b);
        // target | (a & b) = [0,0,1,0] | [1,0,0,1] = [1,0,1,1]
        assert_eq!(target.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn clear_resets_all() {
        let mut v = BitVec::ones(77);
        v.clear();
        assert!(v.is_zero());
        assert_eq!(v.len(), 77);
    }

    #[test]
    fn ones_does_not_set_bits_beyond_len() {
        let v = BitVec::ones(65);
        assert_eq!(v.count_ones(), 65);
        let w = BitVec::ones(64);
        assert_eq!(w.count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let _ = a.and(&b);
    }

    #[test]
    fn iter_ones_spans_words() {
        let mut v = BitVec::zeros(200);
        let set = [0usize, 1, 63, 64, 127, 128, 199];
        for &i in &set {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), set);
    }
}
